"""Ablation: heterogeneous communication (the paper's future work).

The paper's model assumes uniform links and flags inter-cluster
communication as future work.  This benchmark quantifies what that
assumption costs on a federated platform: two equal-power clusters, one
behind a fast uplink and one behind a slow uplink, planned by

* the **link-aware** planner (:mod:`repro.extensions.hetcomm`), and
* the paper's **homogeneous planner** fed the *mean* bandwidth (the best
  a uniform model can do),

both scored under the extended (true) model.
"""

from __future__ import annotations

import pytest

from repro.analysis.report import ascii_table, format_rate
from repro.core.heuristic import HeuristicPlanner
from repro.core.params import DEFAULT_PARAMS
from repro.extensions.hetcomm import (
    HetCommPlanner,
    HetCommPlatform,
    het_hierarchy_throughput,
)
from repro.platforms.pool import NodePool
from repro.units import dgemm_mflop


@pytest.mark.benchmark(group="ablation-hetcomm")
def test_ablation_heterogeneous_links(benchmark, emit):
    pool = NodePool.homogeneous(60, 265.0)
    wapp = dgemm_mflop(200)
    slow_links = (500.0, 50.0, 5.0, 0.5)

    def run():
        rows = []
        for slow in slow_links:
            platform = HetCommPlatform.clustered(
                pool, [30, 30], [1000.0, slow]
            )
            aware = HetCommPlanner(DEFAULT_PARAMS).plan(platform, wapp)
            mean_bw = (1000.0 + slow) / 2.0
            naive_plan = HeuristicPlanner(
                DEFAULT_PARAMS.with_bandwidth(mean_bw)
            ).plan(pool, wapp)
            naive_rho = het_hierarchy_throughput(
                naive_plan.hierarchy, platform, DEFAULT_PARAMS, wapp
            )
            slow_agents = sum(
                1
                for agent in aware.hierarchy.agents
                if platform.bandwidth_of(str(agent)) == slow
            )
            rows.append((slow, aware, naive_rho, slow_agents))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        ascii_table(
            [
                "slow uplink (Mb/s)", "link-aware rho", "uniform-model rho",
                "aware advantage", "agents on slow uplink",
            ],
            [
                [
                    f"{slow:g}", format_rate(aware.throughput),
                    format_rate(naive), f"{aware.throughput / naive:.2f}x",
                    slow_agents,
                ]
                for slow, aware, naive, slow_agents in rows
            ],
            title="Ablation: federated platform (30 nodes @ 1 Gb/s + 30 "
            "nodes behind a slow uplink), DGEMM 200x200",
        )
    )
    for slow, aware, naive, slow_agents in rows:
        # Link-awareness never loses, and never parks agents behind a
        # crawling uplink.
        assert aware.throughput >= naive - 1e-9
        if slow <= 5.0:
            assert slow_agents == 0
    # The advantage must be material once uplinks truly diverge.
    worst = rows[-1]
    assert worst[1].throughput > 1.5 * worst[2]
