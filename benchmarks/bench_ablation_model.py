"""Ablations on the environment: bandwidth, heterogeneity, request grain.

These sweeps exercise the planner across the model's parameter space and
record how the *shape* of the chosen deployment responds — the structural
claims the paper makes qualitatively (more hierarchy when scheduling is
expensive relative to service; stars when service dominates; fewer nodes
when demand is low).
"""

from __future__ import annotations

import pytest

from repro.analysis.report import ascii_table, format_rate
from repro.core.heuristic import HeuristicPlanner
from repro.core.params import DEFAULT_PARAMS
from repro.platforms.pool import NodePool
from repro.units import dgemm_mflop


@pytest.mark.benchmark(group="ablation-bandwidth")
def test_ablation_bandwidth_sweep(benchmark, emit):
    """Slower links make the agent tier the bottleneck sooner, pushing the
    planner toward more agents and fewer servers per agent."""
    pool = NodePool.uniform_random(100, low=60, high=400, seed=9)
    wapp = dgemm_mflop(310)
    bandwidths = (100.0, 300.0, 1000.0, 10_000.0)

    def run():
        out = []
        for bandwidth in bandwidths:
            params = DEFAULT_PARAMS.with_bandwidth(bandwidth)
            plan = HeuristicPlanner(params).plan(pool, wapp)
            out.append((bandwidth, plan))
        return out

    plans = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for bandwidth, plan in plans:
        n, a, s, h = plan.hierarchy.shape_signature()
        rows.append(
            [f"{bandwidth:g}", n, a, s, h, format_rate(plan.throughput)]
        )
    emit(
        ascii_table(
            ["bandwidth (Mb/s)", "nodes", "agents", "servers", "height",
             "rho (req/s)"],
            rows,
            title="Ablation: link bandwidth vs chosen deployment shape "
            "(100 heterogeneous nodes, DGEMM 310)",
        )
    )
    # Throughput is monotone in bandwidth.
    rhos = [plan.throughput for _, plan in plans]
    assert all(a <= b * (1 + 1e-9) for a, b in zip(rhos, rhos[1:]))


@pytest.mark.benchmark(group="ablation-grain")
def test_ablation_request_grain_sweep(benchmark, emit):
    """The paper's three regimes as a single sweep: pair -> hierarchy ->
    star as the request grain grows."""
    pool = NodePool.uniform_random(100, low=60, high=400, seed=9)
    sizes = (10, 50, 100, 200, 310, 500, 1000)

    def run():
        return [
            (size, HeuristicPlanner(DEFAULT_PARAMS).plan(pool, dgemm_mflop(size)))
            for size in sizes
        ]

    plans = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for size, plan in plans:
        n, a, s, h = plan.hierarchy.shape_signature()
        rows.append([size, n, a, s, h, format_rate(plan.throughput)])
    emit(
        ascii_table(
            ["DGEMM size", "nodes", "agents", "servers", "height",
             "rho (req/s)"],
            rows,
            title="Ablation: request grain vs chosen deployment shape",
        )
    )
    by_size = dict(plans)
    # Tiny grain: minimal deployment.  Huge grain: spanning star.
    assert by_size[10].nodes_used == 2
    assert len(by_size[1000].hierarchy.agents) == 1
    assert by_size[1000].nodes_used == len(pool)
    # Agent count is (weakly) maximal somewhere in the middle.
    agent_counts = [len(p.hierarchy.agents) for _, p in plans]
    assert max(agent_counts) > 1


@pytest.mark.benchmark(group="ablation-heterogeneity")
def test_ablation_heterogeneity_sweep(benchmark, emit):
    """Growing power spread: the planner's margin over the positional
    star baseline widens with heterogeneity (the paper's core message)."""
    from repro.core.baselines import star_deployment
    from repro.core.throughput import hierarchy_throughput

    spreads = (0.0, 0.25, 0.5, 0.75)
    base_power = 265.0
    wapp = dgemm_mflop(310)

    def run():
        out = []
        for spread in spreads:
            low = base_power * (1.0 - spread)
            high = base_power * (1.0 + spread)
            pool = (
                NodePool.homogeneous(150, base_power)
                if spread == 0.0
                else NodePool.uniform_random(150, low=low, high=high, seed=11)
            )
            plan = HeuristicPlanner(DEFAULT_PARAMS).plan(pool, wapp)
            star_rho = hierarchy_throughput(
                star_deployment(pool), DEFAULT_PARAMS, wapp
            ).throughput
            out.append((spread, pool.heterogeneity(), plan, star_rho))
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for spread, cv, plan, star_rho in results:
        rows.append(
            [
                f"{spread:.2f}", f"{cv:.3f}",
                format_rate(plan.throughput), format_rate(star_rho),
                f"{plan.throughput / star_rho:.2f}x",
            ]
        )
    emit(
        ascii_table(
            ["power spread", "pool cv", "automatic rho", "star rho",
             "advantage"],
            rows,
            title="Ablation: pool heterogeneity vs automatic-planning "
            "advantage (150 nodes, DGEMM 310)",
        )
    )
    for _, _, plan, star_rho in results:
        assert plan.throughput >= star_rho - 1e-9
