"""Ablation: multi-application hosting (the paper's last future-work item).

One shared agent hierarchy, several applications with individual demands
and dedicated server tiers.  The sweep grows a second application's
demand on a fixed pool and reports the resource split, the point where
the pool saturates, and the proportional scale-down beyond it.
"""

from __future__ import annotations

import pytest

from repro.analysis.report import ascii_table, format_rate
from repro.core.params import DEFAULT_PARAMS
from repro.extensions.multiapp import Application, MultiAppPlanner
from repro.platforms.pool import NodePool
from repro.units import dgemm_mflop


@pytest.mark.benchmark(group="ablation-multiapp")
def test_ablation_two_tenant_sweep(benchmark, emit):
    pool = NodePool.homogeneous(60, 265.0)
    base = Application("steady", dgemm_mflop(310), demand=80.0)
    tenant_demands = (50.0, 300.0, 1200.0, 2500.0, 6000.0)

    def run():
        rows = []
        for demand in tenant_demands:
            tenant = Application("tenant", dgemm_mflop(100), demand=demand)
            plan = MultiAppPlanner(DEFAULT_PARAMS).plan(pool, [base, tenant])
            rows.append((demand, plan))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table = []
    for demand, plan in rows:
        n, a, s, h = plan.hierarchy.shape_signature()
        table.append(
            [
                f"{demand:g}",
                format_rate(plan.rates["steady"]),
                format_rate(plan.rates["tenant"]),
                f"{plan.scale:.2f}",
                len(plan.servers_of("steady")),
                len(plan.servers_of("tenant")),
                a,
                n,
            ]
        )
    emit(
        ascii_table(
            [
                "tenant demand", "steady rate", "tenant rate", "scale",
                "steady servers", "tenant servers", "agents", "nodes",
            ],
            table,
            title="Ablation: two applications sharing one hierarchy "
            "(60 nodes; 'steady' holds 80 req/s of DGEMM 310, the tenant "
            "grows)",
        )
    )
    # Low tenant demand: both fully satisfied with room to spare.
    first = rows[0][1]
    assert first.fully_satisfied
    assert len(first.hierarchy) < len(pool)
    # Demands keep their ratio even past saturation.
    for demand, plan in rows:
        assert plan.rates["tenant"] / plan.rates["steady"] == pytest.approx(
            demand / 80.0, rel=1e-6
        )
    # Eventually the pool saturates and scale drops below 1.
    assert rows[-1][1].scale < 1.0
    # Monotone: more tenant demand never shrinks the deployment while
    # still satisfiable.
    sizes = [len(plan.hierarchy) for _, plan in rows if plan.fully_satisfied]
    assert sizes == sorted(sizes)
