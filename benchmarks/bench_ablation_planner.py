"""Ablations on the planner's design choices (analytic model only).

DESIGN.md calls out three load-bearing decisions in our Algorithm 1
implementation; each gets an ablation at full 200-node paper scale:

1. **fixed-point vs incremental growth** — the interleaved while-loops of
   the pseudo-code read either as a balance-point computation (our
   default) or as literal one-node-at-a-time greedy growth; the greedy
   variant overloads the root before promotions can help.
2. **promotion (shift_nodes)** — disabling server-to-agent conversion
   restricts the incremental planner to stars, isolating the value of
   multi-level hierarchies.
3. **agent selection policy** — the paper's fastest-as-agents rule vs the
   windowed extension that may assign *slow* nodes to the agent tier;
   includes the adversarial pool where the paper's rule loses 99% of the
   achievable throughput.
"""

from __future__ import annotations

import pytest

from repro.analysis.report import ascii_table, format_rate
from repro.core.heuristic import HeuristicPlanner
from repro.core.optimal import exhaustive_plan
from repro.core.params import DEFAULT_PARAMS
from repro.platforms.background import heterogenize
from repro.platforms.pool import NodePool
from repro.units import dgemm_mflop


def paper_scale_pool() -> NodePool:
    return heterogenize(
        NodePool.homogeneous(200, 265.0, prefix="orsay"),
        loaded_fraction=0.5,
        seed=42,
    )


@pytest.mark.benchmark(group="ablation-strategy")
def test_ablation_growth_strategy_and_promotion(benchmark, emit):
    pool = paper_scale_pool()
    wapp = dgemm_mflop(310)

    def run():
        variants = {
            "fixed-point (default)": HeuristicPlanner(DEFAULT_PARAMS),
            "incremental (literal Alg.1)": HeuristicPlanner(
                DEFAULT_PARAMS, strategy="incremental"
            ),
            "incremental, patience=1": HeuristicPlanner(
                DEFAULT_PARAMS, strategy="incremental", patience=1
            ),
            "incremental, no promotion": HeuristicPlanner(
                DEFAULT_PARAMS, strategy="incremental", allow_promotion=False
            ),
        }
        return {
            label: planner.plan(pool, wapp) for label, planner in variants.items()
        }

    plans = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for label, plan in plans.items():
        n, a, s, h = plan.hierarchy.shape_signature()
        rows.append([label, n, a, s, h, format_rate(plan.throughput)])
    emit(
        ascii_table(
            ["variant", "nodes", "agents", "servers", "height", "rho (req/s)"],
            rows,
            title="Ablation: growth strategy on the 200-node DGEMM 310 "
            "scenario (Figure 6 setting)",
        )
    )
    # The structural hypotheses behind the design choices:
    assert (
        plans["fixed-point (default)"].throughput
        >= plans["incremental (literal Alg.1)"].throughput
    )
    assert (
        plans["incremental (literal Alg.1)"].throughput
        >= plans["incremental, no promotion"].throughput
    )


@pytest.mark.benchmark(group="ablation-agents")
def test_ablation_agent_selection_policy(benchmark, emit):
    wapp_med = dgemm_mflop(310)
    scenarios = {
        "200-node Grid'5000 slice": (paper_scale_pool(), wapp_med),
        "adversarial: 1 fast + 5 slow": (
            NodePool.heterogeneous([5000.0] + [50.0] * 5),
            dgemm_mflop(600),
        ),
    }

    def run():
        out = {}
        for scenario, (pool, wapp) in scenarios.items():
            fastest = HeuristicPlanner(DEFAULT_PARAMS).plan(pool, wapp)
            windowed = HeuristicPlanner(
                DEFAULT_PARAMS, agent_selection="windowed"
            ).plan(pool, wapp)
            reference = (
                exhaustive_plan(pool, DEFAULT_PARAMS, wapp).throughput
                if len(pool) <= 10
                else None
            )
            out[scenario] = (fastest, windowed, reference)
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for scenario, (fastest, windowed, reference) in results.items():
        rows.append(
            [
                scenario,
                format_rate(fastest.throughput),
                format_rate(windowed.throughput),
                format_rate(reference) if reference else "n/a (pool too big)",
            ]
        )
    emit(
        ascii_table(
            ["scenario", "fastest-as-agents (paper)", "windowed (ours)",
             "exhaustive optimum"],
            rows,
            title="Ablation: agent selection policy",
        )
    )
    fast, win, ref = results["adversarial: 1 fast + 5 slow"]
    # The paper's policy wastes the fast node on scheduling...
    assert fast.throughput < 0.2 * ref
    # ...while the windowed extension recovers the optimum.
    assert win.throughput == pytest.approx(ref, rel=1e-6)
    # On the paper's own scenario the two coincide (agents are plentiful).
    fast200, win200, _ = results["200-node Grid'5000 slice"]
    assert win200.throughput >= fast200.throughput - 1e-9
