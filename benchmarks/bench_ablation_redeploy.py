"""Ablation: iterative improvement vs planning from scratch.

The authors' earlier tool ([6,7]) improved *existing* deployments by
repeated bottleneck removal; Algorithm 1 plans from scratch.  This
benchmark stages the comparison the paper implies: start from the
intuitive star that an operator would deploy first, hand the improver the
remaining nodes as spares, and track how close iterative repair gets to
the from-scratch plan on the Figure 6 scenario.
"""

from __future__ import annotations

import pytest

from repro.analysis.report import ascii_table, format_rate
from repro.core.baselines import star_deployment
from repro.core.heuristic import HeuristicPlanner
from repro.core.params import DEFAULT_PARAMS
from repro.extensions.redeploy import improve_deployment
from repro.platforms.background import heterogenize
from repro.platforms.pool import NodePool
from repro.units import dgemm_mflop


@pytest.mark.benchmark(group="ablation-redeploy")
def test_ablation_improve_vs_scratch(benchmark, emit):
    all_nodes = heterogenize(
        NodePool.homogeneous(128, 265.0, prefix="orsay"),
        loaded_fraction=0.5,
        seed=42,
    )
    wapp = dgemm_mflop(310)
    initial_sizes = (32, 64, 128)

    def run():
        scratch = HeuristicPlanner(DEFAULT_PARAMS).plan(all_nodes, wapp)
        rows = []
        for size in initial_sizes:
            deployed = all_nodes.sorted_by_power().take(size)
            spare_nodes = [
                n for n in all_nodes if n.name not in set(deployed.names)
            ]
            start = star_deployment(deployed)
            result = improve_deployment(
                start, spare_nodes, DEFAULT_PARAMS, wapp
            )
            rows.append((size, result))
        return scratch, rows

    scratch, rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table_rows = []
    for size, result in rows:
        moves = {}
        for action in result.actions:
            moves[action.move] = moves.get(action.move, 0) + 1
        table_rows.append(
            [
                f"star over top {size}",
                format_rate(result.initial_throughput),
                format_rate(result.final_throughput),
                f"{result.improvement_factor:.2f}x",
                len(result.actions),
                ", ".join(f"{k}:{v}" for k, v in sorted(moves.items())) or "-",
                f"{100 * result.final_throughput / scratch.throughput:.0f}%",
            ]
        )
    emit(
        ascii_table(
            [
                "starting deployment", "initial rho", "improved rho",
                "gain", "steps", "moves", "% of from-scratch",
            ],
            table_rows,
            title="Ablation: iterative bottleneck removal [6,7] vs "
            f"Algorithm 1 from scratch ({format_rate(scratch.throughput)} "
            "req/s) — 128-node Figure 6 scenario",
        )
    )
    for _, result in rows:
        assert result.final_throughput >= result.initial_throughput
        # Iterative repair must recover most of the from-scratch quality.
        assert result.final_throughput >= 0.8 * scratch.throughput
