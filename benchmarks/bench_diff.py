#!/usr/bin/env python
"""Warn-only comparison of two BENCH_planning.json files.

Usage::

    python benchmarks/bench_diff.py BASELINE.json CURRENT.json
    python benchmarks/bench_diff.py --threshold 0.3 base.json current.json

Loads two ``repro-bench/1`` files, matches measurement cells by
``(name, params)``, and prints the relative change per common cell.
Cells whose regression exceeds ``--threshold`` (default 25 %) are
flagged with ``!!``.  Quick and full runs use different problem sizes —
when the two files disagree on the ``quick`` flag, cells rarely overlap
and the script says so instead of comparing apples to oranges.

Control-plane cells additionally carry the controller's own adaptation
cost in ``extra.overhead_fraction``; the ROADMAP budgets that at ~5 % of
wall time.  The current file's ``control_loop`` / ``live_migration`` /
``concurrent_migration`` cells are checked against ``--overhead-budget``
(default 0.05) and flagged — warn-only by default, like everything here.

This is the CI ``bench-smoke`` job's trend check.  By default it
**always exits 0**: the benchmark JSON exists to make performance
drifts attributable, not to gate merges (see benchmarks/README.md), and
CI noise would make a hard gate flaky anyway.  ``--strict`` turns
exactly one class of finding into a nonzero exit — control-plane cells
over the adaptation-overhead budget, an *absolute* check that does not
depend on a noisy baseline — for local pre-merge runs and downstream
consumers that want a gate; the trend comparison stays warn-only even
then, and so do unreadable/mismatched inputs (no budget can be checked
without a current file to check it in).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def _cells(payload: dict) -> dict[tuple, dict]:
    cells = {}
    for result in payload.get("results", []):
        key = (
            result.get("name", "?"),
            tuple(sorted(result.get("params", {}).items())),
        )
        cells[key] = result
    return cells


def _format_key(key: tuple) -> str:
    name, params = key
    rendered = ",".join(f"{k}={v}" for k, v in params)
    return f"{name}[{rendered}]" if rendered else name


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", type=Path)
    parser.add_argument("current", type=Path)
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.25,
        help="relative regression that earns a '!!' flag (default 0.25)",
    )
    parser.add_argument(
        "--overhead-budget",
        type=float,
        default=0.05,
        help="controller adaptation overhead_fraction that earns a "
        "'!!' flag on control-plane cells (default 0.05, the "
        "ROADMAP's ~5%% budget)",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="exit 1 when a control-plane cell busts the overhead "
        "budget (the trend comparison stays warn-only); default is "
        "warn-only everywhere, which is what CI uses",
    )
    args = parser.parse_args(argv)
    # Warn-only contract on inputs: whatever is wrong with them, report
    # and exit 0 — even --strict only gates on a *measured* budget
    # breach, never on a comparison that could not run.
    try:
        return _compare(args)
    except Exception as exc:  # noqa: BLE001 - warn-only by design
        print(f"bench-diff: comparison failed ({exc!r}); skipping")
        return 0


def _compare(args: argparse.Namespace) -> int:
    try:
        baseline = json.loads(args.baseline.read_text())
        current = json.loads(args.current.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        print(f"bench-diff: cannot load inputs ({exc}); skipping")
        return 0

    for payload, path in ((baseline, args.baseline), (current, args.current)):
        if payload.get("schema") != "repro-bench/1":
            print(
                f"bench-diff: {path} has schema "
                f"{payload.get('schema')!r}, expected repro-bench/1; skipping"
            )
            return 0

    if baseline.get("quick") != current.get("quick"):
        print(
            "bench-diff: baseline and current differ in the `quick` flag "
            f"(baseline quick={baseline.get('quick')}, "
            f"current quick={current.get('quick')}); sizes are not "
            "comparable, reporting overlapping cells only"
        )

    base_cells = _cells(baseline)
    cur_cells = _cells(current)
    common = sorted(set(base_cells) & set(cur_cells))
    if not common:
        print("bench-diff: no common measurement cells; nothing to compare")
        return _budget_exit(current, args)

    print(
        f"bench-diff: {len(common)} common cell(s), "
        f"threshold {args.threshold:.0%} "
        "(warn-only; this never fails the build)"
    )
    flagged = 0
    for key in common:
        base, cur = base_cells[key], cur_cells[key]
        metric = base.get("metric", "?")
        before, after = base.get("value"), cur.get("value")
        if (
            not isinstance(before, (int, float))
            or not isinstance(after, (int, float))
            or before == 0
        ):
            print(
                f"     {_format_key(key)}: skipped "
                f"(baseline={before!r}, current={after!r})"
            )
            continue
        change = (after - before) / before
        # For `seconds`, larger is worse; for rates/ratios, smaller is.
        regression = change if metric == "seconds" else -change
        flag = "!!" if regression > args.threshold else "  "
        if flag == "!!":
            flagged += 1
        print(
            f"  {flag} {_format_key(key)}: {before:g} -> {after:g} "
            f"{metric} ({change:+.1%})"
        )
    if flagged:
        print(
            f"bench-diff: {flagged} cell(s) regressed beyond "
            f"{args.threshold:.0%} — worth a look (not failing the build)"
        )
    return _budget_exit(current, args)


#: Measurement families whose `extra.overhead_fraction` is controller
#: adaptation cost, subject to the ROADMAP's ~5 % budget.  `fluid_scale`
#: is deliberately absent (and publishes no overhead_fraction): the
#: hybrid model collapses simulation wall time while the controller's
#: per-epoch bookkeeping stays constant, so its overhead *fraction*
#: rises by construction — the cell gates on absolute wall time against
#: the discrete `control_loop` reference instead (asserted in-suite).
_CONTROL_CELLS = (
    "control_loop",
    "live_migration",
    "concurrent_migration",
    "distributed_epoch",
)


def _budget_exit(current: dict, args: argparse.Namespace) -> int:
    """Run the budget check and turn it into the process exit code.

    The single place the ``--strict`` gating rule lives: breaches fail
    the run only under ``--strict``; everything else exits 0.
    """
    over = _check_overhead_budget(
        current, args.overhead_budget, strict=args.strict
    )
    return 1 if args.strict and over else 0


def _check_overhead_budget(
    current: dict, budget: float, strict: bool = False
) -> int:
    """Flag control-plane cells whose adaptation overhead busts the budget.

    Checked on the *current* run only — the budget is absolute, not a
    trend, so it needs no baseline cell to compare against.  Returns
    the number of cells over budget (what ``--strict`` gates on).
    """
    over = []
    for key, result in _cells(current).items():
        if key[0] not in _CONTROL_CELLS:
            continue
        fraction = result.get("extra", {}).get("overhead_fraction")
        if isinstance(fraction, (int, float)) and fraction > budget:
            over.append((key, fraction))
    verdict = "failing the build" if strict else "warn-only"
    for key, fraction in over:
        print(
            f"  !! {_format_key(key)}: adaptation overhead "
            f"{fraction:.1%} of wall time exceeds the ~{budget:.0%} "
            f"budget ({verdict})"
        )
    if over:
        print(
            f"bench-diff: {len(over)} control-plane cell(s) over the "
            f"adaptation-overhead budget — "
            + (
                "failing the build (--strict)"
                if strict
                else "worth a look (not failing the build)"
            )
        )
    return len(over)


if __name__ == "__main__":
    sys.exit(main())
