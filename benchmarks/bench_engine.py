"""Microbenchmarks of the simulation substrate itself.

Not a paper artifact — these keep the DES fast enough to regenerate the
figures, and catch performance regressions in the event loop and the
serial resource (the per-event cost multiplies into every experiment).
"""

from __future__ import annotations

import pytest

from repro.core.baselines import star_deployment
from repro.core.params import DEFAULT_PARAMS
from repro.middleware.client import ClosedLoopClient
from repro.middleware.system import MiddlewareSystem
from repro.platforms.pool import NodePool
from repro.sim.engine import Simulator
from repro.sim.resources import SerialResource
from repro.units import dgemm_mflop


@pytest.mark.benchmark(group="engine")
def test_engine_event_throughput(benchmark):
    """Raw event loop: schedule/fire chains (ping-pong)."""

    def run():
        sim = Simulator()
        count = 0

        def tick():
            nonlocal count
            count += 1
            if count < 100_000:
                sim.schedule(0.001, tick)

        sim.schedule(0.0, tick)
        sim.run()
        return sim.events_processed

    events = benchmark(run)
    assert events == 100_000


@pytest.mark.benchmark(group="engine")
def test_resource_task_throughput(benchmark):
    """Serial resource: back-to-back task submission/completion."""

    def run():
        sim = Simulator()
        res = SerialResource(sim, "n")
        remaining = [50_000]

        def feed():
            if remaining[0] > 0:
                remaining[0] -= 1
                res.submit(0.001, "compute", feed)

        feed()
        sim.run()
        return res.tasks_done

    done = benchmark(run)
    assert done == 50_000


@pytest.mark.benchmark(group="engine")
def test_middleware_request_throughput(benchmark):
    """Full request lifecycle cost on a 9-node star (events per request
    dominate every figure's wall time)."""
    hierarchy = star_deployment(NodePool.homogeneous(9, 265.0))

    def run():
        sim = Simulator()
        system = MiddlewareSystem(sim, hierarchy, DEFAULT_PARAMS, dgemm_mflop(100))
        clients = [ClosedLoopClient(system, f"c{i}") for i in range(20)]
        for i, client in enumerate(clients):
            sim.schedule(i * 0.001, client.start)
        sim.run_until(2.0)
        return system.total_completed()

    completed = benchmark(run)
    assert completed > 100
