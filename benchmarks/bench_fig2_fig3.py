"""Figures 2 and 3 — star hierarchies, DGEMM 10x10 (agent-bound regime).

Figure 2 (paper): measured throughput vs. number of clients for a star
with 1 SeD vs. 2 SeDs — both deployments saturate at the *agent*, and the
second server slightly *hurts* (merging one more reply costs more than it
adds).  Figure 3: predicted vs. measured maximum throughput for the same
two hierarchies (paper: predicted 1460/1052 vs measured 295/283 — the gap
comes from CPU cache effects on 10x10 matrices, which the DES does not
model, so our measured values sit on the prediction; the *shape*, 2 SeDs
<= 1 SeD in both columns, is the reproduction target).
"""

from __future__ import annotations

import pytest

from repro.analysis.experiments import measure_load_curve
from repro.analysis.report import ascii_chart, ascii_table, format_rate
from repro.core.baselines import star_deployment
from repro.core.params import DEFAULT_PARAMS
from repro.core.throughput import hierarchy_throughput
from repro.platforms.pool import NodePool
from repro.units import dgemm_mflop

WAPP = dgemm_mflop(10)
CLIENT_COUNTS = (1, 2, 5, 10, 25, 50, 100, 150, 200)
DURATION = 6.0


def _deployments():
    return {
        "1 SeD": star_deployment(NodePool.homogeneous(2, 265.0)),
        "2 SeDs": star_deployment(NodePool.homogeneous(3, 265.0)),
    }


@pytest.mark.benchmark(group="fig2")
def test_fig2_load_curves_dgemm10(benchmark, emit):
    def run():
        return {
            label: measure_load_curve(
                h, DEFAULT_PARAMS, WAPP,
                client_counts=CLIENT_COUNTS, duration=DURATION, label=label,
            )
            for label, h in _deployments().items()
        }

    curves = benchmark.pedantic(run, rounds=1, iterations=1)
    chart = ascii_chart(
        {
            label: (curve.clients, curve.rates)
            for label, curve in curves.items()
        },
        title="Figure 2: star with 1 vs 2 SeDs, DGEMM 10x10 "
        "(measured requests/s vs clients)",
    )
    table = ascii_table(
        ["clients"] + list(curves),
        [
            [c] + [format_rate(curves[lbl].rates[i]) for lbl in curves]
            for i, c in enumerate(CLIENT_COUNTS)
        ],
    )
    emit(chart + "\n" + table)

    one, two = curves["1 SeD"], curves["2 SeDs"]
    # Reproduction checks: agent-bound; the second SeD does not help.
    assert two.peak_rate <= one.peak_rate * 1.01
    # Both curves saturate (tail flat within 5%).
    for curve in curves.values():
        assert curve.rates[-1] == pytest.approx(curve.rates[-2], rel=0.05)


@pytest.mark.benchmark(group="fig3")
def test_fig3_predicted_vs_measured_dgemm10(benchmark, emit):
    def run():
        rows = []
        for label, h in _deployments().items():
            predicted = hierarchy_throughput(h, DEFAULT_PARAMS, WAPP).throughput
            measured = measure_load_curve(
                h, DEFAULT_PARAMS, WAPP, client_counts=(150,),
                duration=8.0, label=label,
            ).peak_rate
            rows.append((label, predicted, measured))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        ascii_table(
            ["hierarchy", "predicted (req/s)", "measured (req/s)",
             "paper predicted", "paper measured"],
            [
                [label, format_rate(p), format_rate(m), paper_p, paper_m]
                for (label, p, m), (paper_p, paper_m) in zip(
                    rows, [("1460", "295"), ("1052", "283")]
                )
            ],
            title="Figure 3: predicted vs measured max throughput, "
            "DGEMM 10x10 (paper values shown for shape comparison)",
        )
    )
    (label1, p1, m1), (label2, p2, m2) = rows
    # Shape: both columns rank 1 SeD >= 2 SeDs, as in the paper.
    assert p1 >= p2
    assert m1 >= m2 * 0.99
    # DES measurement tracks the model (no cache effects to diverge on).
    assert m1 == pytest.approx(p1, rel=0.05)
    assert m2 == pytest.approx(p2, rel=0.05)
