"""Figures 4 and 5 — star hierarchies, DGEMM 200x200 (server-bound regime).

Figure 4 (paper): measured throughput vs. number of clients for 1 vs 2
SeDs with 200x200 requests — both hierarchies are limited by *server*
performance, so the second SeD roughly doubles throughput.  Figure 5:
predicted vs. measured maxima (paper: predicted 35/70 vs measured 45/90;
our DES sits on the prediction; the reproduction target is the 2x ratio
and the measured ranking).
"""

from __future__ import annotations

import pytest

from repro.analysis.experiments import measure_load_curve
from repro.analysis.report import ascii_chart, ascii_table, format_rate
from repro.core.baselines import star_deployment
from repro.core.params import DEFAULT_PARAMS
from repro.core.throughput import hierarchy_throughput
from repro.platforms.pool import NodePool
from repro.units import dgemm_mflop

WAPP = dgemm_mflop(200)
CLIENT_COUNTS = (1, 2, 4, 8, 16, 30, 60, 100)
DURATION = 12.0


def _deployments():
    return {
        "1 SeD": star_deployment(NodePool.homogeneous(2, 265.0)),
        "2 SeDs": star_deployment(NodePool.homogeneous(3, 265.0)),
    }


@pytest.mark.benchmark(group="fig4")
def test_fig4_load_curves_dgemm200(benchmark, emit):
    def run():
        return {
            label: measure_load_curve(
                h, DEFAULT_PARAMS, WAPP,
                client_counts=CLIENT_COUNTS, duration=DURATION, label=label,
            )
            for label, h in _deployments().items()
        }

    curves = benchmark.pedantic(run, rounds=1, iterations=1)
    chart = ascii_chart(
        {label: (c.clients, c.rates) for label, c in curves.items()},
        title="Figure 4: star with 1 vs 2 SeDs, DGEMM 200x200 "
        "(measured requests/s vs clients)",
    )
    table = ascii_table(
        ["clients"] + list(curves),
        [
            [c] + [format_rate(curves[lbl].rates[i]) for lbl in curves]
            for i, c in enumerate(CLIENT_COUNTS)
        ],
    )
    emit(chart + "\n" + table)

    one, two = curves["1 SeD"], curves["2 SeDs"]
    # Reproduction check: server-bound — second SeD doubles throughput.
    assert two.peak_rate / one.peak_rate == pytest.approx(2.0, rel=0.05)


@pytest.mark.benchmark(group="fig5")
def test_fig5_predicted_vs_measured_dgemm200(benchmark, emit):
    def run():
        rows = []
        for label, h in _deployments().items():
            predicted = hierarchy_throughput(h, DEFAULT_PARAMS, WAPP).throughput
            measured = measure_load_curve(
                h, DEFAULT_PARAMS, WAPP, client_counts=(60,),
                duration=15.0, label=label,
            ).peak_rate
            rows.append((label, predicted, measured))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        ascii_table(
            ["hierarchy", "predicted (req/s)", "measured (req/s)",
             "paper predicted", "paper measured"],
            [
                [label, format_rate(p), format_rate(m), paper_p, paper_m]
                for (label, p, m), (paper_p, paper_m) in zip(
                    rows, [("35", "45"), ("70", "90")]
                )
            ],
            title="Figure 5: predicted vs measured max throughput, "
            "DGEMM 200x200 (paper values shown for shape comparison)",
        )
    )
    (_, p1, m1), (_, p2, m2) = rows
    # Shape: the model correctly predicts the doubling in both columns.
    assert p2 / p1 == pytest.approx(2.0, rel=0.02)
    assert m2 / m1 == pytest.approx(2.0, rel=0.05)
    assert m1 == pytest.approx(p1, rel=0.05)
    assert m2 == pytest.approx(p2, rel=0.05)
