"""Figure 6 — automatic vs intuitive deployments, DGEMM 310x310.

Paper setup: 200 Orsay nodes heterogenized by background matrix products
(§5.3), DGEMM 310x310 clients from Lyon.  Compared deployments: the
heuristic's automatic hierarchy (156 nodes, three levels), a star over
all 200 nodes, and a balanced 1 + 14x14 tree.  Result: automatic >
balanced > star, with the star collapsing at its single agent.

Reproduction: the same §5.3 treatment on a 128-node pool (scaled from 200
to keep the DES affordable — the star-agent collapse that drives the
figure needs >~100 nodes to manifest, and at 128 the model ranks the
three deployments 434 > 332 > 217 req/s, the paper's ordering; the
planner is additionally exercised at full 200-node scale in the ablation
benchmarks, where only the analytic model is evaluated).  The balanced
tree scales 14x14 -> 11x~10.5, the paper's sqrt sizing.
"""

from __future__ import annotations

import pytest

from repro.analysis.experiments import measure_load_curve
from repro.analysis.report import ascii_chart, ascii_table, format_rate
from repro.api import PlanningSession
from repro.core.params import DEFAULT_PARAMS
from repro.core.throughput import hierarchy_throughput
from repro.platforms.background import heterogenize
from repro.platforms.pool import NodePool
from repro.units import dgemm_mflop

POOL_SIZE = 128
MIDDLE_AGENTS = 11
WAPP = dgemm_mflop(310)
CLIENT_COUNTS = (20, 60, 120, 220, 320)
DURATION = 6.0


def _pool() -> NodePool:
    return heterogenize(
        NodePool.homogeneous(POOL_SIZE, 265.0, prefix="orsay"),
        loaded_fraction=0.5,
        seed=42,
    )


def _deployments(pool: NodePool):
    session = PlanningSession()
    return {
        "automatic": session.plan(pool=pool, app_work=WAPP).hierarchy,
        "balanced": session.plan(
            pool=pool, app_work=WAPP, method="balanced",
            options={"middle_agents": MIDDLE_AGENTS},
        ).hierarchy,
        "star": session.plan(
            pool=pool, app_work=WAPP, method="star"
        ).hierarchy,
    }


@pytest.mark.benchmark(group="fig6")
def test_fig6_automatic_vs_intuitive_dgemm310(benchmark, emit):
    pool = _pool()
    deployments = _deployments(pool)

    def run():
        return {
            label: measure_load_curve(
                h, DEFAULT_PARAMS, WAPP,
                client_counts=CLIENT_COUNTS, duration=DURATION, label=label,
            )
            for label, h in deployments.items()
        }

    curves = benchmark.pedantic(run, rounds=1, iterations=1)
    chart = ascii_chart(
        {label: (c.clients, c.rates) for label, c in curves.items()},
        title=f"Figure 6: DGEMM 310x310 on a heterogenized {POOL_SIZE}-node "
        "pool (measured requests/s vs clients)",
    )
    shape_rows = []
    for label, h in deployments.items():
        n, a, s, height = h.shape_signature()
        predicted = hierarchy_throughput(h, DEFAULT_PARAMS, WAPP).throughput
        shape_rows.append(
            [label, n, a, s, height, format_rate(predicted),
             format_rate(curves[label].peak_rate)]
        )
    table = ascii_table(
        ["deployment", "nodes", "agents", "servers", "height",
         "predicted", "measured peak"],
        shape_rows,
    )
    emit(chart + "\n" + table)

    # Reproduction checks — the paper's ranking, in model and measurement.
    assert curves["automatic"].peak_rate > curves["balanced"].peak_rate
    assert curves["balanced"].peak_rate > curves["star"].peak_rate
    # The automatic deployment is multi-level with >1 agent, like the
    # paper's 156-node 3-level hierarchy.
    auto = deployments["automatic"]
    assert len(auto.agents) > 1
    assert auto.height >= 2
