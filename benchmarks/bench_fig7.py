"""Figure 7 — automatic (= star) vs balanced, DGEMM 1000x1000.

Paper setup: the same heterogenized 200-node pool, but with 1000x1000
requests the heuristic generates a *star* (the workload is so
service-bound that every node should serve and one agent suffices), and
the star beats the balanced tree — whose 14 agent nodes are wasted.

Reproduction: same scaled pool as Figure 6.  The checks are (a) the
heuristic emits a single-agent spanning deployment, and (b) the measured
star curve dominates the balanced one by roughly the server-count ratio.
"""

from __future__ import annotations

import pytest

from repro.analysis.experiments import measure_load_curve
from repro.analysis.report import ascii_chart, ascii_table, format_rate
from repro.api import PlanningSession
from repro.core.params import DEFAULT_PARAMS
from repro.core.throughput import hierarchy_throughput
from repro.platforms.background import heterogenize
from repro.platforms.pool import NodePool
from repro.units import dgemm_mflop

POOL_SIZE = 128
MIDDLE_AGENTS = 11
WAPP = dgemm_mflop(1000)
CLIENT_COUNTS = (5, 15, 30, 60, 120)
DURATION = 15.0


@pytest.mark.benchmark(group="fig7")
def test_fig7_star_vs_balanced_dgemm1000(benchmark, emit):
    pool = heterogenize(
        NodePool.homogeneous(POOL_SIZE, 265.0, prefix="orsay"),
        loaded_fraction=0.5,
        seed=42,
    )
    session = PlanningSession()
    automatic = session.plan(pool=pool, app_work=WAPP).hierarchy
    deployments = {
        "automatic/star": automatic,
        "balanced": session.plan(
            pool=pool, app_work=WAPP, method="balanced",
            options={"middle_agents": MIDDLE_AGENTS},
        ).hierarchy,
    }

    def run():
        return {
            label: measure_load_curve(
                h, DEFAULT_PARAMS, WAPP,
                client_counts=CLIENT_COUNTS, duration=DURATION, label=label,
            )
            for label, h in deployments.items()
        }

    curves = benchmark.pedantic(run, rounds=1, iterations=1)
    chart = ascii_chart(
        {label: (c.clients, c.rates) for label, c in curves.items()},
        title=f"Figure 7: DGEMM 1000x1000 on a heterogenized {POOL_SIZE}-node "
        "pool (measured requests/s vs clients)",
    )
    rows = []
    for label, h in deployments.items():
        n, a, s, height = h.shape_signature()
        predicted = hierarchy_throughput(h, DEFAULT_PARAMS, WAPP).throughput
        rows.append(
            [label, n, a, s, height, format_rate(predicted),
             format_rate(curves[label].peak_rate)]
        )
    emit(chart + "\n" + ascii_table(
        ["deployment", "nodes", "agents", "servers", "height",
         "predicted", "measured peak"],
        rows,
    ))

    # Reproduction checks.
    assert len(automatic.agents) == 1, "heuristic must emit a star"
    assert len(automatic) == POOL_SIZE, "the star must span the pool"
    assert (
        curves["automatic/star"].peak_rate > curves["balanced"].peak_rate
    )
    # The gap tracks the serving-capacity gap: balanced wastes its middle
    # agents' compute on scheduling nobody needs at this grain.
    predicted_ratio = (
        hierarchy_throughput(automatic, DEFAULT_PARAMS, WAPP).throughput
        / hierarchy_throughput(
            deployments["balanced"], DEFAULT_PARAMS, WAPP
        ).throughput
    )
    measured_ratio = (
        curves["automatic/star"].peak_rate / curves["balanced"].peak_rate
    )
    assert measured_ratio == pytest.approx(predicted_ratio, rel=0.1)
