"""Table 3 — calibrated middleware parameter values.

Paper methodology (§5.1): deploy 1 agent + 1 DGEMM server, run 100 serial
clients, capture all traffic (tcpdump/Ethereal) for message sizes, record
per-message processing times, fit Wrep against agent degree over star
deployments (the paper reports correlation 0.97), and rate the node with
a Linpack mini-benchmark.

Reproduction: the same campaign against the simulated middleware.  The
acceptance criterion is recovering the ground-truth parameter set the
simulation ran with; the fit correlation is 1.0 here because the DES has
no cache effects (the paper's 0.97 gap came from real hardware noise).
"""

from __future__ import annotations

import pytest

from repro.calibration.table3 import calibrate, render_table3
from repro.core.params import DEFAULT_PARAMS


@pytest.mark.benchmark(group="table3")
def test_table3_calibration_campaign(benchmark, emit):
    result = benchmark.pedantic(
        lambda: calibrate(
            DEFAULT_PARAMS,
            capture_repetitions=100,
            fit_degrees=(1, 2, 4, 8, 12, 16, 24, 32),
            fit_repetitions=20,
        ),
        rounds=1,
        iterations=1,
    )
    emit(render_table3(result, reference=DEFAULT_PARAMS))

    # Reproduction checks: the campaign recovers the ground truth.
    assert result.params.wreq == pytest.approx(DEFAULT_PARAMS.wreq, rel=1e-6)
    assert result.params.wfix == pytest.approx(DEFAULT_PARAMS.wfix, rel=1e-6)
    assert result.params.wsel == pytest.approx(DEFAULT_PARAMS.wsel, rel=1e-6)
    assert result.params.wpre == pytest.approx(DEFAULT_PARAMS.wpre, rel=1e-6)
    assert result.fit_quality > 0.97  # the paper's floor
