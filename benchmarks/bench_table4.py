"""Table 4 — percentage of optimal throughput achieved by the heuristic.

Paper setup: homogeneous clusters; the heterogeneous heuristic is scored
against the provably-optimal homogeneous planner of [10] (complete
spanning d-ary trees) for DGEMM sizes 10/100/310/1000 on pools of
21/25/45/21 nodes.  Paper results: 100%, 100%, 89%, 100%, with degrees
(opt/homo/heur) of 1/1/1, 2/2/2, 15/22/33 and 20/20/20.

Reproduction notes: the paper's "Opt. Deg." came from exhaustive *testbed*
measurements while "Homo. Deg." came from the model — they differ only
because real hardware diverges from the model (cache effects at size
310).  Our testbed IS the model's world, so the two columns coincide
here and the interesting column is "Heur. Perf.", which must meet the
paper's >= 89% floor on every row.  The DES cross-check column measures
the heuristic's plan under saturating load.
"""

from __future__ import annotations

import pytest

from repro.analysis.experiments import run_fixed_load
from repro.analysis.report import ascii_table, format_rate
from repro.api import PlanRequest, PlanningSession
from repro.core.params import DEFAULT_PARAMS
from repro.platforms.pool import NodePool
from repro.units import dgemm_mflop

ROWS = (  # (dgemm size, pool size, paper's heuristic %)
    (10, 21, 100.0),
    (100, 25, 100.0),
    (310, 45, 89.0),
    (1000, 21, 100.0),
)

#: DES load levels per row, sized to saturate each regime cheaply.
DES_CLIENTS = {10: 80, 100: 120, 310: 80, 1000: 40}


@pytest.mark.benchmark(group="table4")
def test_table4_percent_of_optimal(benchmark, emit):
    def run():
        # Both planners on every row, fanned out through one session:
        # a 2 x len(ROWS) request grid via the registry API.
        session = PlanningSession()
        requests = [
            PlanRequest(
                pool=NodePool.homogeneous(nodes, 265.0),
                app_work=dgemm_mflop(size),
                method=method,
            )
            for size, nodes, _paper_pct in ROWS
            for method in ("homogeneous", "heuristic")
        ]
        deployments = session.plan_many(requests, parallel=True)
        table = []
        for (size, nodes, paper_pct), optimal, heuristic in zip(
            ROWS, deployments[::2], deployments[1::2]
        ):
            percent = 100.0 * heuristic.throughput / optimal.throughput
            measured = run_fixed_load(
                heuristic, DEFAULT_PARAMS, dgemm_mflop(size),
                clients=DES_CLIENTS[size],
                duration=6.0 if size <= 100 else 12.0,
            ).throughput
            opt_degree = optimal.hierarchy.degree(optimal.hierarchy.root)
            heur_degree = heuristic.hierarchy.degree(
                heuristic.hierarchy.root
            )
            table.append(
                (size, nodes, opt_degree, heur_degree,
                 percent, paper_pct, optimal.throughput,
                 heuristic.throughput, measured)
            )
        return table

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        ascii_table(
            [
                "DGEMM", "nodes", "opt deg", "heur deg",
                "heur % of opt", "paper %", "opt rho", "heur rho",
                "heur rho (DES)",
            ],
            [
                [
                    size, nodes, od, hd, f"{pct:.1f}%", f"{paper:.1f}%",
                    format_rate(orho), format_rate(hrho), format_rate(mrho),
                ]
                for size, nodes, od, hd, pct, paper, orho, hrho, mrho in table
            ],
            title="Table 4: percent of optimal achieved by the heuristic "
            "(homogeneous pools)",
        )
    )

    for size, _nodes, _od, _hd, pct, paper_pct, _o, hrho, mrho in table:
        # The paper's floor: >= 89% of optimal on every row.
        assert pct >= paper_pct - 1e-6, f"DGEMM {size}: {pct:.1f}% < paper"
        # The DES agrees with the model's score for the heuristic plan.
        assert mrho == pytest.approx(hrho, rel=0.08)
