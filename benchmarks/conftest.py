"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper and prints
it (run with ``pytest benchmarks/ --benchmark-only -s`` to see the
artifacts).  The printed output is also attached to the benchmark's
``extra_info`` so it survives in ``--benchmark-json`` exports.

Simulated platforms are scaled-down versions of the paper's 200-node
Grid'5000 slice (documented per benchmark); scaling preserves the shape
of every comparison while keeping the DES affordable.
"""

from __future__ import annotations

import pytest


@pytest.fixture
def emit(benchmark, capsys):
    """Print an artifact and attach it to the benchmark record."""

    def _emit(text: str) -> None:
        with capsys.disabled():
            print()
            print(text)
        benchmark.extra_info["artifact"] = text

    return _emit
