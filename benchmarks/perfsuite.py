#!/usr/bin/env python
"""Tracked performance suite — times the hot paths, writes BENCH_planning.json.

Unlike the ``bench_*`` paper-artifact benchmarks, this suite exists to
record a *performance trajectory* across PRs.  It times

* heuristic planner scaling over pool sizes 64 → 2048, against a frozen
  in-file reimplementation of the pre-optimization (PR 1) solver loop, so
  the speedup of the vectorized/incremental evaluation layer stays
  measurable forever;
* a scenario-grid ``plan_many`` fan-out (100 requests across pools,
  workloads and planner methods), serial vs. parallel;
* discrete-event engine throughput: a schedule/fire ping-pong and a
  cancellation-heavy churn storm that exercises heap compaction;
* the batched kernels against their scalar counterparts;
* the online control plane: a full autoscaling run under a flash-crowd
  trace (reactive policy vs. the static ``hold`` baseline), separating
  total wall time from the controller's own adaptation overhead;
* hybrid fluid/discrete population scaling: a diurnal trace carrying a
  million-client population (a small sampled cohort simulated
  discretely, the rest as an analytic fluid mass) through the same
  reactive control loop, asserted to finish in under the discrete
  ``control_loop`` cell's wall time despite offering four orders of
  magnitude more clients — plus in-cell checks that the hybrid run is
  unperturbed by tracing, bit-identical between serial and pooled
  ``control_sweep`` execution, and in served-rate agreement with the
  all-discrete simulation at small scale;
* live migration vs. stop-the-world restarts: the same reactive run on
  the ``black_friday`` trace fixture once per migration mode, recording
  served requests and effective downtime alongside wall time;
* concurrent vs. serial live migration: the ``black_friday`` reactive
  run again, once with one-region-at-a-time drains and once with the
  plan's dependency waves drained in parallel, recording the total
  migration window the concurrent schedule shrinks (asserted strictly
  shorter, with served throughput no worse);
* the distributed epoch: the same run once per act-stage executor —
  ``inline`` (no command protocol), ``local`` (full wire round-trip,
  in-process), ``pool`` (region commands fanned out to a process
  pool) — with the three timelines asserted bit-identical in-cell, so
  the cell measures purely what the master/executor protocol costs;
* fault recovery: the ``black_friday`` reactive run with the root's
  busiest child crashed mid-surge vs. the fault-free baseline,
  recording dead-lettered/lost conversations and the served-throughput
  recovery (asserted: zero lost, >= 90 % of baseline served);
* fault detection: the same crash made *silent* under timeout-modelled
  detection — the control plane infers it from expired watchdogs
  instead of being told — recording the injection-to-confirmation
  latency alongside wall time (asserted: exactly one confirmation,
  latency within ``threshold x timeout + one epoch``, zero lost).

Run it from the repository root::

    PYTHONPATH=src python benchmarks/perfsuite.py            # full, ~min
    PYTHONPATH=src python benchmarks/perfsuite.py --quick    # CI smoke

Output schema (``repro-bench/1``) — one JSON object::

    {
      "schema": "repro-bench/1",     # format version of this file
      "suite": "planning",
      "quick": false,                # --quick runs are smaller, not comparable
      "created_unix": 1753...,       # seconds since epoch
      "python": "3.12.1", "platform": "...", "numpy": "2.4.6" | null,
      "cpu_count": 8,
      "results": [                   # one entry per measurement
        {
          "name": "heuristic_plan",  # measurement family
          "params": {"nodes": 1024}, # inputs that define the cell
          "metric": "seconds",       # unit: seconds | events_per_s | ratio
          "value": 0.142,            # best-of-repeat measurement
          "extra": {...}             # free-form context (throughput, counts)
        }, ...
      ]
    }

Comparisons are valid between runs with equal (name, params, quick) cells
on similar hardware.  The driver CI uploads the ``--quick`` artifact per
commit; run the full suite locally before/after perf work.
"""

from __future__ import annotations

import argparse
import json
import math
import os
import platform
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.api import PlanningSession, scenario_grid  # noqa: E402
from repro.core.heuristic import HeuristicPlanner, sort_nodes  # noqa: E402
from repro.core.params import DEFAULT_PARAMS  # noqa: E402
from repro.core.throughput import (  # noqa: E402
    agent_sched_throughput,
    server_sched_throughput,
)
from repro.core.kernels import (  # noqa: E402
    HAVE_NUMPY,
    supported_children_many,
)
from repro.platforms.pool import NodePool  # noqa: E402
from repro.sim.engine import Simulator  # noqa: E402
from repro.units import dgemm_mflop  # noqa: E402

_REL_TOL = 1e-9


def best_of(repeat: int, fn, *args):
    """(best seconds, last result) over ``repeat`` timed calls."""
    best = math.inf
    result = None
    for _ in range(repeat):
        start = time.perf_counter()
        result = fn(*args)
        best = min(best, time.perf_counter() - start)
    return best, result


# --------------------------------------------------------------------- #
# frozen pre-optimization reference (PR 1 solver loop, verbatim costs)


def _legacy_supported_children(params, power, target_rate):
    """The pre-PR ``supported_children``: constants re-derived per call."""
    fixed = (params.wreq + params.wfix) / power + (
        params.agent_sizes.sreq / params.bandwidth
        + params.agent_sizes.srep / params.bandwidth
    )
    per_child = (
        params.wsel / power
        + params.agent_sizes.round_trip / params.bandwidth
    )
    budget = 1.0 / target_rate - fixed
    if budget < per_child:
        return 0
    return int(math.floor(budget / per_child + _REL_TOL))


def _legacy_solve(params, agents, candidates, app_work):
    """The pre-PR ``_solve_for_agents`` search loop (throughput-max case).

    Kept verbatim (scalar per-node recomputation, Python prefix sums) as
    the fixed baseline the vectorized solver is measured against.
    """
    n_agents = len(agents)
    n = n_agents + len(candidates)
    if not candidates:
        return None
    k_min = 1 if n_agents == 1 else n_agents
    k_cap = n - n_agents
    if k_cap < k_min:
        return None
    t_hi = agent_sched_throughput(params, agents[0].power, 1)
    for agent in agents[1:]:
        t_hi = min(t_hi, agent_sched_throughput(params, agent.power, 2))
    prefix_power = [0.0]
    for node in candidates:
        prefix_power.append(prefix_power[-1] + node.power)

    def server_slots(t):
        slots = 0
        for agent in agents:
            slots += min(_legacy_supported_children(params, agent.power, t), n)
            if slots > n:
                break
        return max(0, min(slots - (n_agents - 1), k_cap))

    def service_of(k):
        comm = params.service_sizes.round_trip / params.bandwidth
        pred = k * params.wpre / app_work
        rate = prefix_power[k] / app_work
        return 1.0 / (comm + (1.0 + pred) / rate)

    def floor_of(k):
        return server_sched_throughput(params, candidates[k - 1].power)

    def achievable(t):
        k = server_slots(t)
        if k < k_min:
            return None
        return min(t, service_of(k), floor_of(k))

    hi_value = achievable(t_hi)
    if hi_value is not None and hi_value >= t_hi - _REL_TOL:
        k = server_slots(t_hi)
        return min(t_hi, service_of(k), floor_of(k)), k, t_hi
    t_lo = t_hi
    value = None
    for _ in range(200):
        t_lo /= 2.0
        value = achievable(t_lo)
        if value is not None and value >= t_lo - _REL_TOL:
            break
        if t_lo < 1e-12:
            return None
    lo, hi = t_lo, t_hi
    for _ in range(64):
        mid = 0.5 * (lo + hi)
        v = achievable(mid)
        if v is not None and v >= mid - _REL_TOL:
            lo = mid
        else:
            hi = mid
    k = server_slots(lo)
    return min(lo, service_of(k), floor_of(k)), k, lo


def _legacy_fixed_point_search(pool, app_work):
    """Pre-PR fixed-point sweep: best (rho, A) over all agent-tier sizes."""
    ranked = sort_nodes(pool, DEFAULT_PARAMS)
    n = len(ranked)
    best = None
    for n_agents in range(1, max(1, n // 2) + 1):
        agents = ranked[:n_agents]
        candidates = ranked[n_agents:]
        solved = _legacy_solve(DEFAULT_PARAMS, agents, candidates, app_work)
        if solved is None:
            continue
        rho, n_servers, _ = solved
        used = n_agents + n_servers
        if best is None or (rho, -used) > (best[0], -best[1]):
            best = (rho, used, n_agents)
    return best


# --------------------------------------------------------------------- #
# measurement sections


def bench_planner_scaling(sizes, repeat, legacy_cap):
    app_work = dgemm_mflop(310)
    results = []
    for size in sizes:
        pool = NodePool.uniform_random(size, low=80, high=400, seed=7)
        seconds, plan = best_of(
            repeat,
            lambda: HeuristicPlanner(DEFAULT_PARAMS).plan(pool, app_work),
        )
        extra = {
            "throughput_req_s": round(plan.throughput, 3),
            "nodes_used": plan.nodes_used,
        }
        if size <= legacy_cap:
            legacy_seconds, legacy = best_of(
                max(1, repeat // 2), _legacy_fixed_point_search, pool, app_work
            )
            extra["legacy_seconds"] = round(legacy_seconds, 6)
            extra["speedup_vs_legacy"] = round(legacy_seconds / seconds, 2)
            # The sweeps must agree on what they found.
            assert abs(legacy[0] - plan.throughput) <= 1e-6 * plan.throughput
        results.append(
            {
                "name": "heuristic_plan",
                "params": {"nodes": size},
                "metric": "seconds",
                "value": round(seconds, 6),
                "extra": extra,
            }
        )
        print(
            f"  heuristic_plan nodes={size}: {seconds * 1000:.1f} ms"
            + (
                f"  (legacy {extra['legacy_seconds'] * 1000:.1f} ms, "
                f"{extra['speedup_vs_legacy']}x)"
                if "legacy_seconds" in extra
                else ""
            )
        )
    return results


def bench_plan_many(quick):
    if quick:
        pools = [
            NodePool.uniform_random(40, low=80, high=400, seed=s)
            for s in range(2)
        ]
        works = [dgemm_mflop(k) for k in (100, 310)]
        methods = ("heuristic", "star", "balanced")
    else:
        pools = [
            NodePool.uniform_random(100, low=80, high=400, seed=s)
            for s in range(5)
        ]
        works = [dgemm_mflop(k) for k in (100, 200, 310, 400)]
        methods = ("heuristic", "star", "balanced", "chain", "homogeneous")
    grid = scenario_grid(pools, works, methods=methods)
    serial_seconds, serial = best_of(
        1, lambda: PlanningSession().plan_many(grid)
    )
    parallel_seconds, parallel = best_of(
        1, lambda: PlanningSession().plan_many(grid, parallel=True)
    )
    assert [d.describe() for d in serial] == [d.describe() for d in parallel]
    print(
        f"  plan_many grid={len(grid)}: serial {serial_seconds:.2f} s, "
        f"parallel {parallel_seconds:.2f} s"
    )
    return [
        {
            "name": "plan_many_grid",
            "params": {"requests": len(grid), "mode": "serial"},
            "metric": "seconds",
            "value": round(serial_seconds, 6),
            "extra": {"requests_per_s": round(len(grid) / serial_seconds, 2)},
        },
        {
            "name": "plan_many_grid",
            "params": {"requests": len(grid), "mode": "parallel"},
            "metric": "seconds",
            "value": round(parallel_seconds, 6),
            "extra": {
                "requests_per_s": round(len(grid) / parallel_seconds, 2),
                "workers": os.cpu_count(),
            },
        },
    ]


def bench_engine(quick):
    rounds = 20_000 if quick else 200_000

    def ping_pong():
        sim = Simulator()
        count = 0

        def tick():
            nonlocal count
            count += 1
            if count < rounds:
                sim.schedule(0.001, tick)

        sim.schedule(0.0, tick)
        sim.run()
        return sim

    seconds, sim = best_of(2, ping_pong)
    results = [
        {
            "name": "engine_ping_pong",
            "params": {"events": rounds},
            "metric": "events_per_s",
            "value": round(sim.events_processed / seconds, 1),
            "extra": {"seconds": round(seconds, 6)},
        }
    ]
    print(
        f"  engine_ping_pong: {sim.events_processed / seconds:,.0f} events/s"
    )

    def churn():
        sim = Simulator()
        survivors = 0
        for i in range(rounds):
            event = sim.schedule(1.0 + (i % 11) * 0.1, lambda: None)
            if i % 10:
                event.cancel()
            else:
                survivors += 1
        peak = sim.pending
        sim.run()
        return sim, peak, survivors

    seconds, (sim, peak, survivors) = best_of(2, churn)
    results.append(
        {
            "name": "engine_churn",
            "params": {"events": rounds, "cancelled_pct": 90},
            "metric": "events_per_s",
            "value": round(rounds / seconds, 1),
            "extra": {
                "seconds": round(seconds, 6),
                "peak_pending": peak,
                "live_events": survivors,
                "heap_compactions": sim.heap_compactions,
            },
        }
    )
    print(
        f"  engine_churn: {rounds / seconds:,.0f} schedule+cancel/s, "
        f"peak heap {peak} for {survivors} live events, "
        f"{sim.heap_compactions} compactions"
    )
    return results


def bench_kernels(quick):
    size = 1024 if quick else 4096
    pool = NodePool.uniform_random(size, low=80, high=400, seed=1)
    powers = sorted(pool.powers, reverse=True)
    target = agent_sched_throughput(DEFAULT_PARAMS, powers[0], 1) / 50.0

    from repro.core.heuristic import supported_children

    scalar_seconds, scalar = best_of(
        3,
        lambda: [
            supported_children(DEFAULT_PARAMS, p, target) for p in powers
        ],
    )
    batch_seconds, batch = best_of(
        3, lambda: supported_children_many(DEFAULT_PARAMS, powers, target)
    )
    assert batch == scalar
    ratio = scalar_seconds / batch_seconds
    print(
        f"  supported_children x{size}: scalar {scalar_seconds * 1e3:.2f} ms, "
        f"batched {batch_seconds * 1e3:.2f} ms ({ratio:.1f}x)"
    )
    return [
        {
            "name": "kernel_supported_children",
            "params": {"nodes": size},
            "metric": "ratio",
            "value": round(ratio, 2),
            "extra": {
                "scalar_seconds": round(scalar_seconds, 6),
                "batched_seconds": round(batch_seconds, 6),
                "numpy": HAVE_NUMPY,
            },
        }
    ]


def bench_control(quick):
    from repro.control import ControlLoop, flash_crowd

    if quick:
        pool_size, epochs, epoch_duration = 12, 8, 2.0
        trace = flash_crowd(base=3, peak=20, at=6, rise=2, fall=6)
    else:
        pool_size, epochs, epoch_duration = 32, 20, 4.0
        trace = flash_crowd(base=5, peak=60, at=24, rise=4, fall=20)
    pool = NodePool.uniform_random(pool_size, low=80, high=400, seed=7)
    app_work = dgemm_mflop(200)

    results = []
    for policy in ("hold", "reactive"):
        loop = ControlLoop(
            pool,
            app_work,
            trace,
            policy=policy,
            policy_options={"hysteresis": 1, "cooldown": 1}
            if policy == "reactive"
            else None,
            epochs=epochs,
            epoch_duration=epoch_duration,
            initial_fraction=0.4,
            # Pinned to the legacy mechanism: this cell tracks the
            # controller's adaptation overhead across PRs, so its
            # scenario stays fixed; bench_live_migration covers the
            # mode comparison.
            migration="restart",
            seed=3,
        )
        # best_of would pair one run's wall time with another run's
        # overhead telemetry; keep each (wall, overhead) pair together
        # and report the fastest run's numbers.
        best = None
        for _ in range(2):
            start = time.perf_counter()
            timeline = loop.run()
            wall = time.perf_counter() - start
            if best is None or wall < best[0]:
                best = (wall, loop.overhead_seconds, timeline)
        seconds, overhead_seconds, timeline = best
        results.append(
            {
                "name": "control_loop",
                "params": {
                    "policy": policy,
                    "pool": pool_size,
                    "epochs": epochs,
                },
                "metric": "seconds",
                "value": round(seconds, 6),
                "extra": {
                    # Controller bookkeeping (observe/decide/plan/price)
                    # vs. total wall: the adaptation overhead the control
                    # plane adds on top of simulating the platform.
                    "overhead_seconds": round(overhead_seconds, 6),
                    "overhead_fraction": round(
                        overhead_seconds / seconds, 4
                    ),
                    "served": timeline.total_served,
                    "redeploys": timeline.redeploys,
                    "migration_downtime_s": round(
                        timeline.migration_downtime, 4
                    ),
                    "epochs_per_s": round(epochs / seconds, 2),
                },
            }
        )
        print(
            f"  control_loop policy={policy}: {seconds:.3f} s "
            f"({overhead_seconds * 1e3:.1f} ms adaptation overhead, "
            f"{timeline.redeploys} redeploys, "
            f"{timeline.total_served} served)"
        )
    return results


def bench_fluid_scale(quick, reference_seconds):
    """Million-client hybrid run vs. the discrete control-loop cell.

    ``reference_seconds`` is the wall time of this run's own reactive
    ``control_loop`` cell (peak offered load ~10-60 clients).  The
    hybrid cell offers up to a million clients — ``population`` fluid
    multiples of a diurnal base trace, with only ``cohort`` clients
    simulated discretely — and must still finish faster: the fluid
    mass is integrated analytically, so wall time tracks the cohort,
    not the population.

    Beyond the headline timing the cell asserts the hybrid model's
    correctness contract on every run: tracing does not perturb the
    timeline, serial and process-pool ``control_sweep`` execution are
    bit-identical (tracing on), and at small scale the split run's
    served rate agrees with the all-discrete simulation.
    """
    from repro.control import ControlLoop, from_spec

    if quick:
        pool_size, epochs, epoch_duration = 12, 8, 2.0
        population, cohort = 10_000, 4
        spec = (
            "diurnal:base=4,peak=10,period=64,"
            f"population={population},cohort={cohort}"
        )
    else:
        pool_size, epochs, epoch_duration = 16, 20, 4.0
        population, cohort = 100_000, 8
        spec = (
            "diurnal:base=4,peak=10,period=160,"
            f"population={population},cohort={cohort}"
        )
    pool = NodePool.uniform_random(pool_size, low=80, high=400, seed=7)
    app_work = dgemm_mflop(200)
    kwargs = dict(
        policy="reactive",
        policy_options={"hysteresis": 1, "cooldown": 1},
        epochs=epochs,
        epoch_duration=epoch_duration,
        initial_fraction=0.4,
        migration="restart",
        seed=3,
    )

    loop = ControlLoop(pool, app_work, from_spec(spec), **kwargs)
    best = None
    for _ in range(2):
        start = time.perf_counter()
        timeline = loop.run()
        wall = time.perf_counter() - start
        if best is None or wall < best[0]:
            best = (wall, loop.overhead_seconds, timeline)
    seconds, overhead_seconds, timeline = best

    # Tracing must not perturb the hybrid run (fluid state included).
    traced = ControlLoop(
        pool, app_work, from_spec(spec), obs=True, **kwargs
    )
    assert traced.run() == timeline

    # Serial vs. process-pool sweep bit-identity, tracing on: hybrid
    # trace specs transport as strings, fluid integration is pure
    # arithmetic, so the timelines *and* exported traces must match.
    sweep_pool = NodePool.uniform_random(8, low=80, high=400, seed=7)
    sweep_kw = dict(
        traces=("diurnal:base=4,peak=10,period=64,population=1000,cohort=4",),
        policies=("reactive",),
        seeds=(0, 1),
        policy_options={"reactive": {"hysteresis": 1, "cooldown": 1}},
        epochs=5,
        epoch_duration=2.0,
        obs=True,
    )
    session = PlanningSession()
    serial = session.control_sweep(
        sweep_pool, app_work, parallel=False, **sweep_kw
    )
    pooled = session.control_sweep(
        sweep_pool, app_work, parallel=True, **sweep_kw
    )
    assert [c.timeline for c in serial] == [c.timeline for c in pooled]
    assert [c.trace_jsonl for c in serial] == [c.trace_jsonl for c in pooled]

    # Small-scale agreement: with a cohort that covers only part of the
    # load, the fluid approximation's served-rate curve must stay close
    # to the all-discrete run it replaces.
    base = "diurnal:base=4,peak=10,period=64"
    agree_kw = dict(kwargs, epochs=6, epoch_duration=2.0)
    discrete = ControlLoop(
        sweep_pool, app_work, from_spec(base), **agree_kw
    ).run()
    split = ControlLoop(
        sweep_pool, app_work, from_spec(base + ",cohort=4"), **agree_kw
    ).run()
    agreement = split.mean_served_rate / discrete.mean_served_rate
    assert 0.65 <= agreement <= 1.35, (
        f"fluid/discrete served-rate ratio {agreement:.3f} out of band"
    )

    # The headline claim: four orders of magnitude more clients, less
    # wall time than the discrete cell.  Quick cells are tiny (runner
    # noise is a large fraction of ~0.3 s), so they get 2x headroom;
    # the full run asserts strictly faster.
    margin = 2.0 if quick else 1.0
    assert seconds < reference_seconds * margin, (
        f"fluid_scale took {seconds:.3f} s vs control_loop reference "
        f"{reference_seconds:.3f} s (margin {margin}x)"
    )

    peak_clients = max(r.offered for r in timeline.records)
    fluid_total = timeline.records[-1].metrics.value("fluid_served_total")
    result = {
        "name": "fluid_scale",
        "params": {
            "pool": pool_size,
            "epochs": epochs,
            "population": population,
            "cohort": cohort,
        },
        "metric": "seconds",
        "value": round(seconds, 6),
        "extra": {
            "trace": spec,
            "peak_clients": peak_clients,
            "served": timeline.total_served,
            "fluid_served_total": int(fluid_total),
            "mean_served_rate": round(timeline.mean_served_rate, 3),
            "overhead_seconds": round(overhead_seconds, 6),
            "epochs_per_s": round(epochs / seconds, 2),
            "reference_seconds": round(reference_seconds, 6),
            "agreement_ratio": round(agreement, 4),
            "timeline_identical_traced": True,
            "sweep_identical_pooled": True,
        },
    }
    print(
        f"  fluid_scale peak={peak_clients:,} clients cohort={cohort}: "
        f"{seconds:.3f} s wall vs {reference_seconds:.3f} s discrete "
        f"reference, {timeline.total_served} served "
        f"({int(fluid_total)} fluid), agreement {agreement:.2f}"
    )
    return [result]


def bench_live_migration(quick):
    from repro.control import ControlLoop, fixture

    if quick:
        # Short but still spanning the doors-open surge at t=20s, so
        # both modes actually migrate.
        pool_size, epochs, epoch_duration = 12, 12, 4.0
    else:
        pool_size, epochs, epoch_duration = 16, 30, 4.0
    trace = fixture("black_friday")
    pool = NodePool.uniform_random(pool_size, low=80, high=400, seed=7)
    app_work = dgemm_mflop(200)

    results = []
    for mode in ("restart", "live"):
        loop = ControlLoop(
            pool,
            app_work,
            trace,
            policy="reactive",
            policy_options={"hysteresis": 1, "cooldown": 1},
            epochs=epochs,
            epoch_duration=epoch_duration,
            initial_fraction=0.4,
            migration=mode,
            seed=3,
        )
        best = None
        for _ in range(2):
            start = time.perf_counter()
            timeline = loop.run()
            wall = time.perf_counter() - start
            if best is None or wall < best[0]:
                best = (wall, loop.overhead_seconds, timeline)
        seconds, overhead_seconds, timeline = best
        results.append(
            {
                "name": "live_migration",
                "params": {
                    "mode": mode,
                    "pool": pool_size,
                    "epochs": epochs,
                },
                "metric": "seconds",
                "value": round(seconds, 6),
                "extra": {
                    "overhead_seconds": round(overhead_seconds, 6),
                    "overhead_fraction": round(
                        overhead_seconds / seconds, 4
                    ),
                    # Simulation-domain outcomes: deterministic for
                    # fixed inputs, so a change here is behaviour, not
                    # noise.  `downtime_seconds` is the effective
                    # (service-weighted) outage; `migration_steps` the
                    # itemized step count across the run.
                    "served": timeline.total_served,
                    "redeploys": timeline.redeploys,
                    "downtime_seconds": round(
                        timeline.migration_downtime, 4
                    ),
                    "migration_steps": timeline.migration_step_count,
                    "epochs_per_s": round(epochs / seconds, 2),
                },
            }
        )
        print(
            f"  live_migration mode={mode}: {seconds:.3f} s wall, "
            f"served {timeline.total_served}, "
            f"{timeline.migration_downtime:.3f} s downtime over "
            f"{timeline.migration_step_count} steps"
        )
    return results


def bench_concurrent_migration(quick):
    from repro.control import ControlLoop, fixture

    if quick:
        # Long enough to span the doors-open surge *and* the t=60s
        # trough: the scale-down replan there drains several regions,
        # which is what a concurrent schedule overlaps.
        pool_size, epochs, epoch_duration = 16, 16, 4.0
    else:
        pool_size, epochs, epoch_duration = 16, 30, 4.0
    trace = fixture("black_friday")
    pool = NodePool.uniform_random(pool_size, low=80, high=400, seed=7)
    app_work = dgemm_mflop(200)

    results = []
    timelines = {}
    for mode in ("live", "concurrent"):
        loop = ControlLoop(
            pool,
            app_work,
            trace,
            policy="reactive",
            policy_options={"hysteresis": 1, "cooldown": 1},
            epochs=epochs,
            epoch_duration=epoch_duration,
            initial_fraction=0.4,
            migration=mode,
            seed=3,
        )
        best = None
        for _ in range(2):
            start = time.perf_counter()
            timeline = loop.run()
            wall = time.perf_counter() - start
            if best is None or wall < best[0]:
                best = (wall, loop.overhead_seconds, timeline)
        seconds, overhead_seconds, timeline = best
        timelines[mode] = timeline
        results.append(
            {
                "name": "concurrent_migration",
                "params": {
                    "mode": mode,
                    "pool": pool_size,
                    "epochs": epochs,
                },
                "metric": "seconds",
                "value": round(seconds, 6),
                "extra": {
                    "overhead_seconds": round(overhead_seconds, 6),
                    "overhead_fraction": round(
                        overhead_seconds / seconds, 4
                    ),
                    # Simulation-domain outcomes, deterministic for
                    # fixed inputs.  `migration_window_seconds` is the
                    # wall (simulated) time spent inside migrations —
                    # the number the concurrent schedule shrinks;
                    # `downtime_seconds` (service-weighted outage) is
                    # schedule-independent by construction, so it stays
                    # comparable across the two modes.
                    "served": timeline.total_served,
                    "served_in_epochs": timeline.served_in_epochs,
                    "mean_served_rate": round(
                        timeline.mean_served_rate, 3
                    ),
                    "redeploys": timeline.redeploys,
                    "downtime_seconds": round(
                        timeline.migration_downtime, 4
                    ),
                    "migration_window_seconds": round(
                        timeline.migration_window, 4
                    ),
                    "migration_steps": timeline.migration_step_count,
                    "epochs_per_s": round(epochs / seconds, 2),
                },
            }
        )
        print(
            f"  concurrent_migration mode={mode}: {seconds:.3f} s wall, "
            f"{timeline.mean_served_rate:.1f} req/s served mean, "
            f"{timeline.migration_window:.3f} s migration window over "
            f"{timeline.migration_step_count} steps"
        )
    # The tentpole claims, asserted on every run: same seed/trace/policy,
    # strictly shorter migration window, served throughput no worse.
    live, concurrent = timelines["live"], timelines["concurrent"]
    assert concurrent.migration_window < live.migration_window
    assert concurrent.mean_served_rate >= live.mean_served_rate
    assert concurrent.final_shape == live.final_shape
    return results


def bench_distributed_epoch(quick):
    """The master/executor command protocol's act-stage overhead.

    One controller configuration, three act-stage executors: ``inline``
    (no protocol — the pre-split direct apply), ``local`` (full wire
    round-trip in the master's process), ``pool`` (region commands
    fanned out to a process pool).  The determinism contract is
    asserted in-cell — all three timelines bit-identical — and the
    wall-clock cost of the protocol is the cell's story: serializing
    commands, replaying registry snapshots in stateless daemons, and
    verifying acks must stay a small fraction of the run
    (``bench_diff`` budgets the regression at ~5%).
    """
    from repro.control import ControlLoop, fixture
    from repro.control.protocol import EXECUTOR_KINDS

    if quick:
        pool_size, epochs, epoch_duration = 16, 16, 4.0
    else:
        pool_size, epochs, epoch_duration = 16, 30, 4.0
    trace = fixture("black_friday")
    pool = NodePool.uniform_random(pool_size, low=80, high=400, seed=7)
    app_work = dgemm_mflop(200)

    results = []
    timelines = {}
    registries = {}
    for kind in EXECUTOR_KINDS:
        loop = ControlLoop(
            pool,
            app_work,
            trace,
            policy="reactive",
            policy_options={"hysteresis": 1, "cooldown": 1},
            epochs=epochs,
            epoch_duration=epoch_duration,
            initial_fraction=0.4,
            migration="concurrent",
            seed=3,
            executor=kind,
        )
        best = None
        for _ in range(2):
            start = time.perf_counter()
            timeline = loop.run()
            wall = time.perf_counter() - start
            if best is None or wall < best[0]:
                best = (wall, loop.overhead_seconds, timeline)
        seconds, overhead_seconds, timeline = best
        timelines[kind] = timeline
        registries[kind] = loop.deployment_registry
        results.append(
            {
                "name": "distributed_epoch",
                "params": {
                    "executor": kind,
                    "pool": pool_size,
                    "epochs": epochs,
                },
                "metric": "seconds",
                "value": round(seconds, 6),
                "extra": {
                    "overhead_seconds": round(overhead_seconds, 6),
                    "overhead_fraction": round(
                        overhead_seconds / seconds, 4
                    ),
                    "served": timeline.total_served,
                    "mean_served_rate": round(
                        timeline.mean_served_rate, 3
                    ),
                    "redeploys": timeline.redeploys,
                    "generations": len(registries[kind]),
                    "epochs_per_s": round(epochs / seconds, 2),
                },
            }
        )
        print(
            f"  distributed_epoch executor={kind}: {seconds:.3f} s wall, "
            f"{overhead_seconds / seconds:.1%} controller overhead, "
            f"{len(registries[kind])} registry generations"
        )
    # The tentpole claim, asserted on every run: the protocol changes
    # *where* plans are applied, never *what* the controller computes.
    assert timelines["local"] == timelines["inline"]
    assert timelines["pool"] == timelines["inline"]
    assert (
        [e.digest for e in registries["local"].entries]
        == [e.digest for e in registries["inline"].entries]
        == [e.digest for e in registries["pool"].entries]
    )
    return results


def bench_fault_recovery(quick):
    from repro.control import ControlLoop, fixture

    if quick:
        # Long enough to cover the crash at t=18 and a few recovery
        # epochs; the repair lands right as the doors-open surge hits.
        pool_size, epochs, epoch_duration = 16, 10, 4.0
    else:
        pool_size, epochs, epoch_duration = 16, 30, 4.0
    trace = fixture("black_friday")
    pool = NodePool.uniform_random(pool_size, low=80, high=400, seed=7)
    app_work = dgemm_mflop(200)

    results = []
    timelines = {}
    for label, faults in (
        ("baseline", None),
        ("crash", "crash:target=busiest-child,at=18"),
    ):
        loop = ControlLoop(
            pool,
            app_work,
            trace,
            policy="reactive",
            policy_options={"hysteresis": 1, "cooldown": 1},
            epochs=epochs,
            epoch_duration=epoch_duration,
            initial_fraction=0.4,
            seed=3,
            faults=faults,
        )
        best = None
        for _ in range(2):
            start = time.perf_counter()
            timeline = loop.run()
            wall = time.perf_counter() - start
            if best is None or wall < best[0]:
                best = (wall, loop.overhead_seconds, timeline)
        seconds, overhead_seconds, timeline = best
        timelines[label] = timeline
        results.append(
            {
                "name": "fault_recovery",
                "params": {
                    "faults": label,
                    "pool": pool_size,
                    "epochs": epochs,
                },
                "metric": "seconds",
                "value": round(seconds, 6),
                "extra": {
                    "overhead_seconds": round(overhead_seconds, 6),
                    # Simulation-domain outcomes, deterministic for
                    # fixed inputs: what the crash cost and how the
                    # self-healing path absorbed it.
                    "served": timeline.total_served,
                    "mean_served_rate": round(
                        timeline.mean_served_rate, 3
                    ),
                    "redeploys": timeline.redeploys,
                    "faults_injected": timeline.fault_count,
                    "dead_letters": timeline.dead_letters,
                    "lost_conversations": timeline.lost_conversations,
                    "epochs_per_s": round(epochs / seconds, 2),
                },
            }
        )
        print(
            f"  fault_recovery faults={label}: {seconds:.3f} s wall, "
            f"{timeline.total_served} served, "
            f"{timeline.dead_letters} dead-lettered, "
            f"{timeline.lost_conversations} lost"
        )
    # The self-healing claims, asserted on every run: the crash loses
    # no conversations, and the repaired platform stays within 10 % of
    # the no-fault throughput.
    baseline, crashed = timelines["baseline"], timelines["crash"]
    assert crashed.lost_conversations == 0
    assert crashed.fault_count == 1
    assert crashed.total_served >= 0.9 * baseline.total_served
    return results


def bench_fault_detection(quick):
    from repro.control import ControlLoop, fixture

    if quick:
        pool_size, epochs, epoch_duration = 16, 10, 4.0
    else:
        pool_size, epochs, epoch_duration = 16, 30, 4.0
    trace = fixture("black_friday")
    pool = NodePool.uniform_random(pool_size, low=80, high=400, seed=7)
    app_work = dgemm_mflop(200)
    timeout, threshold = 0.5, 3
    detection = (
        f"timeout={timeout},retries=0,threshold={threshold},reserve=0.2"
    )

    loop = ControlLoop(
        pool,
        app_work,
        trace,
        policy="reactive",
        policy_options={"hysteresis": 1, "cooldown": 1, "repair": True},
        epochs=epochs,
        epoch_duration=epoch_duration,
        initial_fraction=0.4,
        seed=3,
        faults="crash:target=busiest-child,at=18",
        detection=detection,
    )
    best = None
    for _ in range(2):
        start = time.perf_counter()
        timeline = loop.run()
        wall = time.perf_counter() - start
        if best is None or wall < best[0]:
            best = (wall, loop.overhead_seconds, timeline)
    seconds, overhead_seconds, timeline = best
    results = [
        {
            "name": "fault_detection",
            "params": {
                "detection": detection,
                "pool": pool_size,
                "epochs": epochs,
            },
            "metric": "seconds",
            "value": round(seconds, 6),
            "extra": {
                "overhead_seconds": round(overhead_seconds, 6),
                # Simulation-domain outcomes, deterministic for fixed
                # inputs: how long the silent crash went unnoticed and
                # what the inferred repair cost.
                "served": timeline.total_served,
                "mean_served_rate": round(timeline.mean_served_rate, 3),
                "redeploys": timeline.redeploys,
                "detections": timeline.detection_count,
                "mean_detection_latency": round(
                    timeline.mean_detection_latency, 4
                ),
                "dead_letters": timeline.dead_letters,
                "lost_conversations": timeline.lost_conversations,
                "epochs_per_s": round(epochs / seconds, 2),
            },
        }
    ]
    print(
        f"  fault_detection: {seconds:.3f} s wall, "
        f"{timeline.detection_count} confirmed by timeout, "
        f"{timeline.mean_detection_latency:.2f} s detection latency, "
        f"{timeline.lost_conversations} lost"
    )
    # The detection claims, asserted on every run: the silent crash is
    # confirmed (never announced), within the modelled bound, and the
    # inferred repair still loses no conversations.
    assert timeline.detection_count == 1
    assert (
        0.0
        < timeline.mean_detection_latency
        <= threshold * timeout + epoch_duration + 1.0
    )
    assert timeline.lost_conversations == 0
    return results


def bench_obs_overhead(quick):
    from repro.control import ControlLoop, fixture
    from repro.obs import NULL_OBS, Obs

    if quick:
        pool_size, epochs, epoch_duration = 12, 10, 4.0
    else:
        pool_size, epochs, epoch_duration = 16, 24, 4.0
    trace = fixture("black_friday")
    pool = NodePool.uniform_random(pool_size, low=80, high=400, seed=7)
    app_work = dgemm_mflop(200)

    def run(obs):
        loop = ControlLoop(
            pool,
            app_work,
            trace,
            policy="reactive",
            policy_options={"hysteresis": 1, "cooldown": 1},
            epochs=epochs,
            epoch_duration=epoch_duration,
            initial_fraction=0.4,
            seed=3,
            faults="crash:target=busiest-child,at=18",
            detection="timeout=0.5,retries=1,threshold=3,grace=2",
            obs=obs,
        )
        best = None
        for _ in range(2):
            start = time.perf_counter()
            timeline = loop.run()
            wall = time.perf_counter() - start
            if best is None or wall < best[0]:
                best = (wall, timeline)
        return best + (loop,)

    disabled_wall, disabled_timeline, _ = run(None)
    traced = Obs()
    enabled_wall, enabled_timeline, _ = run(traced)

    # The determinism half of the contract: tracing must not perturb the
    # run.  Records carry their metrics snapshots in both modes (the
    # registry is always live), so whole-timeline equality is the
    # strongest possible check.
    assert enabled_timeline == disabled_timeline

    # The cost half: with tracing disabled every site is one attribute
    # check on the null probe.  Wall-clock A/B deltas of two ~second
    # runs drown in scheduler noise on CI, so bound the overhead from
    # first principles instead: microbenchmark the guard, multiply by a
    # deliberately generous count of guard evaluations (one per engine
    # event plus a per-epoch allowance — far more sites than actually
    # exist), and compare against the measured baseline wall.
    probe = NULL_OBS
    iterations = 1_000_000
    start = time.perf_counter()
    hits = 0
    for _ in range(iterations):
        if probe.enabled:  # the exact guard used at every disabled site
            hits += 1
    per_check = (time.perf_counter() - start) / iterations
    assert hits == 0
    events = disabled_timeline.records[-1].metrics.value("engine_events")
    guard_evaluations = events + 50 * epochs
    estimated_fraction = per_check * guard_evaluations / disabled_wall
    assert estimated_fraction <= 0.01, (
        f"disabled-mode obs overhead estimated at "
        f"{estimated_fraction:.2%} of the run (> 1% budget)"
    )

    results = [
        {
            "name": "obs_overhead",
            "params": {"pool": pool_size, "epochs": epochs},
            "metric": "fraction",
            "value": round(estimated_fraction, 6),
            "extra": {
                "disabled_wall_s": round(disabled_wall, 6),
                "enabled_wall_s": round(enabled_wall, 6),
                "per_check_ns": round(per_check * 1e9, 3),
                "guard_evaluations": int(guard_evaluations),
                "trace_records": len(traced.tracer),
                "timeline_identical": True,
            },
        }
    ]
    print(
        f"  obs_overhead: guard {per_check * 1e9:.1f} ns x "
        f"{int(guard_evaluations)} sites = {estimated_fraction:.4%} of "
        f"{disabled_wall:.3f} s (budget 1%); traced run "
        f"{enabled_wall:.3f} s, {len(traced.tracer)} records, "
        f"timelines identical"
    )
    return results


# --------------------------------------------------------------------- #


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small CI-smoke sizes (not comparable with full runs)",
    )
    parser.add_argument(
        "--output",
        default="BENCH_planning.json",
        help="output path (default: ./BENCH_planning.json)",
    )
    parser.add_argument(
        "--repeat",
        type=int,
        default=5,
        help="timed repetitions per planner cell (best-of)",
    )
    args = parser.parse_args(argv)

    if args.quick:
        sizes, legacy_cap = (64, 256), 256
    else:
        sizes, legacy_cap = (64, 128, 256, 512, 1024, 2048), 1024

    numpy_version = None
    if HAVE_NUMPY:
        import numpy

        numpy_version = numpy.__version__

    print(f"perfsuite ({'quick' if args.quick else 'full'}):")
    results = []
    results += bench_planner_scaling(sizes, args.repeat, legacy_cap)
    results += bench_plan_many(args.quick)
    results += bench_engine(args.quick)
    results += bench_kernels(args.quick)
    control_results = bench_control(args.quick)
    results += control_results
    reference_seconds = next(
        r["value"]
        for r in control_results
        if r["name"] == "control_loop"
        and r["params"]["policy"] == "reactive"
    )
    results += bench_fluid_scale(args.quick, reference_seconds)
    results += bench_live_migration(args.quick)
    results += bench_concurrent_migration(args.quick)
    results += bench_distributed_epoch(args.quick)
    results += bench_fault_recovery(args.quick)
    results += bench_fault_detection(args.quick)
    results += bench_obs_overhead(args.quick)

    payload = {
        "schema": "repro-bench/1",
        "suite": "planning",
        "quick": args.quick,
        "created_unix": int(time.time()),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "numpy": numpy_version,
        "cpu_count": os.cpu_count(),
        "results": results,
    }
    out = Path(args.output)
    out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {out} ({len(results)} measurements)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
