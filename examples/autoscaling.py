#!/usr/bin/env python
"""Autoscaling under a flash crowd — the online control plane demo.

A platform serves a quiet base load of 4 clients when a link goes viral:
within seconds the client population multiplies tenfold, then decays back
over a couple of minutes.  Four controllers face the same trace:

* ``hold``      — the paper's one-shot deployment, never adapted;
* ``reactive``  — thresholds with hysteresis (here the fast-twitch
  configuration: one saturated epoch is enough to act);
* ``predictive``— trend extrapolation through the throughput model;
* ``oracle``    — clairvoyant: reads the true future trace and replans
  on every demand shift, migration costs be damned.

The demo prints each timeline and checks the headline claim: the
reactive policy recovers **at least 90 %** of the oracle's served
throughput while performing **strictly fewer** redeploys — you don't
need to see the future, you need hysteresis and a cheap improve path.

Run:  python examples/autoscaling.py
"""

from __future__ import annotations

from repro import NodePool, dgemm_mflop
from repro.analysis.report import ascii_table, render_timeline
from repro.api import PlanningSession
from repro.control import flash_crowd

POOL_SIZE = 16
DGEMM_SIZE = 200
EPOCHS = 30
EPOCH_DURATION = 4.0
SEED = 3

#: Fast-twitch reactive tuning: act after a single saturated epoch.  The
#: library defaults (hysteresis=2) are the conservative choice for noisy
#: production traces; a flash crowd rewards reacting one epoch sooner.
REACTIVE_OPTIONS = {"hysteresis": 1, "cooldown": 1}


def run_policies(
    verbose: bool = True, policies: tuple[str, ...] | None = None
) -> dict[str, object]:
    """Run the controllers on the flash-crowd scenario.

    Returns ``{policy_name: ControlTimeline}``; used by the test suite
    to assert the demo's claims without re-tuning the scenario there
    (``policies`` narrows the run to the named subset).
    """
    pool = NodePool.uniform_random(POOL_SIZE, low=80, high=400, seed=7)
    app_work = dgemm_mflop(DGEMM_SIZE)
    trace = flash_crowd(base=4, peak=40, at=20, rise=5, fall=25)
    session = PlanningSession()

    timelines: dict[str, object] = {}
    for policy, options in (
        ("hold", None),
        ("reactive", REACTIVE_OPTIONS),
        ("predictive", None),
        ("oracle", None),
    ):
        if policies is not None and policy not in policies:
            continue
        timelines[policy] = session.control_run(
            pool,
            app_work,
            trace=trace,
            policy=policy,
            policy_options=options,
            epochs=EPOCHS,
            epoch_duration=EPOCH_DURATION,
            initial_fraction=0.4,
            seed=SEED,
        )
        if verbose:
            print(render_timeline(timelines[policy]))
            print()
    return timelines


def main() -> None:
    timelines = run_policies()

    print(
        ascii_table(
            headers=[
                "policy", "served", "mean req/s", "redeploys",
                "downtime s", "final nodes",
            ],
            rows=[
                [
                    name,
                    tl.total_served,
                    f"{tl.mean_served_rate:.1f}",
                    tl.redeploys,
                    f"{tl.migration_downtime:.2f}",
                    tl.final_shape[0],
                ]
                for name, tl in timelines.items()
            ],
            title="Flash crowd, four controllers",
        )
    )

    reactive = timelines["reactive"]
    oracle = timelines["oracle"]
    hold = timelines["hold"]
    recovery = reactive.total_served / oracle.total_served
    print(
        f"\nreactive recovered {recovery:.1%} of the oracle's served "
        f"throughput with {reactive.redeploys} redeploys "
        f"(oracle: {oracle.redeploys}); holding still would have served "
        f"{hold.total_served / oracle.total_served:.1%}"
    )
    assert recovery >= 0.90, (
        f"reactive recovered only {recovery:.1%} of the oracle throughput"
    )
    assert reactive.redeploys < oracle.redeploys, (
        f"reactive used {reactive.redeploys} redeploys, oracle "
        f"{oracle.redeploys}"
    )


if __name__ == "__main__":
    main()
