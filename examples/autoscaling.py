#!/usr/bin/env python
"""Autoscaling under a flash crowd — the online control plane demo.

A platform serves a quiet base load of 4 clients when a link goes viral:
within seconds the client population multiplies tenfold, then decays back
over a couple of minutes.  Four controllers face the same trace:

* ``hold``      — the paper's one-shot deployment, never adapted;
* ``reactive``  — thresholds with hysteresis (here the fast-twitch
  configuration: one saturated epoch is enough to act);
* ``predictive``— trend extrapolation through the throughput model;
* ``oracle``    — clairvoyant: reads the true future trace and replans
  on every demand shift, migration costs be damned.

All four run with **live migration** (the default): redeploys drain one
subtree at a time inside the running simulation while the rest of the
platform keeps serving.  The demo checks the headline claim: the
reactive policy recovers **at least 85 %** of the oracle's served
throughput while performing **strictly fewer** redeploys — live
migration makes the oracle's replan-happy strategy nearly free, so it
is a stronger upper bound than under stop-the-world restarts, and
hysteresis plus a cheap improve path still gets within striking
distance of it without seeing the future.

The second act compares the two **migration mechanisms** head to head on
the ``black_friday`` trace fixture (a double-peaked retail surge that
forces both scale-ups and a scale-down): with identical seed, trace and
policy, ``migration="live"`` must serve strictly more requests with
strictly less downtime than ``migration="restart"`` — and the per-step
downtime itemization in the timeline shows where the restart pays
(one full-platform outage per redeploy) versus where live pays (a few
subtree drains, zero for pure growth).

The third act is **self-healing**: the same Black Friday run, but the
root's busiest child crashes just as the doorbuster peak arrives.  The
crash dead-letters its in-flight conversations (every one is resubmitted
through the survivors — nothing is lost), the monitor reports the dead
node, and the reactive policy answers with a ``repair`` decision that
splices spare nodes over the hole using the same live-migration
machinery the scale-ups ride.  The demo asserts the invariants the fault
layer guarantees: zero lost conversations, at least one repair applied,
and at least **90 %** of the no-fault run's served throughput recovered.

The fourth act replays the same crash under **timeout-modelled
detection**: nothing announces the failure — agents infer it from
conversations that stop answering (request timeout, bounded retries),
the monitor walks the silent node through suspect → confirmed-dead, and
only a *confirmed* death triggers the repair.  The timeline then carries
a measured quantity oracle health never could: per-fault detection
latency, injection to confirmation.

The fifth act turns on the **flight recorder**: the act-four run once
more with a ``repro.obs`` handle attached, asserting that tracing
changes nothing (the traced timeline equals the untraced one bit for
bit), that the detection spans on the trace measure exactly the
latencies the timeline records, and exporting the whole run as a
Chrome trace-event file for chrome://tracing / ui.perfetto.dev.

Run:  python examples/autoscaling.py
"""

from __future__ import annotations

from repro import NodePool, dgemm_mflop
from repro.analysis.report import ascii_table, render_timeline
from repro.api import PlanningSession
from repro.control import flash_crowd, from_spec

POOL_SIZE = 16
DGEMM_SIZE = 200
EPOCHS = 30
EPOCH_DURATION = 4.0
SEED = 3

#: Fast-twitch reactive tuning: act after a single saturated epoch.  The
#: library defaults (hysteresis=2) are the conservative choice for noisy
#: production traces; a flash crowd rewards reacting one epoch sooner.
REACTIVE_OPTIONS = {"hysteresis": 1, "cooldown": 1}


def _session_pool():
    pool = NodePool.uniform_random(POOL_SIZE, low=80, high=400, seed=7)
    return PlanningSession(), pool, dgemm_mflop(DGEMM_SIZE)


def run_policies(
    verbose: bool = True, policies: tuple[str, ...] | None = None
) -> dict[str, object]:
    """Run the controllers on the flash-crowd scenario (live migration).

    Returns ``{policy_name: ControlTimeline}``; used by the test suite
    to assert the demo's claims without re-tuning the scenario there
    (``policies`` narrows the run to the named subset).
    """
    session, pool, app_work = _session_pool()
    trace = flash_crowd(base=4, peak=40, at=20, rise=5, fall=25)

    timelines: dict[str, object] = {}
    for policy, options in (
        ("hold", None),
        ("reactive", REACTIVE_OPTIONS),
        ("predictive", None),
        ("oracle", None),
    ):
        if policies is not None and policy not in policies:
            continue
        timelines[policy] = session.control_run(
            pool,
            app_work,
            trace=trace,
            policy=policy,
            policy_options=options,
            epochs=EPOCHS,
            epoch_duration=EPOCH_DURATION,
            initial_fraction=0.4,
            seed=SEED,
        )
        if verbose:
            print(render_timeline(timelines[policy]))
            print()
    return timelines


def run_migration_modes(verbose: bool = True) -> dict[str, object]:
    """Live vs stop-the-world on the ``black_friday`` fixture.

    Identical seed, trace and (reactive) policy; only the migration
    mechanism differs.  Returns ``{mode: ControlTimeline}``.
    """
    session, pool, app_work = _session_pool()
    trace = from_spec("black_friday")

    timelines: dict[str, object] = {}
    for mode in ("restart", "live"):
        timelines[mode] = session.control_run(
            pool,
            app_work,
            trace=trace,
            policy="reactive",
            policy_options=REACTIVE_OPTIONS,
            epochs=EPOCHS,
            epoch_duration=EPOCH_DURATION,
            initial_fraction=0.4,
            migration=mode,
            seed=SEED,
        )
        if verbose:
            print(render_timeline(timelines[mode]))
            print()
    return timelines


#: The fault for act three: kill the root's busiest child right before
#: the Black Friday doorbuster peak (t=20) hits — while spares remain.
FAULT_SPEC = "crash:target=busiest-child,at=18"


def run_fault_recovery(verbose: bool = True) -> dict[str, object]:
    """Black Friday with the root's busiest child crashing mid-run.

    Runs the reactive controller twice — fault-free baseline, then with
    ``FAULT_SPEC`` injected — and returns ``{"baseline": ..., "faulted":
    ...}`` timelines.  Used by the test suite to assert the recovery
    claims without re-tuning the scenario there.
    """
    session, pool, app_work = _session_pool()
    trace = from_spec("black_friday")

    timelines: dict[str, object] = {}
    for label, faults in (("baseline", None), ("faulted", FAULT_SPEC)):
        timelines[label] = session.control_run(
            pool,
            app_work,
            trace=trace,
            policy="reactive",
            policy_options=REACTIVE_OPTIONS,
            epochs=EPOCHS,
            epoch_duration=EPOCH_DURATION,
            initial_fraction=0.4,
            seed=SEED,
            faults=faults,
        )
        if verbose:
            print(render_timeline(timelines[label]))
            print()
    return timelines


#: Act four's detection tuning: half-second request timeout, one retry,
#: three consecutive timeouts to raise suspicion, one epoch of grace.
DETECTION_SPEC = "timeout=0.5,retries=1,threshold=3,grace=2,reserve=0.2"


def run_fault_detection(verbose: bool = True) -> object:
    """The act-three crash again — but nobody announces it this time.

    With ``DETECTION_SPEC`` the crash lands *silently*: agents infer the
    death from timed-out conversations, the monitor walks the node
    through suspect → confirmed, and only then does the repair fire.
    Returns the faulted timeline; used by the test suite to assert the
    detection claims.
    """
    session, pool, app_work = _session_pool()
    timeline = session.control_run(
        pool,
        app_work,
        trace=from_spec("black_friday"),
        policy="reactive",
        policy_options={**REACTIVE_OPTIONS, "repair": True},
        epochs=EPOCHS,
        epoch_duration=EPOCH_DURATION,
        initial_fraction=0.4,
        seed=SEED,
        faults=FAULT_SPEC,
        detection=DETECTION_SPEC,
    )
    if verbose:
        print(render_timeline(timeline))
        print()
    return timeline


def run_traced_detection(verbose: bool = True) -> tuple[object, object]:
    """Act four once more, with the flight recorder on.

    The same silent-crash scenario, re-run with a ``repro.obs`` handle:
    every epoch stage, watchdog timeout, fault injection and detection
    window lands on a sim-time-keyed trace that exports to Chrome
    trace-event JSON.  Returns ``(timeline, obs)``; because the tracer
    only observes, the timeline must equal the untraced act-four run
    bit for bit — the test suite and act five both assert it.
    """
    from repro.obs import Obs

    session, pool, app_work = _session_pool()
    obs = Obs()
    timeline = session.control_run(
        pool,
        app_work,
        trace=from_spec("black_friday"),
        policy="reactive",
        policy_options={**REACTIVE_OPTIONS, "repair": True},
        epochs=EPOCHS,
        epoch_duration=EPOCH_DURATION,
        initial_fraction=0.4,
        seed=SEED,
        faults=FAULT_SPEC,
        detection=DETECTION_SPEC,
        obs=obs,
    )
    if verbose:
        print(render_timeline(timeline))
        print()
    return timeline, obs


def _migration_step_rows(timeline) -> list[list[object]]:
    rows = []
    for record in timeline.records:
        for step in record.migration_steps:
            rows.append(
                [
                    record.index,
                    step.op,
                    step.target,
                    f"{step.seconds:.3f}",
                    f"{step.drained_nodes}/{step.deployed_nodes}",
                    f"{step.downtime:.3f}",
                ]
            )
    return rows


def main() -> None:
    timelines = run_policies()

    print(
        ascii_table(
            headers=[
                "policy", "served", "mean req/s", "redeploys",
                "downtime s", "final nodes",
            ],
            rows=[
                [
                    name,
                    tl.total_served,
                    f"{tl.mean_served_rate:.1f}",
                    tl.redeploys,
                    f"{tl.migration_downtime:.2f}",
                    tl.final_shape[0],
                ]
                for name, tl in timelines.items()
            ],
            title="Flash crowd, four controllers (live migration)",
        )
    )

    reactive = timelines["reactive"]
    oracle = timelines["oracle"]
    hold = timelines["hold"]
    recovery = reactive.total_served / oracle.total_served
    print(
        f"\nreactive recovered {recovery:.1%} of the oracle's served "
        f"throughput with {reactive.redeploys} redeploys "
        f"(oracle: {oracle.redeploys}); holding still would have served "
        f"{hold.total_served / oracle.total_served:.1%}"
    )
    assert recovery >= 0.85, (
        f"reactive recovered only {recovery:.1%} of the oracle throughput"
    )
    assert reactive.redeploys < oracle.redeploys, (
        f"reactive used {reactive.redeploys} redeploys, oracle "
        f"{oracle.redeploys}"
    )

    # ------------------------------------------------------------------ #
    # Act two: the migration mechanism itself.

    modes = run_migration_modes(verbose=False)
    live, restart = modes["live"], modes["restart"]
    print(
        ascii_table(
            headers=[
                "migration", "served", "mean req/s", "redeploys",
                "downtime s", "migration steps",
            ],
            rows=[
                [
                    mode,
                    tl.total_served,
                    f"{tl.mean_served_rate:.1f}",
                    tl.redeploys,
                    f"{tl.migration_downtime:.2f}",
                    tl.migration_step_count,
                ]
                for mode, tl in modes.items()
            ],
            title="\nBlack Friday, reactive policy, live vs stop-the-world",
        )
    )
    print(
        ascii_table(
            headers=["epoch", "op", "target", "window s", "dark", "downtime s"],
            rows=[
                *(_migration_step_rows(restart)),
                *(_migration_step_rows(live)),
            ],
            title="Downtime, itemized per migration step (restart first)",
        )
    )
    extra = live.total_served - restart.total_served
    saved = restart.migration_downtime - live.migration_downtime
    print(
        f"\nlive migration served {extra} more requests "
        f"({live.total_served} vs {restart.total_served}) and paid "
        f"{saved:.2f}s less downtime ({live.migration_downtime:.2f}s vs "
        f"{restart.migration_downtime:.2f}s) — same seed, trace, policy"
    )
    assert live.total_served > restart.total_served, (
        f"live served {live.total_served}, restart {restart.total_served}"
    )
    assert live.migration_downtime < restart.migration_downtime, (
        f"live downtime {live.migration_downtime:.3f}s, restart "
        f"{restart.migration_downtime:.3f}s"
    )

    # ------------------------------------------------------------------ #
    # Act three: self-healing under a mid-run crash.

    recovery_runs = run_fault_recovery(verbose=False)
    baseline = recovery_runs["baseline"]
    faulted = recovery_runs["faulted"]
    repairs = [r for r in faulted.records if r.action == "repair"]
    applied_repairs = [r for r in repairs if r.applied]
    ratio = faulted.total_served / baseline.total_served
    print(
        ascii_table(
            headers=[
                "run", "served", "mean req/s", "redeploys",
                "dead-lettered", "lost",
            ],
            rows=[
                [
                    label,
                    tl.total_served,
                    f"{tl.mean_served_rate:.1f}",
                    tl.redeploys,
                    tl.dead_letters,
                    tl.lost_conversations,
                ]
                for label, tl in recovery_runs.items()
            ],
            title=f"\nBlack Friday with {FAULT_SPEC!r}, reactive policy",
        )
    )
    print(
        f"\ncrash absorbed: {faulted.dead_letters} in-flight conversations "
        f"dead-lettered and resubmitted (0 lost), {len(applied_repairs)} "
        f"repair(s) applied, {ratio:.1%} of the no-fault throughput "
        "recovered"
    )
    assert faulted.lost_conversations == 0, (
        f"lost {faulted.lost_conversations} conversations to the crash"
    )
    assert applied_repairs, (
        "the crash never produced an applied repair: "
        + "; ".join(r.reason for r in repairs)
    )
    assert ratio >= 0.9, (
        f"faulted run recovered only {ratio:.1%} of baseline throughput"
    )

    # ------------------------------------------------------------------ #
    # Act four: the same crash, but inferred — not announced.

    detected = run_fault_detection(verbose=False)
    confirmations = detected.detection_records
    print(
        f"\nwith detection {DETECTION_SPEC!r}: "
        f"{detected.detection_count} failure(s) confirmed by timeout "
        f"evidence alone, mean detection latency "
        f"{detected.mean_detection_latency:.2f}s, "
        f"{detected.lost_conversations} conversations lost"
    )
    assert detected.detection_count >= 1, (
        "the silent crash was never confirmed"
    )
    assert detected.lost_conversations == 0, (
        f"lost {detected.lost_conversations} conversations under detection"
    )
    for confirmation in confirmations:
        assert confirmation.latency is None or confirmation.latency > 0.0, (
            f"non-positive detection latency on {confirmation.node}"
        )

    # ------------------------------------------------------------------ #
    # Act five: the same run again, exported as a flight-recorder trace.

    import json
    import tempfile
    from pathlib import Path

    traced, obs = run_traced_detection(verbose=False)
    assert traced == detected, (
        "tracing perturbed the run: the traced timeline differs from "
        "the act-four timeline at the same seed"
    )
    detection_spans = [
        span for span in obs.tracer.spans() if span.cat == "detection"
    ]
    measured = [
        record
        for record in traced.detection_records
        if record.latency is not None
    ]
    assert len(detection_spans) == len(measured), (
        f"{len(measured)} measured detection(s) but "
        f"{len(detection_spans)} detection span(s) on the trace"
    )
    for span, record in zip(detection_spans, measured):
        assert span.name == record.node
        assert dict(span.args)["latency"] == record.latency, (
            f"trace says {dict(span.args)['latency']}s for {span.name}, "
            f"timeline says {record.latency}s"
        )
    trace_path = Path(tempfile.gettempdir()) / "autoscaling_trace.json"
    trace_path.write_text(obs.tracer.to_chrome(), encoding="utf-8")
    events = json.loads(trace_path.read_text())["traceEvents"]
    print(
        f"\nflight recorder: {len(obs.tracer)} records "
        f"({len(detection_spans)} detection span(s), latency matching "
        f"the timeline exactly) exported as {len(events)} Chrome trace "
        f"events to {trace_path} — load it at chrome://tracing or "
        "https://ui.perfetto.dev"
    )


if __name__ == "__main__":
    main()
