#!/usr/bin/env python
"""The §5.1 calibration campaign, end to end.

The planner is only as good as its parameter set.  The paper calibrated
DIET on Grid'5000 with packet captures, timing statistics, a linear fit
of the reply-merge cost against agent degree, and a Linpack
mini-benchmark.  This example runs the same campaign against the
simulated middleware:

1. wire-capture on a 1-agent/1-server deployment (100 serial clients);
2. star-degree sweep fitting ``Wrep(d) = Wfix + Wsel*d``;
3. node rating;
4. assembly into a calibrated parameter set (Table 3), compared against
   the ground truth the simulation ran with;
5. planning with the *calibrated* parameters to close the loop.

Run:  python examples/calibration_campaign.py
"""

from __future__ import annotations

from repro import NodePool, PlanningSession, dgemm_mflop
from repro.calibration import calibrate, render_table3
from repro.core.params import DEFAULT_PARAMS


def main() -> None:
    # Ground truth: what the middleware actually costs.  The campaign
    # below never reads these values — it measures them.
    truth = DEFAULT_PARAMS

    result = calibrate(
        truth,
        capture_repetitions=100,
        fit_degrees=(1, 2, 4, 8, 12, 16, 24, 32),
        fit_repetitions=20,
    )
    print(render_table3(result, reference=truth))
    print(
        f"Wrep fit: Wfix={result.wrep_fit.wfix:.4g} MFlop, "
        f"Wsel={result.wrep_fit.wsel:.4g} MFlop/child, "
        f"r={result.wrep_fit.r_value:.4f} "
        "(the paper measured r=0.97 on real hardware)"
    )

    # Close the loop: plan with the calibrated parameters and check the
    # plan matches what ground-truth parameters would have produced.
    pool = NodePool.uniform_random(40, low=80.0, high=400.0, seed=5)
    wapp = dgemm_mflop(310)
    session = PlanningSession()
    with_truth = session.plan(pool=pool, app_work=wapp, params=truth)
    with_calibrated = session.plan(
        pool=pool, app_work=wapp, params=result.params
    )
    print(
        f"plan with ground truth : {with_truth.describe()}\n"
        f"plan with calibration  : {with_calibrated.describe()}"
    )
    drift = abs(
        with_calibrated.throughput - with_truth.throughput
    ) / with_truth.throughput
    print(f"throughput drift from calibration error: {drift:.3%}")


if __name__ == "__main__":
    main()
