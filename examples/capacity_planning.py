#!/usr/bin/env python
"""Demand-driven capacity planning.

The heuristic's least-resources rule makes it a capacity planner: give it
a client demand (requests/s) and it returns the *cheapest* deployment
that satisfies it, leaving the remaining nodes free for other tenants.

This example sweeps a demand range on a 100-node heterogeneous pool and
reports, per demand level: nodes used, deployment shape, and delivered
throughput — then verifies one plan in the simulator.  It also shows the
clients -> rate conversion via Little's law for users who think in
concurrent clients rather than request rates.

Run:  python examples/capacity_planning.py
"""

from __future__ import annotations

from repro import NodePool, PlanRequest, PlanningSession, dgemm_mflop
from repro.analysis import ascii_table, run_fixed_load
from repro.core.params import DEFAULT_PARAMS
from repro.workloads import ClientDemand

DGEMM_SIZE = 200
DEMANDS = (5.0, 25.0, 100.0, 300.0, 1000.0)


def main() -> None:
    pool = NodePool.uniform_random(100, low=80.0, high=400.0, seed=21)
    wapp = dgemm_mflop(DGEMM_SIZE)
    print(f"pool: {pool.describe()}")
    print(f"workload: DGEMM {DGEMM_SIZE}x{DGEMM_SIZE} ({wapp:g} MFlop/request)")

    # One request per demand level; the session fans them out in
    # parallel and caches each cell.
    session = PlanningSession()
    requests = [
        PlanRequest(pool=pool, app_work=wapp, demand=demand)
        for demand in DEMANDS
    ]
    deployments = session.plan_many(requests, parallel=True)

    rows = []
    plans = {}
    for demand, deployment in zip(DEMANDS, deployments):
        plans[demand] = deployment
        n, a, s, h = deployment.hierarchy.shape_signature()
        met = "yes" if deployment.throughput >= demand else "NO (best effort)"
        rows.append(
            [f"{demand:g}", n, a, s, h,
             f"{deployment.throughput:.1f}", met]
        )
    print(
        ascii_table(
            ["demand (req/s)", "nodes", "agents", "servers", "height",
             "delivered (req/s)", "demand met"],
            rows,
            title="Cheapest deployment per demand level",
        )
    )

    # Thinking in clients instead?  Convert with Little's law.
    demand = ClientDemand(clients=40)
    rate = demand.as_rate(DEFAULT_PARAMS, wapp, reference_power=265.0)
    print(
        f"40 closed-loop clients can generate at most ~{rate:.1f} req/s "
        "on this workload (Little's law with the unloaded latency)."
    )

    # Verify the 100 req/s plan in the simulator with saturating load.
    target = 100.0
    deployment = plans[target]
    result = run_fixed_load(
        deployment, DEFAULT_PARAMS, wapp,  # Deployments are accepted directly
        clients=120, duration=15.0,
    )
    print(
        f"verification: the {target:g} req/s plan delivers "
        f"{result.throughput:.1f} req/s in the simulator using "
        f"{deployment.nodes_used} of {len(pool)} nodes "
        f"(bottleneck: {result.bottleneck_node} at "
        f"{result.bottleneck_utilization:.0%})"
    )


if __name__ == "__main__":
    main()
