#!/usr/bin/env python
"""Heterogeneous communication: planning across a grid federation.

The paper assumes homogeneous links and names heterogeneous
communication as future work.  The :mod:`repro.extensions.hetcomm`
module implements it: every node owns an access link, agent and server
rates bill each endpoint's own link, and the planner ranks nodes by a
combined power-and-link score.

Scenario: a federation of three sites with equal node power but very
different uplinks — a local cluster (1 Gb/s), a campus site (100 Mb/s)
and a remote site behind a DSL-class uplink (5 Mb/s).  Watch where the
planner puts agents, how it uses remote nodes, and what a
uniform-bandwidth model would have lost.

Run:  python examples/federated_platform.py
"""

from __future__ import annotations

from repro import NodePool, PlanningSession, dgemm_mflop
from repro.analysis import ascii_table
from repro.core.heuristic import HeuristicPlanner
from repro.core.params import DEFAULT_PARAMS
from repro.extensions.hetcomm import (
    HetCommOptions,
    HetCommPlatform,
    het_hierarchy_throughput,
)

SITES = (("local", 20, 1000.0), ("campus", 20, 100.0), ("remote", 20, 5.0))


def main() -> None:
    pool = NodePool.homogeneous(sum(s[1] for s in SITES), 265.0)
    platform = HetCommPlatform.clustered(
        pool, [s[1] for s in SITES], [s[2] for s in SITES]
    )
    wapp = dgemm_mflop(200)

    # The hetcomm extension is a registered planner: describe the links
    # in its typed options and plan through the standard session.
    deployment = PlanningSession().plan(
        pool=pool,
        app_work=wapp,
        method="hetcomm",
        options=HetCommOptions(
            group_sizes=tuple(s[1] for s in SITES),
            group_bandwidths=tuple(s[2] for s in SITES),
        ),
    )
    het_rho = deployment.extras["het_throughput"]
    print(
        f"link-aware plan: rho = {het_rho:.1f} req/s, "
        f"{deployment.nodes_used} nodes used"
    )
    plan_hierarchy = deployment.hierarchy

    # Where did the roles land, per site?
    rows = []
    offset = 0
    for name, size, bandwidth in SITES:
        names = {f"node-{i:02d}" for i in range(offset, offset + size)}
        offset += size
        agents = sum(1 for a in plan_hierarchy.agents if str(a) in names)
        servers = sum(1 for s in plan_hierarchy.servers if str(s) in names)
        rows.append([name, f"{bandwidth:g}", size, agents, servers,
                     size - agents - servers])
    print(
        ascii_table(
            ["site", "uplink (Mb/s)", "nodes", "agents", "servers", "unused"],
            rows,
            title="Role placement per site",
        )
    )

    # What would the paper's uniform model (mean bandwidth) have done?
    mean_bw = sum(s[1] * s[2] for s in SITES) / len(pool)
    naive = HeuristicPlanner(
        DEFAULT_PARAMS.with_bandwidth(mean_bw)
    ).plan(pool, wapp)
    naive_actual = het_hierarchy_throughput(
        naive.hierarchy, platform, DEFAULT_PARAMS, wapp
    )
    print(
        f"uniform-model plan (B = mean = {mean_bw:.0f} Mb/s): promised "
        f"{naive.throughput:.1f} req/s, actually delivers "
        f"{naive_actual:.1f} req/s on the real links"
    )
    print(
        f"link-awareness advantage: "
        f"{het_rho / naive_actual:.2f}x"
    )


if __name__ == "__main__":
    main()
