#!/usr/bin/env python
"""The Figure 6 experiment in miniature: automatic vs intuitive plans.

Reproduces the paper's §5.3 methodology end to end on a laptop-sized
pool:

1. start from a homogeneous cluster (the paper's Orsay slice);
2. heterogenize it by running background matrix products on half the
   nodes, then re-rate every node with the mini-benchmark;
3. build three deployments: the heuristic's automatic hierarchy, a
   positional star, and a balanced two-level tree;
4. measure all three under identical load in the discrete-event
   middleware and print the comparison (model prediction next to
   measurement).

The expected outcome is the paper's ranking: automatic > balanced > star
once the pool is large/heterogeneous enough for the star's single agent
to saturate.

Run:  python examples/heterogeneous_cluster.py
"""

from __future__ import annotations

from repro import (
    BalancedOptions,
    NodePool,
    PlanningSession,
    dgemm_mflop,
    heterogenize,
    rate_pool,
)
from repro.analysis import ascii_table, compare_deployments
from repro.core.params import DEFAULT_PARAMS

POOL_SIZE = 96
LOADED_FRACTION = 0.5
DGEMM_SIZE = 310
CLIENTS = 200
DURATION = 8.0


def main() -> None:
    # 1-2. Heterogenize a homogeneous cluster, as §5.3 does, and re-rate.
    base = NodePool.homogeneous(POOL_SIZE, 265.0, prefix="orsay")
    loaded = heterogenize(base, loaded_fraction=LOADED_FRACTION, seed=42)
    pool = rate_pool(loaded)  # the mini-benchmark view the planner gets
    print(f"pool after background loading: {pool.describe()}")

    wapp = dgemm_mflop(DGEMM_SIZE)

    # 3. Three deployments of the same nodes — every method is one
    #    registry name away from the same session.
    session = PlanningSession()
    deployments = {
        "automatic": session.plan(pool=pool, app_work=wapp).hierarchy,
        "balanced": session.plan(
            pool=pool, app_work=wapp, method="balanced",
            options=BalancedOptions(middle_agents=9),
        ).hierarchy,
        "star": session.plan(
            pool=pool, app_work=wapp, method="star"
        ).hierarchy,
    }
    shapes = {
        label: h.shape_signature() for label, h in deployments.items()
    }
    print(
        ascii_table(
            ["deployment", "nodes", "agents", "servers", "height"],
            [[label, *shape] for label, shape in shapes.items()],
            title="Deployment shapes",
        )
    )

    # 4. Identical measured load for everyone.
    rows = compare_deployments(
        deployments, DEFAULT_PARAMS, wapp, clients=CLIENTS, duration=DURATION
    )
    print(
        ascii_table(
            ["deployment", "predicted (req/s)", "measured (req/s)",
             "model accuracy"],
            [
                [row.label, f"{row.predicted:.1f}", f"{row.measured:.1f}",
                 f"{row.accuracy:.2f}"]
                for row in rows
            ],
            title=f"DGEMM {DGEMM_SIZE}x{DGEMM_SIZE}, {CLIENTS} clients",
        )
    )
    print(f"winner: {rows[0].label}")


if __name__ == "__main__":
    main()
