#!/usr/bin/env python
"""Improving a running deployment — the prior-work workflow ([6,7]).

An operator deployed the intuitive thing: a star over the 24 most
powerful nodes.  Demand grew; throughput plateaued.  Instead of
replanning from scratch (which means redeploying everything), the
iterative improver analyzes the running hierarchy with the throughput
model, removes one bottleneck at a time using spare nodes, and emits a
minimal action log an operator could apply step by step.

The example then verifies the improved deployment in the simulator and
compares it against what planning from scratch would have achieved.

Run:  python examples/live_improvement.py
"""

from __future__ import annotations

from repro import NodePool, dgemm_mflop, heterogenize, star_deployment
from repro.analysis import ascii_table, run_fixed_load
from repro.core.heuristic import HeuristicPlanner
from repro.core.params import DEFAULT_PARAMS
from repro.extensions.redeploy import improve_deployment

POOL_SIZE = 96
INITIAL = 24
DGEMM_SIZE = 310


def main() -> None:
    everything = heterogenize(
        NodePool.homogeneous(POOL_SIZE, 265.0, prefix="orsay"),
        loaded_fraction=0.5,
        seed=11,
    )
    wapp = dgemm_mflop(DGEMM_SIZE)

    # What the operator deployed on day one.
    deployed = everything.sorted_by_power().take(INITIAL)
    running = star_deployment(deployed)
    spares = [n for n in everything if n.name not in set(deployed.names)]

    result = improve_deployment(running, spares, DEFAULT_PARAMS, wapp)
    print(
        f"improvement: {result.initial_throughput:.1f} -> "
        f"{result.final_throughput:.1f} req/s "
        f"({result.improvement_factor:.2f}x) in {len(result.actions)} steps, "
        f"{len(result.spares_left)} spares left"
    )

    # The action log — what an operator would actually execute.
    head = list(result.actions[:6])
    print(
        ascii_table(
            ["#", "move", "node", "target", "rho before", "rho after"],
            [
                [i + 1, a.move, a.node, a.target,
                 f"{a.throughput_before:.1f}", f"{a.throughput_after:.1f}"]
                for i, a in enumerate(head)
            ],
            title=f"First {len(head)} of {len(result.actions)} improvement "
            "steps",
        )
    )

    # Verify in the simulator, and compare with a from-scratch plan.
    measured = run_fixed_load(
        result.hierarchy, DEFAULT_PARAMS, wapp, clients=200, duration=8.0
    ).throughput
    scratch = HeuristicPlanner(DEFAULT_PARAMS).plan(everything, wapp)
    print(
        f"simulator confirms {measured:.1f} req/s; planning from scratch "
        f"would reach {scratch.throughput:.1f} req/s "
        f"({100 * result.final_throughput / scratch.throughput:.0f}% "
        "recovered without a full redeploy)"
    )


if __name__ == "__main__":
    main()
