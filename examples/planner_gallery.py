#!/usr/bin/env python
"""A gallery of planners and regimes on one pool.

Shows how the chosen deployment morphs across the paper's three regimes
(agent-bound, balanced, service-bound) and how the planning methods
compare.  Every method — the heterogeneous heuristic (both growth
strategies and both agent-selection policies), the homogeneous-optimal
d-ary planner, the exhaustive optimum, the baselines, and the extension
planners — is reached through the same :class:`PlanningSession` by its
registry name, so adding a planner adds a gallery row for free.

Run:  python examples/planner_gallery.py
"""

from __future__ import annotations

from repro import (
    REGISTRY,
    HeuristicOptions,
    NodePool,
    PlanningSession,
    dgemm_mflop,
)
from repro.analysis import ascii_table


def regime_gallery() -> None:
    """One heuristic, three regimes."""
    pool = NodePool.uniform_random(60, low=80.0, high=400.0, seed=13)
    session = PlanningSession()
    rows = []
    for size in (10, 50, 150, 310, 600, 1000):
        plan = session.plan(pool=pool, app_work=dgemm_mflop(size))
        n, a, s, h = plan.hierarchy.shape_signature()
        rows.append(
            [f"{size}x{size}", n, a, s, h,
             f"{plan.throughput:.1f}", plan.report.bottleneck]
        )
    print(
        ascii_table(
            ["DGEMM", "nodes", "agents", "servers", "height",
             "rho (req/s)", "bound by"],
            rows,
            title="Regime gallery: deployment shape vs request grain "
            "(60 heterogeneous nodes)",
        )
    )


def method_gallery() -> None:
    """Every registered planning method on one small pool."""
    pool = NodePool.heterogeneous(
        [380.0, 350.0, 280.0, 220.0, 160.0, 120.0, 90.0, 60.0]
    )
    wapp = dgemm_mflop(200)
    session = PlanningSession()
    rows = []

    # Heuristic variants via typed options.
    variants = {
        "heuristic (fixed-point)": HeuristicOptions(),
        "heuristic (windowed agents)": HeuristicOptions(
            agent_selection="windowed"
        ),
        "heuristic (incremental)": HeuristicOptions(strategy="incremental"),
    }
    for label, options in variants.items():
        plan = session.plan(
            pool=pool, app_work=wapp, method="heuristic", options=options
        )
        n, a, s, h = plan.hierarchy.shape_signature()
        rows.append([label, n, a, s, h, f"{plan.throughput:.1f}"])

    # Every other registered planner by name — extensions included.
    for method in REGISTRY.available():
        if method == "heuristic":
            continue
        kwargs = {"demand": 10.0} if method == "multiapp" else {}
        plan = session.plan(pool=pool, app_work=wapp, method=method, **kwargs)
        n, a, s, h = plan.hierarchy.shape_signature()
        rows.append([method, n, a, s, h, f"{plan.throughput:.1f}"])

    print(
        ascii_table(
            ["method", "nodes", "agents", "servers", "height", "rho (req/s)"],
            rows,
            title="Method gallery: 8-node heterogeneous pool, DGEMM 200x200",
        )
    )


if __name__ == "__main__":
    regime_gallery()
    print()
    method_gallery()
