#!/usr/bin/env python
"""A gallery of planners and regimes on one pool.

Shows how the chosen deployment morphs across the paper's three regimes
(agent-bound, balanced, service-bound) and how the planning methods
compare: the heterogeneous heuristic (both growth strategies and both
agent-selection policies), the homogeneous-optimal d-ary planner, the
exhaustive optimum (small pools), and the baselines.

Run:  python examples/planner_gallery.py
"""

from __future__ import annotations

from repro import NodePool, dgemm_mflop
from repro.analysis import ascii_table
from repro.core.heuristic import HeuristicPlanner
from repro.core.homogeneous import HomogeneousPlanner
from repro.core.optimal import exhaustive_plan
from repro.core.params import DEFAULT_PARAMS
from repro.core.planner import plan_deployment


def regime_gallery() -> None:
    """One heuristic, three regimes."""
    pool = NodePool.uniform_random(60, low=80.0, high=400.0, seed=13)
    rows = []
    for size in (10, 50, 150, 310, 600, 1000):
        plan = HeuristicPlanner(DEFAULT_PARAMS).plan(pool, dgemm_mflop(size))
        n, a, s, h = plan.hierarchy.shape_signature()
        rows.append(
            [f"{size}x{size}", n, a, s, h,
             f"{plan.throughput:.1f}", plan.report.bottleneck]
        )
    print(
        ascii_table(
            ["DGEMM", "nodes", "agents", "servers", "height",
             "rho (req/s)", "bound by"],
            rows,
            title="Regime gallery: deployment shape vs request grain "
            "(60 heterogeneous nodes)",
        )
    )


def method_gallery() -> None:
    """Every planning method on one small pool (exhaustive included)."""
    pool = NodePool.heterogeneous(
        [380.0, 350.0, 280.0, 220.0, 160.0, 120.0, 90.0, 60.0]
    )
    wapp = dgemm_mflop(200)
    rows = []

    methods = {
        "heuristic (fixed-point)": lambda: HeuristicPlanner(
            DEFAULT_PARAMS
        ).plan(pool, wapp),
        "heuristic (windowed agents)": lambda: HeuristicPlanner(
            DEFAULT_PARAMS, agent_selection="windowed"
        ).plan(pool, wapp),
        "heuristic (incremental)": lambda: HeuristicPlanner(
            DEFAULT_PARAMS, strategy="incremental"
        ).plan(pool, wapp),
        "homogeneous d-ary [10]": lambda: HomogeneousPlanner(
            DEFAULT_PARAMS
        ).plan(pool, wapp),
        "exhaustive optimum": lambda: exhaustive_plan(
            pool, DEFAULT_PARAMS, wapp
        ),
    }
    for label, build in methods.items():
        plan = build()
        n, a, s, h = plan.hierarchy.shape_signature()
        rows.append([label, n, a, s, h, f"{plan.throughput:.1f}"])
    for label in ("star", "balanced", "chain"):
        kwargs = {"middle_agents": 2} if label == "balanced" else (
            {"agents": 2} if label == "chain" else {}
        )
        deployment = plan_deployment(pool, wapp, method=label, **kwargs)
        n, a, s, h = deployment.hierarchy.shape_signature()
        rows.append([label, n, a, s, h, f"{deployment.throughput:.1f}"])
    print(
        ascii_table(
            ["method", "nodes", "agents", "servers", "height", "rho (req/s)"],
            rows,
            title="Method gallery: 8-node heterogeneous pool, DGEMM 200x200",
        )
    )


if __name__ == "__main__":
    regime_gallery()
    print()
    method_gallery()
