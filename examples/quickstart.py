#!/usr/bin/env python
"""Quickstart: plan, inspect, serialize and simulate a deployment.

The 60-second tour of the library, built on the typed planning API:

1. describe a resource pool (here: 30 heterogeneous nodes);
2. open a :class:`~repro.api.PlanningSession` and plan a deployment for
   a DGEMM 310x310 service with the paper's heuristic (Algorithm 1);
3. inspect the model's throughput prediction (Eq. 16) and the tree;
4. rank the heuristic against the intuitive baselines (every planner is
   one registry name away — ``session.plan(..., method="star")``);
5. write the GoDIET XML a deployment tool would consume;
6. launch the plan on the simulated middleware and measure its actual
   sustained throughput under a client ramp (§5.1 protocol).

Registering your own planner is a one-file change; see
``repro.core.registry`` or `python -c "import repro; help(repro)"`.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import NodePool, PlanRequest, PlanningSession, dgemm_mflop
from repro.deploy import DeploymentPlan, GoDIET, plan_to_xml
from repro.workloads import ClientRamp


def main() -> None:
    # 1. A heterogeneous pool: powers drawn from [80, 400] MFlop/s.
    pool = NodePool.uniform_random(30, low=80.0, high=400.0, seed=7)
    print(f"pool: {pool.describe()}")

    # 2. A session caches results and dispatches through the planner
    #    registry.  PlanRequest is a frozen, eagerly-validated problem
    #    description; kwargs to session.plan() build one implicitly.
    session = PlanningSession()
    request = PlanRequest(pool=pool, app_work=dgemm_mflop(310))
    deployment = session.plan(request)
    print(f"plan: {deployment.describe()}")

    # 3. The model's view: which phase limits throughput, and where.
    report = deployment.report
    print(
        f"model: rho = {report.throughput:.1f} req/s "
        f"({report.bottleneck}-bound; scheduling {report.sched:.1f}, "
        f"service {report.service:.1f}; tightest node "
        f"{report.limiting_node!r})"
    )
    print("hierarchy:")
    print(deployment.hierarchy.describe())

    # 4. Rank against the baselines — one call, every method by name.
    ranked = session.rank(
        pool, dgemm_mflop(310), methods=("heuristic", "star", "balanced")
    )
    for entry in ranked:
        nodes, agents, servers, height = entry.shape
        print(
            f"  {entry.method:<10} rho={entry.predicted:8.1f} req/s  "
            f"(nodes={nodes}, agents={agents}, height={height})"
        )

    # 5. Serialize — this is the file a GoDIET-style launcher consumes.
    plan = DeploymentPlan(
        hierarchy=deployment.hierarchy,
        params=deployment.params,
        app_work=deployment.app_work,
        method=deployment.method,
    )
    xml = plan_to_xml(plan)
    print(f"plan XML: {len(xml.splitlines())} lines (showing the first 6)")
    print("\n".join(xml.splitlines()[:6]))

    # 6. Measure: launch on the simulated platform, ramp clients until
    #    throughput plateaus, hold, and report the sustained rate.
    platform = GoDIET().launch(plan, pool=pool)
    ramp = ClientRamp(
        client_interval=0.1, max_clients=250, hold_duration=10.0
    )
    result = ramp.run(platform.system)
    print(
        f"measured: {result.max_sustained:.1f} req/s sustained with "
        f"{result.clients_at_peak} clients "
        f"(model predicted {plan.predicted_throughput:.1f})"
    )


if __name__ == "__main__":
    main()
