"""Setup shim.

The offline environment ships setuptools without the ``wheel`` package, so
PEP 660 editable installs (which build a wheel) fail.  This shim enables the
legacy path: ``pip install -e . --no-build-isolation --no-use-pep517``.
All real metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
