"""repro — reproduction of *Automatic Middleware Deployment Planning on
Heterogeneous Platforms* (Caron, Chouhan, Desprez; IPDPS 2008 / INRIA
RR-6566).

The library provides:

* the paper's steady-state throughput model (:mod:`repro.core`),
* a pluggable planner registry and typed planning API (:mod:`repro.api`,
  :mod:`repro.core.registry`) covering the heterogeneous heuristic, the
  homogeneous-optimal and exhaustive references, the intuitive baselines,
  and the extension planners (``hetcomm``, ``multiapp``, ``redeploy``),
* a synthetic platform substrate (:mod:`repro.platforms`),
* a discrete-event simulated DIET-like middleware (:mod:`repro.sim`,
  :mod:`repro.middleware`) standing in for the paper's Grid'5000 testbed,
* plan serialization and a GoDIET-style launcher (:mod:`repro.deploy`),
* workload and load-injection tooling (:mod:`repro.workloads`),
* an online control plane — time-varying workload traces and
  rolling-horizon autoscaling over the simulator (:mod:`repro.control`),
* a calibration campaign reproducing Table 3 (:mod:`repro.calibration`),
* experiment harnesses for every figure and table (:mod:`repro.analysis`).

Quickstart::

    from repro import NodePool, PlanningSession, dgemm_mflop

    session = PlanningSession()
    pool = NodePool.uniform_random(50, low=80, high=400, seed=7)
    deployment = session.plan(pool=pool, app_work=dgemm_mflop(310))
    print(deployment.describe())

Scenario grids fan out over every registered planner::

    from repro import PlanRequest, scenario_grid

    grid = scenario_grid(
        pools=[pool], app_works=[dgemm_mflop(s) for s in (100, 310)],
        methods=("heuristic", "star", "balanced"),
    )
    deployments = session.plan_many(grid, parallel=True)
    best = session.rank(pool, dgemm_mflop(310))[0]

Registering a third-party planner is a one-file change — implement the
:class:`~repro.core.registry.Planner` protocol and decorate it::

    from repro import register_planner
    from repro.core.registry import CAP_AUTOMATIC, PlannerOptions

    @register_planner
    class MyPlanner:
        name = "mine"
        capabilities = frozenset({CAP_AUTOMATIC})
        options_type = PlannerOptions

        def plan(self, request):
            ...  # return a repro.Deployment

    PlanningSession().plan(pool=pool, app_work=1.0, method="mine")

The new planner automatically appears in ``repro-deploy plan --method``
and ``repro-deploy planners``.  The legacy ``plan_deployment`` facade
still works but is deprecated.
"""

from repro.api import (
    PlanRequest,
    PlanningSession,
    RankedPlan,
    scenario_grid,
)
from repro.core import (
    REGISTRY,
    BalancedOptions,
    ChainOptions,
    Deployment,
    ExhaustiveOptions,
    HeuristicOptions,
    HeuristicPlanner,
    Hierarchy,
    HierarchyEvaluator,
    HomogeneousOptions,
    HomogeneousPlanner,
    LevelSizes,
    ModelParams,
    PlannerOptions,
    PlannerRegistry,
    Role,
    StarOptions,
    ThroughputReport,
    balanced_deployment,
    chain_deployment,
    default_middle_agents,
    hierarchy_throughput,
    plan_deployment,
    register_planner,
    star_deployment,
)
from repro.platforms import (
    BackgroundWorkload,
    HomogeneousNetwork,
    Node,
    NodePool,
    heterogenize,
    rate_pool,
)
from repro.units import dgemm_mflop

__version__ = "1.10.0"

#: Control-plane names exported lazily (PEP 562): repro.control pulls in
#: the middleware/sim/extensions stack, which the registry deliberately
#: defers to first lookup — `import repro` must stay cheap for CLI
#: startup and plan_many worker processes.
_CONTROL_EXPORTS = ("ControlLoop", "ControlTimeline", "Trace")


def __getattr__(name):
    if name in _CONTROL_EXPORTS:
        from repro import control

        return getattr(control, name)
    raise AttributeError(f"module 'repro' has no attribute {name!r}")

__all__ = [
    "__version__",
    # planning API
    "PlanRequest",
    "PlanningSession",
    "RankedPlan",
    "scenario_grid",
    "REGISTRY",
    "PlannerRegistry",
    "register_planner",
    "Deployment",
    "default_middle_agents",
    "PlannerOptions",
    "HeuristicOptions",
    "HomogeneousOptions",
    "ExhaustiveOptions",
    "StarOptions",
    "BalancedOptions",
    "ChainOptions",
    # core
    "ModelParams",
    "LevelSizes",
    "Hierarchy",
    "Role",
    "ThroughputReport",
    "hierarchy_throughput",
    "HierarchyEvaluator",
    "HeuristicPlanner",
    "HomogeneousPlanner",
    "plan_deployment",
    "star_deployment",
    "balanced_deployment",
    "chain_deployment",
    # control plane
    "ControlLoop",
    "ControlTimeline",
    "Trace",
    # platforms
    "Node",
    "NodePool",
    "HomogeneousNetwork",
    "BackgroundWorkload",
    "heterogenize",
    "rate_pool",
    # workloads
    "dgemm_mflop",
]
