"""repro — reproduction of *Automatic Middleware Deployment Planning on
Heterogeneous Platforms* (Caron, Chouhan, Desprez; IPDPS 2008 / INRIA
RR-6566).

The library provides:

* the paper's steady-state throughput model (:mod:`repro.core`),
* the heterogeneous deployment heuristic and reference planners,
* a synthetic platform substrate (:mod:`repro.platforms`),
* a discrete-event simulated DIET-like middleware (:mod:`repro.sim`,
  :mod:`repro.middleware`) standing in for the paper's Grid'5000 testbed,
* plan serialization and a GoDIET-style launcher (:mod:`repro.deploy`),
* workload and load-injection tooling (:mod:`repro.workloads`),
* a calibration campaign reproducing Table 3 (:mod:`repro.calibration`),
* experiment harnesses for every figure and table (:mod:`repro.analysis`).

Quickstart::

    from repro import NodePool, plan_deployment, dgemm_mflop

    pool = NodePool.uniform_random(50, low=80, high=400, seed=7)
    deployment = plan_deployment(pool, app_work=dgemm_mflop(310))
    print(deployment.describe())
"""

from repro.core import (
    HeuristicPlanner,
    Hierarchy,
    HomogeneousPlanner,
    LevelSizes,
    ModelParams,
    Role,
    ThroughputReport,
    balanced_deployment,
    chain_deployment,
    hierarchy_throughput,
    plan_deployment,
    star_deployment,
)
from repro.platforms import (
    BackgroundWorkload,
    HomogeneousNetwork,
    Node,
    NodePool,
    heterogenize,
    rate_pool,
)
from repro.units import dgemm_mflop

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # core
    "ModelParams",
    "LevelSizes",
    "Hierarchy",
    "Role",
    "ThroughputReport",
    "hierarchy_throughput",
    "HeuristicPlanner",
    "HomogeneousPlanner",
    "plan_deployment",
    "star_deployment",
    "balanced_deployment",
    "chain_deployment",
    # platforms
    "Node",
    "NodePool",
    "HomogeneousNetwork",
    "BackgroundWorkload",
    "heterogenize",
    "rate_pool",
    # workloads
    "dgemm_mflop",
]
