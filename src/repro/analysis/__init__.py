"""Experiment harnesses and result analysis.

* :mod:`repro.analysis.experiments` — drive deployments under load in the
  DES and measure steady-state throughput (fixed-load, load curves, and
  the paper's ramp-to-saturation protocol);
* :mod:`repro.analysis.saturation` — plateau/knee detection on load
  curves;
* :mod:`repro.analysis.compare` — predicted-vs-measured and
  deployment-vs-deployment comparisons;
* :mod:`repro.analysis.report` — ASCII tables and charts for the
  benchmark harness output.
"""

from repro.analysis.experiments import (
    ExperimentResult,
    LoadCurve,
    max_sustained_throughput,
    measure_load_curve,
    run_fixed_load,
)
from repro.analysis.saturation import find_plateau
from repro.analysis.compare import (
    ComparisonRow,
    compare_deployments,
    percent_of_optimal,
    predicted_vs_measured,
)
from repro.analysis.report import ascii_chart, ascii_table, render_timeline

__all__ = [
    "ExperimentResult",
    "LoadCurve",
    "run_fixed_load",
    "measure_load_curve",
    "max_sustained_throughput",
    "find_plateau",
    "ComparisonRow",
    "compare_deployments",
    "percent_of_optimal",
    "predicted_vs_measured",
    "ascii_table",
    "ascii_chart",
    "render_timeline",
]
