"""Deployment comparisons: predicted vs. measured, plan vs. plan.

These helpers produce the numbers the paper reports:

* Figures 3 and 5 compare the model's predicted maximum throughput with
  the measured one for each hierarchy — :func:`predicted_vs_measured`;
* Table 4 scores the heuristic's deployment as a percentage of the
  optimal deployment's throughput — :func:`percent_of_optimal`;
* Figures 6 and 7 rank alternative deployments of one pool —
  :func:`compare_deployments` for explicit hierarchies, or
  :func:`rank_methods` to plan *and* rank registry planners by name
  (a thin wrapper over :meth:`repro.api.PlanningSession.rank`).
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import dataclass

from repro.analysis.experiments import run_fixed_load
from repro.core.hierarchy import Hierarchy
from repro.core.params import ModelParams
from repro.core.throughput import hierarchy_throughput
from repro.errors import ParameterError
from repro.platforms.pool import NodePool

__all__ = [
    "ComparisonRow",
    "predicted_vs_measured",
    "compare_deployments",
    "rank_methods",
    "percent_of_optimal",
]


@dataclass(frozen=True)
class ComparisonRow:
    """One deployment's predicted and measured performance."""

    label: str
    nodes: int
    agents: int
    servers: int
    height: int
    predicted: float
    measured: float

    @property
    def accuracy(self) -> float:
        """measured / predicted (1.0 = the model was exact)."""
        return self.measured / self.predicted if self.predicted else 0.0


def predicted_vs_measured(
    hierarchy: Hierarchy,
    params: ModelParams,
    app_work: float,
    clients: int,
    label: str = "",
    duration: float = 20.0,
    seed: int = 0,
) -> ComparisonRow:
    """Model prediction (Eq. 16) next to the DES measurement."""
    report = hierarchy_throughput(hierarchy, params, app_work)
    result = run_fixed_load(
        hierarchy, params, app_work, clients=clients,
        duration=duration, seed=seed,
    )
    n, a, s, h = hierarchy.shape_signature()
    return ComparisonRow(
        label=label or f"{n}-node deployment",
        nodes=n,
        agents=a,
        servers=s,
        height=h,
        predicted=report.throughput,
        measured=result.throughput,
    )


def compare_deployments(
    deployments: Mapping[str, Hierarchy],
    params: ModelParams,
    app_work: float,
    clients: int,
    duration: float = 20.0,
    seed: int = 0,
) -> list[ComparisonRow]:
    """Rank several deployments of the same pool under identical load.

    Returns rows sorted by measured throughput, best first.
    """
    if not deployments:
        raise ParameterError("no deployments to compare")
    rows = [
        predicted_vs_measured(
            hierarchy, params, app_work, clients=clients,
            label=label, duration=duration, seed=seed,
        )
        for label, hierarchy in deployments.items()
    ]
    rows.sort(key=lambda row: row.measured, reverse=True)
    return rows


def rank_methods(
    pool: NodePool,
    app_work: float,
    methods: Sequence[str] | None = None,
    params: ModelParams | None = None,
    clients: int = 50,
    duration: float = 15.0,
    seed: int = 0,
) -> list[ComparisonRow]:
    """Plan ``pool`` with several registry planners and rank them measured.

    The planning goes through :class:`repro.api.PlanningSession` (so any
    registered planner name works); the measurement reuses
    :func:`compare_deployments`' fixed-load protocol.  Returns rows
    sorted by measured throughput, best first.
    """
    from repro.api import PlanningSession

    session = PlanningSession(params=params)
    ranked = session.rank(
        pool, app_work, methods=methods,
        measure=True, clients=clients, duration=duration, seed=seed,
    )
    return [
        ComparisonRow(
            label=entry.method,
            nodes=entry.shape[0],
            agents=entry.shape[1],
            servers=entry.shape[2],
            height=entry.shape[3],
            predicted=entry.predicted,
            measured=entry.measured if entry.measured is not None else 0.0,
        )
        for entry in ranked
    ]


def percent_of_optimal(value: float, optimal: float) -> float:
    """``value`` as a percentage of ``optimal`` (Table 4's last column)."""
    if optimal <= 0.0:
        raise ParameterError(f"optimal must be > 0, got {optimal}")
    return 100.0 * value / optimal
