"""Experiment drivers: run deployments under load, measure throughput.

Three measurement modes mirror the paper's §5 methodology:

* :func:`run_fixed_load` — N closed-loop clients, steady-state rate after
  a warm-up (one point of a load curve);
* :func:`measure_load_curve` — a sweep over client counts, producing the
  "requests/second vs. number of clients" curves of Figures 2, 4, 6, 7;
* :func:`max_sustained_throughput` — the full ramp-until-plateau-then-hold
  protocol via :class:`~repro.workloads.loadgen.ClientRamp`.

Every run is seeded and deterministic.  Simulated durations default to
tens of seconds rather than the paper's tens of minutes: the DES has no
measurement noise to average away, only queue transients, and the warm-up
already absorbs those.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.core.hierarchy import Hierarchy
from repro.core.params import ModelParams
from repro.errors import SimulationError
from repro.middleware.client import ClosedLoopClient
from repro.middleware.system import MiddlewareSystem
from repro.sim.engine import Simulator
from repro.workloads.loadgen import ClientRamp, RampResult

__all__ = [
    "ExperimentResult",
    "LoadCurve",
    "run_fixed_load",
    "measure_load_curve",
    "max_sustained_throughput",
]


@dataclass(frozen=True)
class ExperimentResult:
    """Steady-state measurement of one deployment under one load level."""

    clients: int
    throughput: float
    mean_latency: float
    mean_scheduling_latency: float
    utilizations: Mapping[str, float] = field(repr=False)
    service_counts: Mapping[str, int] = field(repr=False)
    completed: int = 0

    @property
    def bottleneck_node(self) -> str:
        return max(self.utilizations, key=lambda k: self.utilizations[k])

    @property
    def bottleneck_utilization(self) -> float:
        return self.utilizations[self.bottleneck_node]


@dataclass(frozen=True)
class LoadCurve:
    """A measured "requests/s vs. clients" curve for one deployment."""

    label: str
    clients: np.ndarray = field(repr=False)
    rates: np.ndarray = field(repr=False)

    @property
    def peak_rate(self) -> float:
        return float(self.rates.max()) if self.rates.size else 0.0

    @property
    def peak_clients(self) -> int:
        if not self.rates.size:
            return 0
        return int(self.clients[int(self.rates.argmax())])

    def points(self) -> list[tuple[int, float]]:
        return [(int(c), float(r)) for c, r in zip(self.clients, self.rates)]


def _as_hierarchy(deployment: Hierarchy | object) -> Hierarchy:
    """Accept a bare :class:`Hierarchy` or any planning result carrying one.

    Lets :class:`repro.core.registry.Deployment` (and the per-planner
    result objects like ``HeuristicPlan``) flow straight from
    :meth:`repro.api.PlanningSession.plan` into the measurement harness
    without unwrapping at every call site.
    """
    if isinstance(deployment, Hierarchy):
        return deployment
    hierarchy = getattr(deployment, "hierarchy", None)
    if isinstance(hierarchy, Hierarchy):
        return hierarchy
    raise SimulationError(
        f"expected a Hierarchy or an object with a .hierarchy, "
        f"got {type(deployment).__name__}"
    )


def _build_system(
    hierarchy: Hierarchy,
    params: ModelParams,
    app_work: float | Mapping[str, float],
    seed: int,
) -> tuple[Simulator, MiddlewareSystem]:
    sim = Simulator()
    system = MiddlewareSystem(sim, hierarchy, params, app_work, seed=seed)
    return sim, system


def run_fixed_load(
    hierarchy: Hierarchy,
    params: ModelParams,
    app_work: float | Mapping[str, float],
    clients: int,
    duration: float = 20.0,
    warmup_fraction: float = 0.4,
    stagger: float = 0.01,
    seed: int = 0,
) -> ExperimentResult:
    """Measure steady-state throughput with a fixed client population.

    Clients start ``stagger`` seconds apart (to avoid a synchronized
    thundering herd at t=0), the first ``warmup_fraction`` of the run is
    discarded, and the rate is measured over the remainder.
    """
    if clients < 1:
        raise SimulationError(f"clients must be >= 1, got {clients}")
    if duration <= 0.0:
        raise SimulationError(f"duration must be > 0, got {duration}")
    if not (0.0 <= warmup_fraction < 1.0):
        raise SimulationError(
            f"warmup_fraction must be in [0, 1), got {warmup_fraction}"
        )
    sim, system = _build_system(_as_hierarchy(hierarchy), params, app_work, seed)
    pool = [
        ClosedLoopClient(system, f"client-{i:04d}") for i in range(clients)
    ]
    for index, client in enumerate(pool):
        sim.schedule(index * stagger, client.start)
    sim.run_until(duration)
    warmup_end = duration * warmup_fraction
    rate = system.completions.rate(warmup_end, duration)
    finished = [
        r
        for r in system._requests.values()
        if r.is_complete and r.completed_at is not None
        and r.completed_at > warmup_end
    ]
    latencies = [r.total_latency for r in finished if r.total_latency]
    sched_latencies = [
        r.scheduling_latency for r in finished if r.scheduling_latency
    ]
    return ExperimentResult(
        clients=clients,
        throughput=float(rate),
        mean_latency=float(np.mean(latencies)) if latencies else 0.0,
        mean_scheduling_latency=(
            float(np.mean(sched_latencies)) if sched_latencies else 0.0
        ),
        utilizations=system.utilization_report(),
        service_counts=system.service_counts(),
        completed=system.total_completed(),
    )


def measure_load_curve(
    hierarchy: Hierarchy,
    params: ModelParams,
    app_work: float | Mapping[str, float],
    client_counts: Sequence[int],
    label: str = "",
    duration: float = 15.0,
    seed: int = 0,
) -> LoadCurve:
    """Sweep client counts; one fresh simulation per load level.

    Fresh simulations keep levels independent (no hysteresis from earlier
    load), matching how the paper reports throughput per load level.
    """
    if not client_counts:
        raise SimulationError("client_counts must not be empty")
    rates = []
    for count in client_counts:
        result = run_fixed_load(
            hierarchy,
            params,
            app_work,
            clients=int(count),
            duration=duration,
            seed=seed,
        )
        rates.append(result.throughput)
    return LoadCurve(
        label=label,
        clients=np.asarray(list(client_counts), dtype=int),
        rates=np.asarray(rates, dtype=float),
    )


def max_sustained_throughput(
    hierarchy: Hierarchy,
    params: ModelParams,
    app_work: float | Mapping[str, float],
    ramp: ClientRamp | None = None,
    seed: int = 0,
) -> RampResult:
    """Run the paper's ramp-until-plateau protocol on a deployment."""
    sim, system = _build_system(_as_hierarchy(hierarchy), params, app_work, seed)
    del sim
    ramp = ramp if ramp is not None else ClientRamp()
    return ramp.run(system)
