"""Plain-text rendering of experiment results.

The benchmark harness regenerates every table and figure of the paper as
text: :func:`ascii_table` for tables, :func:`ascii_chart` for the load
curves (one character column per sample, scaled rows).  Keeping output
textual makes the benchmarks diff-able and keeps the library free of
plotting dependencies.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

__all__ = ["ascii_table", "ascii_chart", "format_rate", "render_timeline"]


def format_rate(value: float) -> str:
    """Compact requests/s formatting (3 significant-ish digits)."""
    if value >= 100:
        return f"{value:.0f}"
    if value >= 10:
        return f"{value:.1f}"
    return f"{value:.2f}"


def ascii_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = "",
) -> str:
    """Render a boxed, column-aligned table."""
    str_rows = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def line(cells: Sequence[str]) -> str:
        return (
            "| "
            + " | ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))
            + " |"
        )

    separator = "+" + "+".join("-" * (w + 2) for w in widths) + "+"
    out: list[str] = []
    if title:
        out.append(title)
    out.append(separator)
    out.append(line(list(headers)))
    out.append(separator)
    for row in str_rows:
        out.append(line(row))
    out.append(separator)
    return "\n".join(out)


def render_timeline(timeline, max_reason: int = 44) -> str:
    """Render a :class:`~repro.control.loop.ControlTimeline` as a table.

    One row per control epoch — offered clients, served rate, modeled
    capacity, deployment size, the effective migration downtime paid
    (with the itemized step count), the migration's wall window and the
    policy verdict — followed by the timeline's one-line summary.
    Redeploys are flagged with ``*`` in the act column.  The ``win``
    column is where a concurrent schedule shows: step windows that
    overlap sum to more than the wall window, so ``down/steps`` of
    ``0.30/3`` next to ``win 0.15`` means three drains ran side by
    side; under a serial schedule the window always equals the summed
    step durations.  Epochs whose simulate stage took injected faults
    prefix their reason with the fault summary (``!crash(node-3)``).

    Under timeout-modelled detection the markers separate *injected-at*
    from *detected-at*: ``!crash(x)`` still flags the epoch the fault
    schedule landed the (silent) crash, while ``>dead(x)`` flags the
    epoch the control plane *confirmed* it — with the measured
    injection-to-confirmation latency in the ``detect`` column
    (``fp`` for a false positive, which never matched an injection).
    ``?suspect(x)`` marks epochs that ended with ``x`` inside its
    grace window, and ``~evict(x)`` the epoch a persistently degraded
    server was drained-and-replaced.

    The numeric columns read from each epoch's frozen
    :class:`~repro.obs.MetricsSnapshot` (``record.metrics``), falling
    back to the record fields for timelines recorded before snapshots
    existed — both views are fed from the same deterministic
    simulation state, so a rendered table never mixes sources.

    Hybrid-population runs add a split in the ``pop(c+f)`` column:
    ``12+40134`` means 12 discretely simulated cohort clients plus a
    fluid mass of ~40134 carried analytically (``clients`` stays the
    total the trace offered).  All-discrete runs show ``-``.
    """

    def column(record, name, attribute):
        snapshot = getattr(record, "metrics", None)
        if snapshot is not None:
            value = snapshot.value(name)
            if value is not None:
                return value
        return getattr(record, attribute)

    rows = []
    for record in timeline.records:
        reason = record.reason
        for name in getattr(record, "evictions", ()):
            reason = f"~evict({name}) {reason}"
        suspects = getattr(record, "suspects", ())
        if suspects:
            reason = f"?suspect({','.join(suspects)}) {reason}"
        for detection in getattr(record, "detections", ()):
            reason = f">dead({detection.node}) {reason}"
        for fault in getattr(record, "faults", ()):
            marker = "!" if fault.applied else "?"
            reason = f"{marker}{fault.kind}({fault.target}) {reason}"
        if len(reason) > max_reason:
            reason = reason[: max_reason - 1] + "…"
        steps = getattr(record, "migration_steps", ())
        down = (
            f"{record.migration_seconds:.2f}/{len(steps)}"
            if steps
            else "-"
        )
        window = (
            f"{record.migration_window:.2f}"
            if steps and getattr(record, "migration_window", 0.0) > 0.0
            else "-"
        )
        detections = getattr(record, "detections", ())
        detect = (
            "/".join(
                f"{d.latency:.2f}" if d.latency is not None else "fp"
                for d in detections
            )
            if detections
            else "-"
        )
        fluid_mass = getattr(record, "fluid_clients", 0.0)
        population = (
            f"{getattr(record, 'cohort_clients', 0)}+{fluid_mass:.0f}"
            if fluid_mass > 0.0
            else "-"
        )
        rows.append(
            [
                record.index,
                f"{record.start:.0f}",
                column(record, "offered_clients", "offered"),
                population,
                format_rate(column(record, "served_rate", "served_rate")),
                format_rate(column(record, "capacity", "capacity")),
                column(record, "deployed_nodes", "deployed_nodes"),
                column(record, "spares", "spares"),
                f"{column(record, 'busiest_utilization', 'busiest_utilization'):.2f}",
                down,
                window,
                detect,
                ("*" if record.applied else " ") + record.action,
                reason,
            ]
        )
    table = ascii_table(
        headers=[
            "epoch", "t", "clients", "pop(c+f)", "req/s", "cap", "nodes",
            "spare", "util", "down/steps", "win", "detect", "act", "reason",
        ],
        rows=rows,
        title=(
            f"Control timeline — policy={timeline.policy} "
            f"trace={timeline.trace_name} seed={timeline.seed} "
            f"migration={getattr(timeline, 'migration', '?')}"
        ),
    )
    return f"{table}\n{timeline.describe()}"


def ascii_chart(
    series: dict[str, tuple[Sequence[float], Sequence[float]]],
    height: int = 12,
    width: int = 64,
    title: str = "",
    x_label: str = "clients",
    y_label: str = "req/s",
) -> str:
    """Render one or more (x, y) series as a character plot.

    Each series gets a marker (``*``, ``o``, ``+``, ``x``, ...); axes are
    scaled to the combined data range.  Good enough to show the shape of
    a load curve — which is exactly what the reproduction must match.
    """
    markers = "*o+x@#%&"
    all_x = np.concatenate([np.asarray(x, dtype=float) for x, _ in series.values()])
    all_y = np.concatenate([np.asarray(y, dtype=float) for _, y in series.values()])
    if all_x.size == 0:
        return "(no data)"
    x_min, x_max = float(all_x.min()), float(all_x.max())
    y_min, y_max = 0.0, float(all_y.max())
    x_span = (x_max - x_min) or 1.0
    y_span = (y_max - y_min) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for index, (label, (xs, ys)) in enumerate(series.items()):
        marker = markers[index % len(markers)]
        for x, y in zip(xs, ys):
            col = int((float(x) - x_min) / x_span * (width - 1))
            row = int((float(y) - y_min) / y_span * (height - 1))
            grid[height - 1 - row][col] = marker

    out: list[str] = []
    if title:
        out.append(title)
    top_label = f"{y_max:.1f} {y_label}"
    out.append(top_label)
    for row in grid:
        out.append("|" + "".join(row))
    out.append("+" + "-" * width)
    out.append(
        f" {x_min:.0f}{' ' * max(1, width - len(f'{x_min:.0f}') - len(f'{x_max:.0f}'))}"
        f"{x_max:.0f}  ({x_label})"
    )
    legend = "  ".join(
        f"{markers[i % len(markers)]} = {label}"
        for i, label in enumerate(series)
    )
    out.append(legend)
    return "\n".join(out)
