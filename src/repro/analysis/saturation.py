"""Plateau detection on load curves.

The paper's protocol adds clients "until the throughput of the platform
stops improving".  Given a measured load curve, :func:`find_plateau`
locates that point: the smallest client count whose rate is within a
tolerance of the curve's eventual plateau level.  Harnesses use it both
to report saturation loads and to decide whether a sweep explored enough
load levels.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SimulationError

__all__ = ["find_plateau", "is_saturated"]


def find_plateau(
    clients: np.ndarray | list[int],
    rates: np.ndarray | list[float],
    tolerance: float = 0.05,
    tail_points: int = 3,
) -> tuple[int, float]:
    """Locate the saturation point of a load curve.

    The plateau level is the mean of the last ``tail_points`` samples;
    the saturation point is the first client count whose rate reaches
    ``(1 - tolerance)`` of that level.

    Returns
    -------
    (clients_at_saturation, plateau_rate)

    Raises
    ------
    SimulationError
        If the curve is empty or still clearly rising at its end (the
        sweep did not reach saturation).
    """
    clients_arr = np.asarray(clients, dtype=float)
    rates_arr = np.asarray(rates, dtype=float)
    if clients_arr.size == 0 or clients_arr.size != rates_arr.size:
        raise SimulationError("load curve is empty or misaligned")
    tail = rates_arr[-min(tail_points, rates_arr.size):]
    plateau = float(tail.mean())
    if plateau <= 0.0:
        raise SimulationError("load curve never completed any request")
    if not is_saturated(rates_arr, tolerance=tolerance, tail_points=tail_points):
        raise SimulationError(
            "load curve is still rising at its end; sweep more clients"
        )
    threshold = (1.0 - tolerance) * plateau
    for c, r in zip(clients_arr, rates_arr):
        if r >= threshold:
            return int(c), plateau
    return int(clients_arr[-1]), plateau


def is_saturated(
    rates: np.ndarray | list[float],
    tolerance: float = 0.05,
    tail_points: int = 3,
) -> bool:
    """True when the curve's tail has flattened.

    The last point must not exceed the tail mean by more than the
    tolerance — a cheap monotone-growth check.
    """
    rates_arr = np.asarray(rates, dtype=float)
    if rates_arr.size < tail_points + 1:
        return False
    tail = rates_arr[-tail_points:]
    return float(rates_arr[-1]) <= float(tail.mean()) * (1.0 + tolerance)
