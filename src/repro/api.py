"""Typed planning API: :class:`PlanRequest` and :class:`PlanningSession`.

This is the front door of the library.  A :class:`PlanRequest` is a
frozen, validated description of one planning problem — pool, workload,
demand, parameters, planner name and typed options.  A
:class:`PlanningSession` executes requests through the
:data:`~repro.core.registry.REGISTRY`:

* :meth:`PlanningSession.plan` — one request, with result caching;
* :meth:`PlanningSession.plan_many` — a batch (e.g. a scenario grid from
  :func:`scenario_grid`), optionally fanned out in chunks over a
  :class:`concurrent.futures.ProcessPoolExecutor` (planning is CPU-bound,
  so threads cannot scale it past the GIL); results are deterministic and
  identical with or without ``parallel``;
* :meth:`PlanningSession.rank` — the cross-planner comparison the CLI's
  ``compare`` subcommand and :mod:`repro.analysis.compare` build on:
  plan one pool with several methods, optionally measure each deployment
  in the discrete-event simulator, and sort best-first;
* :meth:`PlanningSession.control_run` — the online control plane: run a
  deployment in the simulator under a time-varying workload trace and
  let an autoscaling policy adapt it epoch by epoch
  (:mod:`repro.control`), with live subtree migration or stop-the-world
  restarts per redeploy;
* :meth:`PlanningSession.control_sweep` — a (trace, policy, seed) grid
  of controller runs, fanned out over the same process-pool machinery
  as :meth:`plan_many` (controller runs are simulation-bound, so
  separate interpreters are what scales a tuning campaign).

Quickstart::

    from repro import NodePool, PlanningSession, dgemm_mflop

    session = PlanningSession()
    deployment = session.plan(
        pool=NodePool.uniform_random(50, low=80, high=400, seed=7),
        app_work=dgemm_mflop(310),
    )
    print(deployment.describe())

Every planner — including the extensions (``hetcomm``, ``multiapp``,
``redeploy``) and any third-party planner registered with
:func:`~repro.core.registry.register_planner` — is reachable by name via
``PlanRequest.method``.
"""

from __future__ import annotations

import dataclasses
import math
import os
import threading
from collections.abc import Iterable, Mapping, Sequence
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass

from repro.core.params import ModelParams
from repro.core.registry import (
    REGISTRY,
    Deployment,
    PlannerOptions,
    PlannerRegistry,
    default_middle_agents,
)
from repro.errors import PlanningError
from repro.platforms.pool import NodePool

__all__ = [
    "PlanRequest",
    "PlanningSession",
    "RankedPlan",
    "ControlCell",
    "scenario_grid",
    "default_middle_agents",
]


def _freeze(value: object) -> object:
    """Recursively convert ``value`` into a hashable cache-key component."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return (
            type(value).__name__,
            tuple(
                (f.name, _freeze(getattr(value, f.name)))
                for f in dataclasses.fields(value)
            ),
        )
    if isinstance(value, Mapping):
        return tuple(sorted((k, _freeze(v)) for k, v in value.items()))
    if isinstance(value, (list, tuple)):
        return tuple(_freeze(v) for v in value)
    if isinstance(value, (set, frozenset)):
        return tuple(sorted(_freeze(v) for v in value))
    return value


@dataclass(frozen=True)
class PlanRequest:
    """One planning problem, fully specified.

    Parameters
    ----------
    pool:
        Available compute nodes.
    app_work:
        Application work ``Wapp`` per request, MFlop.
    demand:
        Optional client demand (requests/s); demand-capable planners stop
        at the cheapest satisfying deployment.
    params:
        Model parameters; ``None`` means the Table 3 calibration.
    method:
        A planner name from :meth:`PlannerRegistry.available`.
    options:
        Planner options: the planner's typed dataclass (e.g.
        :class:`~repro.core.registry.HeuristicOptions`), a plain mapping
        (coerced and validated eagerly), or ``None`` for defaults.
    seed:
        Seed for planners/measurements that randomize; planning itself is
        deterministic.
    label:
        Free-form tag carried through to results (useful in grids).
    """

    pool: NodePool
    app_work: float
    demand: float | None = None
    params: ModelParams | None = None
    method: str = "heuristic"
    options: PlannerOptions | Mapping[str, object] | None = None
    seed: int = 0
    label: str = ""

    def __post_init__(self) -> None:
        if not isinstance(self.pool, NodePool):
            raise PlanningError(
                f"pool must be a NodePool, got {type(self.pool).__name__}"
            )
        if len(self.pool) < 1:
            raise PlanningError("pool must not be empty")
        if self.app_work <= 0.0:
            raise PlanningError(
                f"app_work must be > 0, got {self.app_work}"
            )
        if self.demand is not None and self.demand <= 0.0:
            raise PlanningError(
                f"demand must be > 0 when given, got {self.demand}"
            )
        if not self.method or not isinstance(self.method, str):
            raise PlanningError(
                f"method must be a planner name, got {self.method!r}"
            )

    def replace(self, **changes: object) -> "PlanRequest":
        """A copy with the given fields replaced."""
        return dataclasses.replace(self, **changes)

    def cache_key(self) -> tuple:
        """Hashable identity of this request (label excluded)."""
        return (
            self.method,
            tuple((n.name, n.power) for n in self.pool),
            self.app_work,
            self.demand,
            _freeze(self.params),
            _freeze(self.options),
            self.seed,
        )


@dataclass(frozen=True)
class RankedPlan:
    """One entry of a cross-planner comparison."""

    method: str
    deployment: Deployment
    predicted: float
    measured: float | None = None

    @property
    def throughput(self) -> float:
        """Measured throughput when available, else the model prediction."""
        return self.measured if self.measured is not None else self.predicted

    @property
    def shape(self) -> tuple[int, int, int, int]:
        """(nodes, agents, servers, height) of the deployment tree."""
        return self.deployment.hierarchy.shape_signature()


def scenario_grid(
    pools: Sequence[NodePool],
    app_works: Sequence[float],
    methods: Sequence[str] = ("heuristic",),
    demands: Sequence[float | None] = (None,),
    seeds: Sequence[int] = (0,),
    params: ModelParams | None = None,
    options_by_method: Mapping[str, object] | None = None,
) -> list[PlanRequest]:
    """The cross product pool x workload x method x demand x seed.

    Returns one :class:`PlanRequest` per grid cell, labelled
    ``"pool{i}/w{j}/{method}"`` so results stay attributable after a
    parallel :meth:`PlanningSession.plan_many` fan-out.
    """
    if not pools or not app_works or not methods:
        raise PlanningError(
            "scenario_grid needs at least one pool, app_work and method"
        )
    options_by_method = options_by_method or {}
    grid = []
    for i, pool in enumerate(pools):
        for j, app_work in enumerate(app_works):
            for method in methods:
                for demand in demands:
                    for seed in seeds:
                        grid.append(
                            PlanRequest(
                                pool=pool,
                                app_work=app_work,
                                demand=demand,
                                params=params,
                                method=method,
                                options=options_by_method.get(method),
                                seed=seed,
                                label=f"pool{i}/w{j}/{method}",
                            )
                        )
    return grid


#: Fewest unique (post-dedup) requests worth a process pool.  Pool
#: spin-up plus per-task pickling costs hundreds of milliseconds; below
#: this count the serial path is measurably faster on every host, so
#: ``plan_many(parallel=True)`` quietly stays serial (ROADMAP: nil
#: parallel gain on small batches, 6.8 vs 6.2 req/s).
_PARALLEL_MIN_UNIQUE = 8


def _plan_request(request: PlanRequest) -> Deployment:
    """Process-pool worker: plan one request against the global registry.

    Module-level so it pickles by reference; the child process re-imports
    :mod:`repro` and resolves the same registered planners.
    """
    return REGISTRY.plan(request)


@dataclass(frozen=True)
class ControlCell:
    """One (trace, policy, seed) cell of a controller sweep.

    ``trace_jsonl`` carries the cell's exported deterministic trace
    when the sweep ran with ``obs=True`` (``None`` otherwise).  Tracers
    do not transport across processes, so each cell — worker or serial
    — builds its own and exports to the byte-identity JSONL format,
    which is how the test suite asserts serial and process-pool sweeps
    trace identically.
    """

    trace: str
    policy: str
    seed: int
    timeline: object  # repro.control.loop.ControlTimeline
    trace_jsonl: str | None = None

    @property
    def label(self) -> str:
        return f"{self.trace}/{self.policy}/s{self.seed}"


def _control_cell(args: tuple) -> tuple:
    """Process-pool worker: run one controller cell.

    Traces travel as ``from_spec`` strings and policies as
    ``(name, options)`` pairs, so every argument pickles by value; the
    child rebuilds the loop against the global registry.  Returns
    ``(timeline, trace_jsonl)`` — the trace export is ``None`` unless
    the cell ran with ``obs=True``.
    """
    (pool, app_work, trace_spec, policy, policy_options, params,
     control_kwargs) = args
    from repro.control.loop import ControlLoop
    from repro.control.traces import from_spec

    loop = ControlLoop(
        pool=pool,
        app_work=app_work,
        trace=from_spec(trace_spec),
        policy=policy,
        params=params,
        policy_options=dict(policy_options) if policy_options else None,
        **control_kwargs,
    )
    timeline = loop.run()
    trace_jsonl = (
        loop.obs.tracer.to_jsonl() if loop.obs.enabled else None
    )
    return timeline, trace_jsonl


class PlanningSession:
    """Stateful planning front end: registry dispatch + result caching.

    Parameters
    ----------
    params:
        Default model parameters applied to requests that carry none.
    registry:
        Planner registry; defaults to the global
        :data:`~repro.core.registry.REGISTRY`.
    cache:
        Memoize results by :meth:`PlanRequest.cache_key` (planning is
        deterministic, so repeated cells of a grid are free).
    """

    def __init__(
        self,
        params: ModelParams | None = None,
        registry: PlannerRegistry | None = None,
        cache: bool = True,
    ):
        self.params = params
        self.registry = registry if registry is not None else REGISTRY
        self._cache_enabled = cache
        self._cache: dict[tuple, Deployment] = {}
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0

    # -------------------------------------------------------------- #

    def plan(
        self, request: PlanRequest | None = None, /, **kwargs: object
    ) -> Deployment:
        """Execute one request (or build one from keyword arguments)."""
        if request is None:
            request = PlanRequest(**kwargs)  # type: ignore[arg-type]
        elif kwargs:
            request = request.replace(**kwargs)
        request = self._with_session_params(request)
        if not self._cache_enabled:
            return self.registry.plan(request)
        key = request.cache_key()
        with self._lock:
            cached = self._cache.get(key)
        if cached is not None:
            with self._lock:
                self._hits += 1
            return cached
        deployment = self.registry.plan(request)
        with self._lock:
            self._misses += 1
            self._cache.setdefault(key, deployment)
        return deployment

    def plan_many(
        self,
        requests: Iterable[PlanRequest],
        parallel: bool = False,
        max_workers: int | None = None,
        chunksize: int | None = None,
    ) -> list[Deployment]:
        """Execute a batch of requests, preserving order.

        With ``parallel=True`` the unique requests fan out in chunks over a
        :class:`~concurrent.futures.ProcessPoolExecutor` — planning is
        CPU-bound, so separate interpreters are what actually scales it.
        Requests are deduplicated by their frozen
        :meth:`PlanRequest.cache_key` first, the session cache is consulted
        before any dispatch, and worker results are folded back into it, so
        repeated ``plan_many`` calls over overlapping grids replan nothing.
        Planning is deterministic: the result list is identical with or
        without ``parallel``.

        The serial fast path — no executor, no process startup — is taken
        when ``parallel`` is off, when ``max_workers`` is 1 (or the machine
        has a single CPU), or when the batch (after cache dedup) holds
        fewer than ``_PARALLEL_MIN_UNIQUE`` requests to actually plan:
        process-pool spin-up costs hundreds of milliseconds, which a
        handful of ~ms planner calls can never amortize (measured nil
        gain — 6.8 serial vs 6.2 req/s parallel on a small host).
        Two situations fall back to a thread pool (the pre-process-pool
        behaviour): sessions with a custom registry, and planners that were
        registered into the global registry at runtime — a worker process
        re-imports :mod:`repro`, so under spawn/forkserver start methods it
        only sees import-time registrations.

        ``chunksize`` overrides the per-worker batch size (default: unique
        requests split roughly 4 ways per worker).
        """
        requests = [self._with_session_params(r) for r in requests]
        if not requests:
            return []
        workers = max_workers if max_workers is not None else os.cpu_count() or 1
        if not parallel or workers <= 1 or len(requests) == 1:
            return [self.plan(request) for request in requests]
        if self.registry is not REGISTRY:
            with ThreadPoolExecutor(max_workers=workers) as executor:
                return list(executor.map(self.plan, requests))
        def chunk_for(count: int) -> int:
            if chunksize is not None:
                return chunksize
            return max(1, math.ceil(count / (workers * 4)))
        if not self._cache_enabled:
            # Mirror the serial no-cache semantics exactly: every request
            # planned independently (no dedup aliasing), no hit/miss stats.
            if len(requests) < _PARALLEL_MIN_UNIQUE:
                return [self.plan(request) for request in requests]
            planned = self._fan_out(requests, workers, chunk_for(len(requests)))
            if planned is None:
                with ThreadPoolExecutor(max_workers=workers) as executor:
                    return list(executor.map(self.plan, requests))
            return planned
        keys = [request.cache_key() for request in requests]
        with self._lock:
            resolved: dict[tuple, Deployment] = {
                key: self._cache[key]
                for key in set(keys)
                if key in self._cache
            }
        pending: dict[tuple, PlanRequest] = {}
        for key, request in zip(keys, requests):
            if key not in resolved and key not in pending:
                pending[key] = request
        if 0 < len(pending) < _PARALLEL_MIN_UNIQUE:
            # Too few unique misses to amortize pool spin-up; the plain
            # serial path replays the cache and keeps hit/miss accounting
            # identical to a cold serial run.
            return [self.plan(request) for request in requests]
        if pending:
            todo = list(pending.values())
            planned = self._fan_out(todo, workers, chunk_for(len(todo)))
            if planned is None:
                with ThreadPoolExecutor(max_workers=workers) as executor:
                    return list(executor.map(self.plan, requests))
            resolved.update(zip(pending, planned))
            with self._lock:
                self._hits += len(requests) - len(pending)
                self._misses += len(pending)
                for key in pending:
                    self._cache.setdefault(key, resolved[key])
        else:
            with self._lock:
                self._hits += len(requests)
        return [resolved[key] for key in keys]

    @staticmethod
    def _fan_out(
        requests: list[PlanRequest], workers: int, chunk: int
    ) -> list[Deployment] | None:
        """Plan ``requests`` on a process pool; None if workers lack planners.

        A child process that cannot resolve a request's planner (it was
        registered at runtime, after import) makes the whole fan-out
        unusable — the caller then retries on threads, where the parent's
        registry is visible.  Any other planning error propagates.
        """
        try:
            with ProcessPoolExecutor(max_workers=workers) as executor:
                return list(
                    executor.map(_plan_request, requests, chunksize=chunk)
                )
        except PlanningError as error:
            # Match the registry's lookup error only ("unknown planner
            # 'name'; ..."), not e.g. "unknown planner options: [...]" —
            # option errors would just fail again on threads.
            if str(error).startswith("unknown planner '"):
                return None
            raise

    def _with_session_params(self, request: PlanRequest) -> PlanRequest:
        """Fill in the session's default params, exactly like :meth:`plan`."""
        if request.params is None and self.params is not None:
            return request.replace(params=self.params)
        return request

    def rank(
        self,
        pool: NodePool,
        app_work: float,
        methods: Sequence[str] | None = None,
        demand: float | None = None,
        options_by_method: Mapping[str, object] | None = None,
        measure: bool = False,
        clients: int = 50,
        duration: float = 10.0,
        seed: int = 0,
    ) -> list[RankedPlan]:
        """Plan one pool with several methods and sort best-first.

        Methods default to every registered non-extension planner except
        the exhaustive reference.  Methods the pool cannot support (e.g.
        ``balanced`` on a tiny pool) are skipped rather than failing the
        whole comparison.  With ``measure=True`` each deployment also runs
        under a fixed client load in the discrete-event simulator and the
        ranking uses the measured rate.
        """
        from repro.core.registry import (
            CAP_EXACT,
            CAP_EXTENSION,
        )

        if methods is None:
            methods = [
                planner.name
                for planner in self.registry
                if not (
                    {CAP_EXACT, CAP_EXTENSION} & planner.capabilities
                )
            ]
        else:
            # Validate names up front: an unknown/misspelled method is an
            # error, not a silently-skipped row.  Only genuine pool-shape
            # failures are skipped in the loop below.
            for method in methods:
                self.registry.get(method)
        options_by_method = options_by_method or {}
        ranked: list[RankedPlan] = []
        for method in methods:
            try:
                deployment = self.plan(
                    pool=pool,
                    app_work=app_work,
                    demand=demand,
                    method=method,
                    options=options_by_method.get(method),
                    seed=seed,
                )
            except PlanningError:
                continue  # pool shape does not admit this method
            measured = None
            if measure:
                from repro.analysis.experiments import run_fixed_load

                result = run_fixed_load(
                    deployment.hierarchy,
                    deployment.params,
                    app_work,
                    clients=clients,
                    duration=duration,
                    seed=seed,
                )
                measured = result.throughput
            ranked.append(
                RankedPlan(
                    method=method,
                    deployment=deployment,
                    predicted=deployment.throughput,
                    measured=measured,
                )
            )
        if not ranked:
            raise PlanningError(
                f"no ranked methods succeeded on this pool "
                f"(tried {list(methods)})"
            )
        ranked.sort(key=lambda entry: entry.throughput, reverse=True)
        return ranked

    def control_run(
        self,
        pool: NodePool,
        app_work: float,
        trace: object,
        policy: str | object = "reactive",
        epochs: int = 30,
        epoch_duration: float = 5.0,
        base_method: str = "heuristic",
        initial_fraction: float = 0.5,
        policy_options: Mapping[str, object] | None = None,
        migration: str = "live",
        seed: int = 0,
        **loop_kwargs: object,
    ):
        """Run the online autoscaling control loop over the simulator.

        Plans an initial deployment for a fraction of ``pool`` with
        ``base_method``, then drives it through ``epochs`` control
        epochs under ``trace`` (a :class:`repro.control.traces.Trace`),
        letting ``policy`` (a registered policy name or a
        :class:`repro.control.policy.ControlPolicy` instance) grow,
        shrink or hold it.  ``migration`` selects how redeploys are
        realized: ``"live"`` (subtree-granular migration inside the
        running simulation) or ``"restart"`` (stop-the-world rebuild).
        Returns the structured
        :class:`repro.control.loop.ControlTimeline`.

        The session's default params and registry apply, so custom
        planners registered here are usable as ``base_method``.  Extra
        keyword arguments go straight to
        :class:`repro.control.loop.ControlLoop` (``cost_model``,
        ``recorder``, ``think_time``, ...).
        """
        from repro.control.loop import ControlLoop

        loop = ControlLoop(
            pool=pool,
            app_work=app_work,
            trace=trace,
            policy=policy,
            params=self.params,
            registry=self.registry,
            epochs=epochs,
            epoch_duration=epoch_duration,
            base_method=base_method,
            initial_fraction=initial_fraction,
            policy_options=dict(policy_options) if policy_options else None,
            migration=migration,
            seed=seed,
            **loop_kwargs,
        )
        return loop.run()

    def control_sweep(
        self,
        pool: NodePool,
        app_work: float,
        traces: Sequence[str],
        policies: Sequence[str] = ("reactive",),
        seeds: Sequence[int] = (0,),
        policy_options: Mapping[str, Mapping[str, object]] | None = None,
        parallel: bool = True,
        max_workers: int | None = None,
        **control_kwargs: object,
    ) -> "list[ControlCell]":
        """Run the (trace, policy, seed) grid of controller runs.

        ``traces`` are :func:`repro.control.traces.from_spec` strings
        (e.g. ``"flash:base=5,peak=60,at=30"`` or a fixture name like
        ``"wikipedia_flash"``) — strings rather than ``Trace`` objects
        so cells pickle into worker processes.  ``policy_options`` maps
        policy names to their option mappings.  Extra keyword arguments
        go to every cell's :class:`~repro.control.loop.ControlLoop`
        (``epochs``, ``epoch_duration``, ``migration``, ...).

        With ``parallel=True`` (the default) the grid fans out in
        chunks over a :class:`~concurrent.futures.ProcessPoolExecutor`,
        exactly like :meth:`plan_many` — controller runs are
        simulation-bound, so separate interpreters are what scales a
        tuning campaign.  Each cell is a pure function of its inputs,
        so results are deterministic and identical with or without
        ``parallel``; the serial path is taken for single-cell grids,
        ``max_workers=1``, single-CPU machines, or sessions with a
        custom registry (which does not transport across processes).

        Pass ``obs=True`` to trace every cell: each run builds its own
        :class:`repro.obs.Obs` (tracers do not transport across
        processes) and the exported JSONL lands on
        :attr:`ControlCell.trace_jsonl` — byte-identical between serial
        and pooled execution of the same grid.  ``obs`` must be a bool
        here; a shared ``Obs`` instance would be cleared by every cell.

        Returns one :class:`ControlCell` per grid point, in
        trace-major, then policy, then seed order.
        """
        from repro.control.policy import make_policy
        from repro.control.traces import from_spec

        if not traces or not policies or not seeds:
            raise PlanningError(
                "control_sweep needs at least one trace, policy and seed"
            )
        if max_workers is not None and max_workers < 1:
            raise PlanningError(
                f"control_sweep needs max_workers >= 1, got {max_workers} "
                "(omit it to use the CPU count)"
            )
        for spec in traces:
            if not isinstance(spec, str):
                raise PlanningError(
                    "control_sweep traces must be from_spec strings "
                    f"(picklable grid cells), got {type(spec).__name__}"
                )
            from_spec(spec)  # validate eagerly, before any fan-out
        policy_options = dict(policy_options or {})
        unknown = sorted(set(policy_options) - set(policies))
        if unknown:
            raise PlanningError(
                f"policy_options given for unswept policies: {unknown}"
            )
        for policy in policies:
            # Validate names and options eagerly too: an unknown policy
            # or a bad option should fail here, not deep inside a worker
            # process with a half-finished grid.
            make_policy(policy, policy_options.get(policy))
        if isinstance(control_kwargs.get("faults"), str):
            # Same eager-validation courtesy for a fault-schedule spec —
            # it stays a string in the cell args (picklable), but a
            # malformed spec fails here, not in a worker.
            from repro.faults import from_spec as fault_spec

            fault_spec(control_kwargs["faults"])
        if not isinstance(control_kwargs.get("obs", False), bool):
            # Tracers are per-run state: a single shared Obs would be
            # cleared by every cell in turn and could not cross process
            # boundaries anyway.  The sweep builds one per cell.
            raise PlanningError(
                "control_sweep obs must be a bool (each cell builds its "
                "own tracer); pass obs=True and read cell.trace_jsonl"
            )
        if isinstance(control_kwargs.get("detection"), str):
            # And for a detection spec ("timeout=0.5,retries=1,..."):
            # malformed timeout grammar fails eagerly, not mid-grid.
            from repro.middleware.detection import parse_detection

            parse_detection(control_kwargs["detection"])
        if "executor" in control_kwargs:
            # Act-stage executors must travel as kind strings: an
            # executor *instance* owns process state (a pool) that
            # neither pickles nor may be shared across cells.
            from repro.control.protocol import EXECUTOR_KINDS

            if control_kwargs["executor"] not in EXECUTOR_KINDS:
                raise PlanningError(
                    "control_sweep executor must be one of "
                    f"{EXECUTOR_KINDS} (a kind string — instances don't "
                    f"pickle), got {control_kwargs['executor']!r}"
                )
        grid = [
            (spec, policy, seed)
            for spec in traces
            for policy in policies
            for seed in seeds
        ]
        cell_args = [
            (
                pool,
                app_work,
                spec,
                policy,
                policy_options.get(policy),
                self.params,
                {**control_kwargs, "seed": seed},
            )
            for spec, policy, seed in grid
        ]
        workers = (
            max_workers if max_workers is not None else os.cpu_count() or 1
        )
        serial = (
            not parallel
            or workers <= 1
            or len(grid) == 1
            or self.registry is not REGISTRY
        )
        if serial:
            # The in-process path goes through control_run, so a custom
            # session registry applies (it cannot transport to workers).
            # Each traced cell still gets a fresh Obs, mirroring what a
            # worker process would build, so serial and pooled sweeps
            # export byte-identical traces.
            from repro.obs import Obs

            traced = bool(control_kwargs.get("obs", False))
            serial_kwargs = {
                k: v for k, v in control_kwargs.items() if k != "obs"
            }
            results = []
            for spec, policy, seed in grid:
                cell_obs = Obs() if traced else None
                timeline = self.control_run(
                    pool,
                    app_work,
                    trace=from_spec(spec),
                    policy=policy,
                    policy_options=policy_options.get(policy),
                    seed=seed,
                    obs=cell_obs,
                    **serial_kwargs,
                )
                results.append((
                    timeline,
                    cell_obs.tracer.to_jsonl() if traced else None,
                ))
        else:
            chunk = max(1, math.ceil(len(grid) / (workers * 4)))
            with ProcessPoolExecutor(max_workers=workers) as executor:
                results = list(
                    executor.map(_control_cell, cell_args, chunksize=chunk)
                )
        return [
            ControlCell(
                trace=spec, policy=policy, seed=seed,
                timeline=timeline, trace_jsonl=trace_jsonl,
            )
            for (spec, policy, seed), (timeline, trace_jsonl)
            in zip(grid, results)
        ]

    # -------------------------------------------------------------- #

    def cache_info(self) -> Mapping[str, int]:
        """``{"hits": ..., "misses": ..., "size": ...}``."""
        with self._lock:
            return {
                "hits": self._hits,
                "misses": self._misses,
                "size": len(self._cache),
            }

    def clear_cache(self) -> None:
        with self._lock:
            self._cache.clear()
            self._hits = 0
            self._misses = 0
