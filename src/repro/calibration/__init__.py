"""Calibration campaigns — the simulated §5.1 measurement methodology.

The paper obtained its Table 3 parameter values by deploying one agent and
one DGEMM server, running 100 serial clients, capturing all traffic with
tcpdump/Ethereal (message sizes), recording per-message processing times
with DIET's statistics module, fitting ``Wrep`` against agent degree with
a linear regression over star deployments (correlation 0.97), and rating
node capacity with a Linpack mini-benchmark.

This package reproduces every step against the simulation substrate:

* :mod:`repro.calibration.capture` — the 1-agent/1-server wire capture;
* :mod:`repro.calibration.fit` — the ``Wrep(d)`` degree sweep + fit;
* :mod:`repro.calibration.linpack` — node capacity rating;
* :mod:`repro.calibration.table3` — the full campaign assembling a
  calibrated :class:`~repro.core.params.ModelParams` and rendering the
  Table 3 report.
"""

from repro.calibration.capture import CaptureResult, run_capture_campaign
from repro.calibration.fit import WrepFit, fit_wrep
from repro.calibration.linpack import measure_mflops
from repro.calibration.table3 import CalibrationResult, calibrate, render_table3

__all__ = [
    "CaptureResult",
    "run_capture_campaign",
    "WrepFit",
    "fit_wrep",
    "measure_mflops",
    "CalibrationResult",
    "calibrate",
    "render_table3",
]
