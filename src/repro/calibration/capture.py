"""The 1-agent/1-server wire-capture campaign.

    "To measure message sizes Sreq and Srep, we deployed an agent and a
    single DGEMM server on the Lyon cluster and then launched 100 clients
    serially from the same cluster.  We collected all network traffic ...
    and analyzed the traffic to measure message sizes."

:func:`run_capture_campaign` does the same on the simulated platform: a
minimal deployment, ``repetitions`` back-to-back requests from a single
serial client, tracing enabled, and post-processing of the trace into
per-message-type size and per-activity processing-time statistics.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.hierarchy import Hierarchy
from repro.core.params import ModelParams
from repro.errors import CalibrationError
from repro.middleware.system import MiddlewareSystem
from repro.sim.engine import Simulator
from repro.sim.trace import TraceRecorder

__all__ = ["CaptureResult", "run_capture_campaign"]


@dataclass(frozen=True)
class CaptureResult:
    """Post-processed wire capture.

    Attributes
    ----------
    message_sizes:
        Mean observed size (Mb) per ``(node_role, message_type)``, e.g.
        ``("agent", "sched_req")``.
    processing_times:
        Mean observed computation duration (s) per ``(node_role, what)``,
        e.g. ``("agent", "merge")`` or ``("server", "prediction")``.
    requests:
        Number of completed requests in the capture.
    trace:
        The raw trace for further analysis.
    """

    message_sizes: dict[tuple[str, str], float]
    processing_times: dict[tuple[str, str], float]
    requests: int
    trace: TraceRecorder = field(repr=False)


def run_capture_campaign(
    params: ModelParams,
    node_power: float = 265.0,
    app_work: float = 2.0,
    repetitions: int = 100,
    seed: int = 0,
) -> CaptureResult:
    """Deploy 1 agent + 1 server, run serial requests, capture everything.

    Parameters
    ----------
    params:
        The (ground-truth) middleware parameters driving the simulation —
        the campaign's job is to *recover* them from observations.
    node_power:
        Power of both nodes (MFlop/s), as rated by the mini-benchmark.
    app_work:
        Service work used during the capture (a small DGEMM).
    repetitions:
        Serial client iterations (the paper used 100).
    """
    if repetitions < 1:
        raise CalibrationError(
            f"repetitions must be >= 1, got {repetitions}"
        )
    hierarchy = Hierarchy()
    hierarchy.set_root("calib-agent", node_power)
    hierarchy.add_server("calib-server", node_power, "calib-agent")

    sim = Simulator()
    trace = TraceRecorder()
    system = MiddlewareSystem(
        sim, hierarchy, params, app_work, trace=trace, seed=seed
    )

    remaining = {"count": repetitions}

    def submit_next() -> None:
        if remaining["count"] <= 0:
            return
        remaining["count"] -= 1
        system.submit("calib-client", on_complete=lambda _req: submit_next())

    submit_next()
    sim.run()
    if system.total_completed() != repetitions:
        raise CalibrationError(
            f"capture completed {system.total_completed()} of "
            f"{repetitions} requests"
        )

    roles = {"calib-agent": "agent", "calib-server": "server"}
    sizes: dict[tuple[str, str], list[float]] = {}
    times: dict[tuple[str, str], list[float]] = {}
    for record in trace:
        role = roles.get(record.node)
        if role is None:
            continue
        if record.kind in ("msg_recv", "msg_sent"):
            key = (role, str(record.detail.get("msg")))
            sizes.setdefault(key, []).append(float(record.detail["size_mb"]))
        elif record.kind == "compute":
            key = (role, str(record.detail.get("what")))
            times.setdefault(key, []).append(float(record.detail["duration"]))

    return CaptureResult(
        message_sizes={k: float(np.mean(v)) for k, v in sizes.items()},
        processing_times={k: float(np.mean(v)) for k, v in times.items()},
        requests=repetitions,
        trace=trace,
    )
