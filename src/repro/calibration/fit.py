"""Fitting the reply-processing cost ``Wrep(d) = Wfix + Wsel * d``.

    "The parameter Wrep depends on the number of children attached to an
    agent.  We measured the time required to process responses for a
    variety of star deployments including an agent and different numbers
    of servers.  A linear data fit provided a very accurate model ... with
    a correlation coefficient of 0.97."

:func:`fit_wrep` repeats that campaign: for each degree ``d`` it deploys a
star with ``d`` servers, runs serial scheduling requests with tracing on,
extracts the agent's reply-merge durations, converts them to MFlop with
the rated node power, and runs a ``scipy.stats.linregress`` over degree.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
from scipy import stats

from repro.core.hierarchy import Hierarchy
from repro.core.params import ModelParams
from repro.errors import CalibrationError
from repro.middleware.system import MiddlewareSystem
from repro.sim.engine import Simulator
from repro.sim.trace import TraceRecorder

__all__ = ["WrepFit", "fit_wrep"]


@dataclass(frozen=True)
class WrepFit:
    """Result of the linear ``Wrep`` fit.

    Attributes
    ----------
    wfix:
        Fitted intercept (MFlop).
    wsel:
        Fitted per-child slope (MFlop).
    r_value:
        Correlation coefficient of the fit (the paper reports 0.97).
    degrees:
        Degrees sampled.
    mean_mflop:
        Mean observed merge cost (MFlop) per sampled degree.
    """

    wfix: float
    wsel: float
    r_value: float
    degrees: tuple[int, ...] = field(repr=False)
    mean_mflop: tuple[float, ...] = field(repr=False)

    def predict(self, degree: int) -> float:
        """Fitted ``Wrep`` at a given degree (MFlop)."""
        return self.wfix + self.wsel * degree


def _measure_merge_cost(
    params: ModelParams,
    node_power: float,
    degree: int,
    repetitions: int,
    seed: int,
) -> float:
    """Mean merge MFlop at one star degree, from traced durations."""
    hierarchy = Hierarchy()
    hierarchy.set_root("fit-agent", node_power)
    for index in range(degree):
        hierarchy.add_server(f"fit-server-{index:03d}", node_power, "fit-agent")

    sim = Simulator()
    trace = TraceRecorder()
    # Scheduling-only traffic: app_work is irrelevant but must be positive.
    system = MiddlewareSystem(
        sim, hierarchy, params, app_work=1.0, trace=trace, seed=seed
    )

    remaining = {"count": repetitions}

    def submit_next() -> None:
        if remaining["count"] <= 0:
            return
        remaining["count"] -= 1
        system.submit_schedule_only(
            "fit-client", on_scheduled=lambda _req: submit_next()
        )

    submit_next()
    sim.run()

    durations = [
        float(record.detail["duration"])
        for record in trace.by_node("fit-agent")
        if record.kind == "compute" and record.detail.get("what") == "merge"
    ]
    if len(durations) != repetitions:
        raise CalibrationError(
            f"degree {degree}: expected {repetitions} merge samples, "
            f"got {len(durations)}"
        )
    return float(np.mean(durations)) * node_power


def fit_wrep(
    params: ModelParams,
    node_power: float = 265.0,
    degrees: tuple[int, ...] = (1, 2, 4, 8, 12, 16, 24, 32),
    repetitions: int = 20,
    seed: int = 0,
) -> WrepFit:
    """Run the star-degree sweep and fit ``Wrep(d)``.

    Raises
    ------
    CalibrationError
        If fewer than two degrees are sampled or any sweep loses samples.
    """
    if len(degrees) < 2:
        raise CalibrationError(
            f"need >= 2 degrees for a linear fit, got {degrees}"
        )
    if any(d < 1 for d in degrees):
        raise CalibrationError(f"degrees must be >= 1, got {degrees}")
    means = [
        _measure_merge_cost(params, node_power, degree, repetitions, seed)
        for degree in degrees
    ]
    result = stats.linregress(np.asarray(degrees, dtype=float), np.asarray(means))
    return WrepFit(
        wfix=float(result.intercept),
        wsel=float(result.slope),
        r_value=float(result.rvalue),
        degrees=tuple(degrees),
        mean_mflop=tuple(means),
    )
