"""Node capacity rating — the Linpack mini-benchmark step.

    "we measured the capacity of our test machines in MFlops using a
    mini-benchmark extracted from Linpack and this value is used to
    convert all measured times to estimates of the MFlops required."

On the simulated platform a node's true power is known, so the
mini-benchmark is a thin veneer over :mod:`repro.platforms.rating` —
kept as a distinct calibration step so campaigns read like the paper's
methodology, and so rating noise can be injected when studying the
planner's robustness to capacity mis-measurement.
"""

from __future__ import annotations

from repro.platforms.node import Node
from repro.platforms.pool import NodePool
from repro.platforms.rating import rate_node, rate_pool

__all__ = ["measure_mflops", "rate_platform"]


def measure_mflops(
    node: Node,
    noise: float = 0.0,
    trials: int = 3,
    seed: int = 0,
) -> float:
    """Rated capacity of one node in MFlop/s (best of ``trials`` runs)."""
    return rate_node(node, noise=noise, trials=trials, seed=seed)


def rate_platform(
    pool: NodePool,
    noise: float = 0.0,
    trials: int = 3,
    seed: int = 0,
) -> NodePool:
    """Rate every node of a pool; returns the pool the planner should see."""
    return rate_pool(pool, noise=noise, trials=trials, seed=seed)
