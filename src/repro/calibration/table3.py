"""The full calibration campaign — regenerating Table 3.

:func:`calibrate` chains every §5.1 measurement step:

1. wire capture on a 1-agent/1-server deployment (message sizes,
   ``Wreq``, ``Wpre``);
2. star-degree sweep + linear fit for ``Wrep(d) = Wfix + Wsel*d``;
3. Linpack-style node rating (converts times to MFlop).

and assembles a calibrated :class:`~repro.core.params.ModelParams`.
:func:`render_table3` prints the result in the paper's Table 3 layout,
next to the ground-truth values the simulation ran with — the campaign's
acceptance test is recovering them.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.report import ascii_table
from repro.calibration.capture import CaptureResult, run_capture_campaign
from repro.calibration.fit import WrepFit, fit_wrep
from repro.calibration.linpack import measure_mflops
from repro.core.params import LevelSizes, ModelParams
from repro.errors import CalibrationError
from repro.platforms.node import Node

__all__ = ["CalibrationResult", "calibrate", "render_table3"]


@dataclass(frozen=True)
class CalibrationResult:
    """A calibrated parameter set plus campaign evidence."""

    params: ModelParams
    capture: CaptureResult
    wrep_fit: WrepFit
    rated_power: float

    @property
    def fit_quality(self) -> float:
        """Correlation coefficient of the Wrep fit (paper: 0.97)."""
        return self.wrep_fit.r_value


def calibrate(
    true_params: ModelParams,
    node: Node | None = None,
    capture_repetitions: int = 100,
    fit_degrees: tuple[int, ...] = (1, 2, 4, 8, 12, 16, 24, 32),
    fit_repetitions: int = 20,
    rating_noise: float = 0.0,
    seed: int = 0,
) -> CalibrationResult:
    """Run the full campaign against a platform driven by ``true_params``.

    Parameters
    ----------
    true_params:
        Ground truth the simulated middleware runs with; the campaign
        only observes traffic and timings, never these values directly.
    node:
        The machine the campaign runs on (defaults to a 265 MFlop/s node,
        the ballpark of the paper's Lyon machines under the mini-benchmark).
    rating_noise:
        Mini-benchmark noise; non-zero values study calibration
        robustness.
    """
    node = node if node is not None else Node(power=265.0, name="calib-node")
    rated_power = measure_mflops(node, noise=rating_noise, seed=seed)

    capture = run_capture_campaign(
        true_params,
        node_power=rated_power,
        repetitions=capture_repetitions,
        seed=seed,
    )
    wrep = fit_wrep(
        true_params,
        node_power=rated_power,
        degrees=fit_degrees,
        repetitions=fit_repetitions,
        seed=seed,
    )

    try:
        agent_sizes = LevelSizes(
            sreq=capture.message_sizes[("agent", "sched_req")],
            srep=capture.message_sizes[("agent", "sched_rep")],
        )
        server_sizes = LevelSizes(
            sreq=capture.message_sizes[("server", "sched_req")],
            srep=capture.message_sizes[("server", "sched_rep")],
        )
        wreq = (
            capture.processing_times[("agent", "request_processing")]
            * rated_power
        )
        wpre = capture.processing_times[("server", "prediction")] * rated_power
    except KeyError as exc:
        raise CalibrationError(
            f"capture is missing an expected observation: {exc}"
        ) from exc

    params = ModelParams(
        wreq=wreq,
        wfix=wrep.wfix,
        wsel=wrep.wsel,
        wpre=wpre,
        agent_sizes=agent_sizes,
        server_sizes=server_sizes,
        bandwidth=true_params.bandwidth,
    )
    return CalibrationResult(
        params=params,
        capture=capture,
        wrep_fit=wrep,
        rated_power=rated_power,
    )


def render_table3(
    result: CalibrationResult, reference: ModelParams | None = None
) -> str:
    """Render the calibrated values in the paper's Table 3 layout.

    With ``reference`` given (the ground truth), a second row pair shows
    it for comparison.
    """
    params = result.params

    def agent_row(tag: str, p: ModelParams) -> list[str]:
        return [
            f"Agent{tag}",
            f"{p.wreq:.3g}",
            f"{p.wfix:.3g} + {p.wsel:.3g}*d",
            "-",
            f"{p.agent_sizes.srep:.3g}",
            f"{p.agent_sizes.sreq:.3g}",
        ]

    def server_row(tag: str, p: ModelParams) -> list[str]:
        return [
            f"Server{tag}",
            "-",
            "-",
            f"{p.wpre:.3g}",
            f"{p.server_sizes.srep:.3g}",
            f"{p.server_sizes.sreq:.3g}",
        ]

    rows = [agent_row(" (calibrated)", params), server_row(" (calibrated)", params)]
    if reference is not None:
        rows.append(agent_row(" (ground truth)", reference))
        rows.append(server_row(" (ground truth)", reference))
    table = ascii_table(
        headers=[
            "DIET element",
            "Wreq (MFlop)",
            "Wrep (MFlop)",
            "Wpre (MFlop)",
            "Srep (Mb)",
            "Sreq (Mb)",
        ],
        rows=rows,
        title=(
            "Table 3: parameter values for middleware deployment "
            f"(Wrep fit r = {result.fit_quality:.4f}, "
            f"rated power = {result.rated_power:.1f} MFlop/s)"
        ),
    )
    return table
