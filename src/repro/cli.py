"""Command-line interface: ``repro-deploy``.

Subcommands mirror the paper's workflow:

* ``plan``      — plan a deployment for a node pool and write the GoDIET
  XML (Algorithm 1 end-to-end);
* ``predict``   — evaluate a plan's model throughput (Eq. 16);
* ``simulate``  — launch a plan on the simulated platform and measure its
  sustained throughput under a client ramp (§5.1 protocol);
* ``compare``   — rank planning methods on one pool (the Figure 6/7
  experiment in miniature, via :meth:`PlanningSession.rank`);
* ``improve``   — iteratively remove bottlenecks from a deployed plan
  using spare nodes (the prior-work mechanism in
  :mod:`repro.extensions.redeploy`);
* ``control``   — run the online autoscaling control loop: a deployment
  under a time-varying workload trace, adapted epoch by epoch by a
  registered policy (:mod:`repro.control`) with live subtree migration,
  concurrent wave-parallel drains, or stop-the-world restarts
  (``--migration``); ``--sweep`` fans a (trace x policy x seed) grid
  over a process pool;
* ``trace``     — run one traced control loop and export its
  deterministic Chrome trace-event file (plus optional per-epoch
  metrics JSONL) via :mod:`repro.obs`, for chrome://tracing or
  ui.perfetto.dev;
* ``planners``  — list every registered planner, its capabilities and
  its typed options;
* ``calibrate`` — run the §5.1 calibration campaign and print Table 3.

``plan --method`` choices come straight from the planner registry, so
extension and third-party planners appear automatically; planner options
are passed as repeatable ``--opt key=value`` flags and validated against
the planner's typed option dataclass.

Pool specification flags are shared: ``--nodes/--power`` builds a
homogeneous pool, ``--powers`` an explicit heterogeneous one, ``--random``
a seeded uniform pool, and ``--heterogenize`` applies the §5.3
background-load treatment.
"""

from __future__ import annotations

import argparse
import dataclasses
import sys
from pathlib import Path

from repro.analysis.report import ascii_table, format_rate
from repro.api import PlanningSession
from repro.calibration.table3 import calibrate, render_table3
from repro.control.policy import MIGRATION_MODES, available_policies
from repro.control.protocol import EXECUTOR_KINDS
from repro.core.params import DEFAULT_PARAMS
from repro.core.registry import REGISTRY
from repro.deploy.godiet import GoDIET
from repro.deploy.plan import DeploymentPlan
from repro.deploy.xml_io import plan_from_xml, plan_to_xml
from repro.errors import ReproError
from repro.platforms.background import heterogenize
from repro.platforms.pool import NodePool
from repro.units import dgemm_mflop
from repro.workloads.loadgen import ClientRamp

__all__ = ["main", "build_parser"]


def _add_pool_args(parser: argparse.ArgumentParser) -> None:
    group = parser.add_argument_group("pool specification")
    group.add_argument("--nodes", type=int, help="homogeneous pool size")
    group.add_argument(
        "--power", type=float, default=265.0,
        help="homogeneous node power in MFlop/s (default 265)",
    )
    group.add_argument(
        "--powers", type=str,
        help="comma-separated per-node powers (heterogeneous pool)",
    )
    group.add_argument(
        "--random", type=int, metavar="N",
        help="random pool of N nodes with powers in [--low, --high]",
    )
    group.add_argument("--low", type=float, default=50.0)
    group.add_argument("--high", type=float, default=400.0)
    group.add_argument("--seed", type=int, default=0)
    group.add_argument(
        "--heterogenize", type=float, metavar="FRACTION",
        help="degrade FRACTION of the nodes with background matrix "
        "products (the paper's §5.3 treatment)",
    )


def _add_workload_args(parser: argparse.ArgumentParser) -> None:
    group = parser.add_argument_group("workload")
    group.add_argument(
        "--dgemm", type=int, metavar="N",
        help="square DGEMM dimension (Wapp = 2*N^3 flops)",
    )
    group.add_argument(
        "--app-work", type=float, metavar="MFLOP",
        help="explicit Wapp in MFlop (overrides --dgemm)",
    )


def _pool_from_args(
    args: argparse.Namespace, prefix: str = "node"
) -> NodePool:
    if args.powers is not None:
        powers = [float(p) for p in args.powers.split(",") if p.strip()]
        if not powers:
            raise ReproError("--powers must list at least one node power")
        pool = NodePool.heterogeneous(powers, prefix=prefix)
    elif args.random is not None:
        if args.random <= 0:
            raise ReproError(
                f"pool size must be positive, got --random {args.random}"
            )
        pool = NodePool.uniform_random(
            args.random, low=args.low, high=args.high, seed=args.seed,
            prefix=prefix,
        )
    elif args.nodes is not None:
        if args.nodes <= 0:
            raise ReproError(
                f"pool size must be positive, got --nodes {args.nodes}"
            )
        pool = NodePool.homogeneous(args.nodes, args.power, prefix=prefix)
    else:
        raise ReproError(
            "specify a pool with --nodes, --powers or --random"
        )
    if args.heterogenize is not None:
        pool = heterogenize(
            pool, loaded_fraction=args.heterogenize, seed=args.seed
        )
    return pool


def _app_work_from_args(args: argparse.Namespace) -> float:
    if args.app_work is not None:
        return args.app_work
    if args.dgemm is not None:
        return dgemm_mflop(args.dgemm)
    raise ReproError("specify a workload with --dgemm or --app-work")


def _options_from_args(
    args: argparse.Namespace, attribute: str = "opt", flag: str = "--opt"
) -> dict[str, str] | None:
    """Parse repeatable ``key=value`` flags (``--opt``, ``--policy-opt``)."""
    items = getattr(args, attribute, None)
    if not items:
        return None
    options: dict[str, str] = {}
    for item in items:
        key, separator, value = item.partition("=")
        if not separator or not key:
            raise ReproError(
                f"{flag} expects key=value, got {item!r}"
            )
        options[key.strip().replace("-", "_")] = value.strip()
    return options


# ---------------------------------------------------------------------- #
# subcommands


def _cmd_plan(args: argparse.Namespace) -> int:
    pool = _pool_from_args(args)
    app_work = _app_work_from_args(args)
    session = PlanningSession()
    deployment = session.plan(
        pool=pool,
        app_work=app_work,
        demand=args.demand,
        method=args.method,
        options=_options_from_args(args),
        seed=args.seed,
    )
    plan = DeploymentPlan(
        hierarchy=deployment.hierarchy,
        params=deployment.params,
        app_work=app_work,
        method=deployment.method,
        metadata={"pool": pool.describe()},
    )
    print(plan.describe())
    if args.output:
        Path(args.output).write_text(plan_to_xml(plan))
        print(f"plan written to {args.output}")
    if args.show_tree:
        print(deployment.hierarchy.describe())
    return 0


def _cmd_predict(args: argparse.Namespace) -> int:
    plan = plan_from_xml(Path(args.plan).read_text())
    from repro.core.throughput import hierarchy_throughput

    report = hierarchy_throughput(plan.hierarchy, plan.params, plan.app_work)
    print(plan.describe())
    print(
        f"rho = {format_rate(report.throughput)} req/s "
        f"({report.bottleneck}-bound; sched={format_rate(report.sched)}, "
        f"service={format_rate(report.service)}; "
        f"limiting node = {report.limiting_node})"
    )
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    plan = plan_from_xml(Path(args.plan).read_text())
    platform = GoDIET(seed=args.seed).launch(plan)
    ramp = ClientRamp(
        client_interval=args.client_interval,
        max_clients=args.max_clients,
        hold_duration=args.hold,
    )
    result = ramp.run(platform.system)
    print(plan.describe())
    print(
        f"measured max sustained throughput: "
        f"{format_rate(result.max_sustained)} req/s with "
        f"{result.clients_at_peak} clients "
        f"(predicted {format_rate(plan.predicted_throughput)} req/s)"
    )
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    pool = _pool_from_args(args)
    app_work = _app_work_from_args(args)
    session = PlanningSession()
    methods = tuple(
        m.strip() for m in args.methods.split(",") if m.strip()
    ) if args.methods else ("heuristic", "star", "balanced")
    ranked = session.rank(
        pool,
        app_work,
        methods=methods,
        measure=True,
        clients=args.clients,
        duration=args.duration,
        seed=args.seed,
    )
    print(
        ascii_table(
            headers=[
                "method", "nodes", "agents", "servers", "height",
                "predicted", "measured",
            ],
            rows=[
                [
                    entry.method, *entry.shape,
                    format_rate(entry.predicted),
                    format_rate(entry.measured or 0.0),
                ]
                for entry in ranked
            ],
            title=f"Deployment comparison on {pool.describe()}",
        )
    )
    return 0


def _cmd_improve(args: argparse.Namespace) -> int:
    from repro.extensions.redeploy import improve_deployment

    plan = plan_from_xml(Path(args.plan).read_text())
    has_pool_flags = (
        args.nodes is not None
        or args.powers is not None
        or args.random is not None
    )
    spares = (
        list(_pool_from_args(args, prefix=args.spare_prefix))
        if has_pool_flags
        else []
    )
    result = improve_deployment(
        plan.hierarchy,
        spares,
        plan.params,
        plan.app_work,
        max_iterations=args.max_iterations,
    )
    if result.actions:
        print(
            ascii_table(
                headers=["step", "move", "node", "target", "rho before",
                         "rho after"],
                rows=[
                    [
                        index + 1, action.move, action.node, action.target,
                        format_rate(action.throughput_before),
                        format_rate(action.throughput_after),
                    ]
                    for index, action in enumerate(result.actions)
                ],
                title=f"Improvement plan for {args.plan}",
            )
        )
    else:
        print("no improving move found; the deployment is already tight")
    print(
        f"throughput {format_rate(result.initial_throughput)} -> "
        f"{format_rate(result.final_throughput)} req/s "
        f"({result.improvement_factor:.2f}x), "
        f"{len(result.spares_left)} spare(s) left"
    )
    if args.output:
        improved = DeploymentPlan(
            hierarchy=result.hierarchy,
            params=plan.params,
            app_work=plan.app_work,
            method=f"{plan.method}+improve",
            metadata=dict(plan.metadata),
        )
        Path(args.output).write_text(plan_to_xml(improved))
        print(f"improved plan written to {args.output}")
    if args.show_tree:
        print(result.hierarchy.describe())
    return 0


def _sweep_policy_options(
    policies: tuple[str, ...], options: dict[str, str] | None
) -> dict[str, dict[str, str]] | None:
    """Distribute ``--policy-opt`` flags across the swept policies.

    Each option goes to every policy that accepts it (e.g.
    ``hysteresis=1`` tunes ``reactive`` without breaking ``hold``,
    which takes no options); an option no swept policy accepts is an
    error, not a silent drop.
    """
    from repro.control.policy import accepted_options

    if not options:
        return None
    per_policy: dict[str, dict[str, str]] = {}
    claimed: set[str] = set()
    for policy in policies:
        accepted = accepted_options(policy)
        chosen = {
            key: value
            for key, value in options.items()
            if accepted is None or key in accepted
        }
        claimed.update(chosen)
        if chosen:
            per_policy[policy] = chosen
    orphaned = sorted(set(options) - claimed)
    if orphaned:
        raise ReproError(
            f"--policy-opt {orphaned} not accepted by any swept policy "
            f"({', '.join(policies)})"
        )
    return per_policy or None


def _cmd_control(args: argparse.Namespace) -> int:
    from repro.analysis.report import render_timeline
    from repro.control.traces import from_spec

    pool = _pool_from_args(args)
    app_work = _app_work_from_args(args)
    policy_options = _options_from_args(
        args, attribute="policy_opt", flag="--policy-opt"
    )
    session = PlanningSession()
    if args.sweep:
        policies = tuple(
            p.strip() for p in args.policies.split(",") if p.strip()
        ) or (args.policy,)
        try:
            seeds = tuple(
                int(s) for s in args.seeds.split(",") if s.strip()
            ) or (args.seed,)
        except ValueError as exc:
            raise ReproError(
                f"--seeds expects comma-separated integers, "
                f"got {args.seeds!r}: {exc}"
            ) from exc
        cells = session.control_sweep(
            pool,
            app_work,
            traces=tuple(args.trace),
            policies=policies,
            seeds=seeds,
            policy_options=_sweep_policy_options(policies, policy_options),
            max_workers=args.workers,
            epochs=args.epochs,
            epoch_duration=args.epoch_duration,
            base_method=args.base_method,
            initial_fraction=args.initial_fraction,
            migration=args.migration,
            think_time=args.think_time,
            executor=args.executor,
            executor_workers=args.executor_workers,
            **({"faults": args.faults} if args.faults else {}),
            **({"detection": args.detection} if args.detection else {}),
        )
        print(
            ascii_table(
                headers=[
                    "trace", "policy", "seed", "served", "mean req/s",
                    "redeploys", "downtime s", "final nodes",
                ],
                rows=[
                    [
                        cell.trace,
                        cell.policy,
                        cell.seed,
                        cell.timeline.total_served,
                        f"{cell.timeline.mean_served_rate:.1f}",
                        cell.timeline.redeploys,
                        f"{cell.timeline.migration_downtime:.2f}",
                        cell.timeline.final_shape[0],
                    ]
                    for cell in cells
                ],
                title=(
                    f"Control sweep ({len(cells)} cells, "
                    f"{args.migration} migration) on {pool.describe()}"
                ),
            )
        )
        return 0
    if len(args.trace) != 1:
        raise ReproError(
            "multiple --trace flags require --sweep; "
            "a single run takes exactly one trace"
        )
    timeline = session.control_run(
        pool,
        app_work,
        trace=from_spec(args.trace[0]),
        policy=args.policy,
        epochs=args.epochs,
        epoch_duration=args.epoch_duration,
        base_method=args.base_method,
        initial_fraction=args.initial_fraction,
        policy_options=policy_options,
        migration=args.migration,
        think_time=args.think_time,
        seed=args.seed,
        faults=args.faults,
        executor=args.executor,
        executor_workers=args.executor_workers,
        **({"detection": args.detection} if args.detection else {}),
    )
    print(render_timeline(timeline))
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    import json

    from repro.control.traces import from_spec
    from repro.obs import Obs

    pool = _pool_from_args(args)
    app_work = _app_work_from_args(args)
    obs = Obs()
    session = PlanningSession()
    timeline = session.control_run(
        pool,
        app_work,
        trace=from_spec(args.trace[0] if isinstance(args.trace, list)
                        else args.trace),
        policy=args.policy,
        epochs=args.epochs,
        epoch_duration=args.epoch_duration,
        migration=args.migration,
        seed=args.seed,
        obs=obs,
        executor=args.executor,
        executor_workers=args.executor_workers,
        **({"faults": args.faults} if args.faults else {}),
        **({"detection": args.detection} if args.detection else {}),
    )
    output = Path(args.output)
    output.write_text(obs.tracer.to_chrome(), encoding="utf-8")
    lines = []
    if args.metrics_output:
        for record in timeline.records:
            payload = {"epoch": record.index, "t": record.start}
            payload.update(record.metrics.as_dict())
            lines.append(
                json.dumps(payload, sort_keys=True, separators=(",", ":"))
            )
        Path(args.metrics_output).write_text(
            "\n".join(lines) + "\n", encoding="utf-8"
        )
    spans = len(obs.tracer.spans())
    events = len(obs.tracer.events())
    print(
        f"wrote {output} ({spans} spans, {events} events, "
        f"{len(obs.tracer)} records) — load it at chrome://tracing "
        "or https://ui.perfetto.dev"
    )
    if args.metrics_output:
        print(
            f"wrote {args.metrics_output} "
            f"({len(lines)} per-epoch metric snapshots)"
        )
    print(timeline.describe())
    return 0


def _cmd_planners(args: argparse.Namespace) -> int:
    rows = []
    for planner in REGISTRY:
        fields = dataclasses.fields(planner.options_type)
        options = ", ".join(
            f"{f.name}={f.default!r}"
            if f.default is not dataclasses.MISSING
            else f.name
            for f in fields
        ) or "-"
        rows.append(
            [
                planner.name,
                ", ".join(sorted(planner.capabilities)),
                planner.options_type.__name__,
                options,
            ]
        )
    print(
        ascii_table(
            headers=["planner", "capabilities", "options type", "options"],
            rows=rows,
            title="Registered planners (repro-deploy plan --method NAME "
            "--opt key=value)",
        )
    )
    return 0


def _cmd_calibrate(args: argparse.Namespace) -> int:
    result = calibrate(
        DEFAULT_PARAMS,
        capture_repetitions=args.repetitions,
        seed=args.seed,
    )
    print(render_table3(result, reference=DEFAULT_PARAMS))
    return 0


# ---------------------------------------------------------------------- #


def build_parser() -> argparse.ArgumentParser:
    """Construct the ``repro-deploy`` argument parser (all subcommands)."""
    parser = argparse.ArgumentParser(
        prog="repro-deploy",
        description=(
            "Automatic middleware deployment planning on heterogeneous "
            "platforms (Caron, Chouhan, Desprez 2008) — reproduction CLI"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_plan = sub.add_parser("plan", help="plan a deployment for a pool")
    _add_pool_args(p_plan)
    _add_workload_args(p_plan)
    p_plan.add_argument("--demand", type=float, help="client demand (req/s)")
    p_plan.add_argument(
        "--method", choices=REGISTRY.available(), default="heuristic",
        help="planner name (see `repro-deploy planners`)",
    )
    p_plan.add_argument(
        "--opt", action="append", metavar="KEY=VALUE",
        help="planner option (repeatable); validated against the "
        "planner's typed options",
    )
    p_plan.add_argument("--output", type=str, help="write plan XML here")
    p_plan.add_argument(
        "--show-tree", action="store_true", help="print the hierarchy"
    )
    p_plan.set_defaults(func=_cmd_plan)

    p_predict = sub.add_parser("predict", help="model throughput of a plan")
    p_predict.add_argument("plan", type=str, help="plan XML file")
    p_predict.set_defaults(func=_cmd_predict)

    p_sim = sub.add_parser("simulate", help="measure a plan in the DES")
    p_sim.add_argument("plan", type=str, help="plan XML file")
    p_sim.add_argument("--client-interval", type=float, default=0.2)
    p_sim.add_argument("--max-clients", type=int, default=400)
    p_sim.add_argument("--hold", type=float, default=15.0)
    p_sim.add_argument("--seed", type=int, default=0)
    p_sim.set_defaults(func=_cmd_simulate)

    p_cmp = sub.add_parser(
        "compare", help="rank planning methods on one pool"
    )
    _add_pool_args(p_cmp)
    _add_workload_args(p_cmp)
    p_cmp.add_argument(
        "--methods", type=str,
        help="comma-separated planner names "
        "(default heuristic,star,balanced)",
    )
    p_cmp.add_argument("--clients", type=int, default=100)
    p_cmp.add_argument("--duration", type=float, default=15.0)
    p_cmp.set_defaults(func=_cmd_compare)

    p_improve = sub.add_parser(
        "improve",
        help="iteratively remove bottlenecks from a deployed plan",
    )
    p_improve.add_argument("plan", type=str, help="plan XML file")
    _add_pool_args(p_improve)
    p_improve.add_argument(
        "--spare-prefix", type=str, default="spare",
        help="name prefix for the spare pool (avoids collisions with "
        "deployed node names; default 'spare')",
    )
    p_improve.add_argument(
        "--max-iterations", type=int, default=100,
        help="improvement step budget (default 100)",
    )
    p_improve.add_argument(
        "--output", type=str, help="write the improved plan XML here"
    )
    p_improve.add_argument(
        "--show-tree", action="store_true", help="print the improved tree"
    )
    p_improve.set_defaults(func=_cmd_improve)

    p_control = sub.add_parser(
        "control", help="run the online autoscaling control loop"
    )
    _add_pool_args(p_control)
    _add_workload_args(p_control)
    p_control.add_argument(
        "--trace", type=str, required=True, action="append",
        help="workload trace spec, e.g. 'flash:base=5,peak=60,at=30', "
        "'diurnal:base=5,peak=40,period=120' or a fixture name like "
        "'wikipedia_flash' (types: constant, ramp, diurnal, burst, "
        "flash, piecewise, fixture); repeatable with --sweep",
    )
    p_control.add_argument(
        "--policy", choices=available_policies(), default="reactive",
        help="autoscaling policy (default reactive)",
    )
    p_control.add_argument(
        "--policy-opt", action="append", metavar="KEY=VALUE",
        help="policy option (repeatable), e.g. hysteresis=1",
    )
    p_control.add_argument(
        "--migration", choices=MIGRATION_MODES, default="live",
        help="redeploy mechanism: live subtree migration (default), "
        "concurrent wave-parallel drains, or stop-the-world restart",
    )
    p_control.add_argument(
        "--executor", choices=EXECUTOR_KINDS, default="inline",
        help="act-stage executor: inline direct apply (default), "
        "local in-process daemons over the wire protocol, or pool "
        "per-region daemon processes — the timeline is bit-identical "
        "across all three",
    )
    p_control.add_argument(
        "--executor-workers", type=int, default=None, metavar="N",
        help="process count for --executor pool (default: pool default)",
    )
    p_control.add_argument(
        "--sweep", action="store_true",
        help="run the (trace x policy x seed) grid over a process pool "
        "and print one summary row per cell",
    )
    p_control.add_argument(
        "--policies", type=str, default="",
        help="comma-separated policy names for --sweep "
        "(default: the --policy value)",
    )
    p_control.add_argument(
        "--seeds", type=str, default="",
        help="comma-separated seeds for --sweep (default: the --seed "
        "value)",
    )
    p_control.add_argument(
        "--workers", type=int, default=None,
        help="process-pool size for --sweep (default: CPU count)",
    )
    p_control.add_argument(
        "--epochs", type=int, default=30,
        help="number of control epochs (default 30)",
    )
    p_control.add_argument(
        "--epoch-duration", type=float, default=5.0,
        help="simulated seconds per epoch (default 5)",
    )
    p_control.add_argument(
        "--base-method", choices=REGISTRY.available(), default="heuristic",
        help="planner for the initial deployment and replans",
    )
    p_control.add_argument(
        "--initial-fraction", type=float, default=0.5,
        help="fraction of the pool deployed initially (default 0.5)",
    )
    p_control.add_argument(
        "--think-time", type=float, default=0.0,
        help="client think time between requests (default 0)",
    )
    p_control.add_argument(
        "--faults", type=str, default=None, metavar="SPEC",
        help="fault schedule injected into the run, e.g. "
        "'crash:target=busiest-child,at=45' or "
        "'degrade:target=node-3,at=20,factor=0.25;"
        "heal:target=node-3,at=60' (kinds: crash, degrade, partition, "
        "heal, storm, subtree-storm; targets: node names or "
        "busiest-child / busiest-server)",
    )
    p_control.add_argument(
        "--detection", type=str, default=None, metavar="SPEC",
        help="switch from oracle health to timeout-modelled failure "
        "detection, e.g. 'timeout=0.5,retries=1,backoff=2,threshold=3,"
        "grace=2,reserve=0.2' — faults land silently, agents watch "
        "their children with retry ladders, and the controller only "
        "acts on suspicions the grace window confirms (reserve= holds "
        "that fraction of the pool back from scale-ups for repairs)",
    )
    p_control.set_defaults(func=_cmd_control)

    p_trace = sub.add_parser(
        "trace",
        help="run one traced control loop and export a Chrome trace",
    )
    _add_pool_args(p_trace)
    _add_workload_args(p_trace)
    p_trace.add_argument(
        "--trace", type=str, required=True,
        help="workload trace spec (same grammar as 'control --trace')",
    )
    p_trace.add_argument(
        "--policy", choices=available_policies(), default="reactive",
        help="autoscaling policy (default reactive)",
    )
    p_trace.add_argument(
        "--migration", choices=MIGRATION_MODES, default="live",
        help="redeploy mechanism (default live)",
    )
    p_trace.add_argument(
        "--executor", choices=EXECUTOR_KINDS, default="inline",
        help="act-stage executor (same choices as 'control "
        "--executor'); local/pool add per-region command/ack spans "
        "to the exported trace",
    )
    p_trace.add_argument(
        "--executor-workers", type=int, default=None, metavar="N",
        help="process count for --executor pool (default: pool default)",
    )
    p_trace.add_argument(
        "--epochs", type=int, default=30,
        help="number of control epochs (default 30)",
    )
    p_trace.add_argument(
        "--epoch-duration", type=float, default=5.0,
        help="simulated seconds per epoch (default 5)",
    )
    p_trace.add_argument(
        "--faults", type=str, default=None, metavar="SPEC",
        help="fault schedule spec (same grammar as 'control --faults')",
    )
    p_trace.add_argument(
        "--detection", type=str, default=None, metavar="SPEC",
        help="timeout-modelled detection spec (same grammar as "
        "'control --detection')",
    )
    p_trace.add_argument(
        "--output", type=str, default="trace.json", metavar="FILE",
        help="Chrome trace-event JSON output (default trace.json; "
        "open in chrome://tracing or ui.perfetto.dev)",
    )
    p_trace.add_argument(
        "--metrics-output", type=str, default=None, metavar="FILE",
        help="also write one JSON line of frozen metrics per epoch",
    )
    p_trace.set_defaults(func=_cmd_trace)

    p_list = sub.add_parser(
        "planners", help="list registered planners and their options"
    )
    p_list.set_defaults(func=_cmd_planners)

    p_cal = sub.add_parser("calibrate", help="run the Table 3 campaign")
    p_cal.add_argument("--repetitions", type=int, default=100)
    p_cal.add_argument("--seed", type=int, default=0)
    p_cal.set_defaults(func=_cmd_calibrate)

    return parser


def main(argv: list[str] | None = None) -> int:
    """Entry point: parse arguments, dispatch, map ReproError to exit 2."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
