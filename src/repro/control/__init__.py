"""Online control plane: traces, monitoring, policies, the control loop.

The paper plans a deployment once, for a fixed client population; its
prior-work mechanism (:mod:`repro.extensions.redeploy`) improves a
running deployment.  This package closes the loop between them: a
:class:`~repro.control.loop.ControlLoop` runs a deployment inside the
discrete-event simulator under a time-varying workload
(:mod:`repro.control.traces`), observes it
(:mod:`repro.control.monitor`), and adapts it on a rolling horizon
through pluggable policies (:mod:`repro.control.policy`) that choose
between in-place improvement and full replans — the monitor → decide →
act architecture of production middleware control planes.

Entry points: :meth:`repro.api.PlanningSession.control_run`, the
``repro-deploy control`` CLI subcommand, and :class:`ControlLoop`
directly.
"""

import importlib

# Lazy re-exports (PEP 562): importing repro.control (or one of its
# light submodules, e.g. repro.control.policy for the CLI's --policy
# choices) must not drag in the loop/monitor/middleware/sim stack.
# Each public name resolves to its defining submodule on first access.
_EXPORTS = {
    "ControlLoop": "repro.control.loop",
    "ControlTimeline": "repro.control.loop",
    "EpochRecord": "repro.control.loop",
    "MigrationStepRecord": "repro.control.loop",
    "SLOMonitor": "repro.control.monitor",
    "WindowObservation": "repro.control.monitor",
    "MIGRATION_MODES": "repro.control.policy",
    "PROTOCOL_VERSION": "repro.control.protocol",
    "EXECUTOR_KINDS": "repro.control.protocol",
    "MigrationCommand": "repro.control.protocol",
    "RegionReport": "repro.control.protocol",
    "plan_commands": "repro.control.protocol",
    "commands_to_plan": "repro.control.protocol",
    "parse_command": "repro.control.protocol",
    "parse_report": "repro.control.protocol",
    "execute_command": "repro.control.protocol",
    "InProcessExecutor": "repro.control.protocol",
    "ProcessExecutor": "repro.control.protocol",
    "make_executor": "repro.control.protocol",
    "SCHEMA_VERSION": "repro.control.registry",
    "DeploymentRegistry": "repro.control.registry",
    "RegistryEntry": "repro.control.registry",
    "serialize_tree": "repro.control.registry",
    "restore_tree": "repro.control.registry",
    "tree_digest": "repro.control.registry",
    "ControlContext": "repro.control.policy",
    "ControlDecision": "repro.control.policy",
    "ControlPolicy": "repro.control.policy",
    "MigrationCostModel": "repro.control.policy",
    "PolicyOptions": "repro.control.policy",
    "HoldOptions": "repro.control.policy",
    "ReactiveOptions": "repro.control.policy",
    "PredictiveOptions": "repro.control.policy",
    "OracleOptions": "repro.control.policy",
    "StaticPolicy": "repro.control.policy",
    "ReactivePolicy": "repro.control.policy",
    "PredictivePolicy": "repro.control.policy",
    "OraclePolicy": "repro.control.policy",
    "register_policy": "repro.control.policy",
    "available_policies": "repro.control.policy",
    "make_policy": "repro.control.policy",
    "Trace": "repro.control.traces",
    "HybridTrace": "repro.control.traces",
    "burst": "repro.control.traces",
    "constant": "repro.control.traces",
    "diurnal": "repro.control.traces",
    "fixture": "repro.control.traces",
    "fixtures": "repro.control.traces",
    "flash_crowd": "repro.control.traces",
    "from_spec": "repro.control.traces",
    "hybrid": "repro.control.traces",
    "piecewise": "repro.control.traces",
    "ramp": "repro.control.traces",
    "replay": "repro.control.traces",
}


def __getattr__(name):
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(
            f"module 'repro.control' has no attribute {name!r}"
        )
    return getattr(importlib.import_module(module_name), name)


def __dir__():
    return sorted(set(globals()) | set(_EXPORTS))


__all__ = [
    "MIGRATION_MODES",
    "PROTOCOL_VERSION",
    "EXECUTOR_KINDS",
    "MigrationCommand",
    "RegionReport",
    "plan_commands",
    "commands_to_plan",
    "parse_command",
    "parse_report",
    "execute_command",
    "InProcessExecutor",
    "ProcessExecutor",
    "make_executor",
    "SCHEMA_VERSION",
    "DeploymentRegistry",
    "RegistryEntry",
    "serialize_tree",
    "restore_tree",
    "tree_digest",
    "ControlLoop",
    "ControlTimeline",
    "EpochRecord",
    "MigrationStepRecord",
    "SLOMonitor",
    "WindowObservation",
    "ControlContext",
    "ControlDecision",
    "ControlPolicy",
    "MigrationCostModel",
    "PolicyOptions",
    "HoldOptions",
    "ReactiveOptions",
    "PredictiveOptions",
    "OracleOptions",
    "StaticPolicy",
    "ReactivePolicy",
    "PredictivePolicy",
    "OraclePolicy",
    "register_policy",
    "available_policies",
    "make_policy",
    "Trace",
    "HybridTrace",
    "constant",
    "piecewise",
    "ramp",
    "diurnal",
    "burst",
    "flash_crowd",
    "replay",
    "fixture",
    "fixtures",
    "hybrid",
    "from_spec",
]
