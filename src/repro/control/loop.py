"""The rolling-horizon autoscaling controller — *act* stage and driver.

:class:`ControlLoop` runs a deployment inside the discrete-event
simulator under a time-varying :class:`~repro.control.traces.Trace` and
adapts it epoch by epoch:

1. **simulate** — adjust the closed-loop client population to the trace
   level and advance the engine one epoch;
2. **observe** — :class:`~repro.control.monitor.SLOMonitor` condenses
   the window (served rate, per-tier utilization, queue depth);
3. **decide** — the configured policy returns ``hold`` / ``improve`` /
   ``replan``;
4. **act** — the loop realizes the decision: ``improve`` runs the
   prior-work bottleneck-removal mechanism over the spares, ``replan``
   goes through the planner registry; either way the candidate is priced
   by the :class:`~repro.control.policy.MigrationCostModel` and a
   scale-up that cannot amortize its migration downtime is **vetoed**.

Applied redeploys run in one of three migration modes:

``migration="live"`` (the default)
    The old and new trees are diffed into a subtree-granular
    :class:`~repro.deploy.migration.MigrationPlan` and applied *inside*
    the running simulation: one region at a time is unlinked from the
    fan-out, drained until quiet (bounded by the cost model's per-region
    cap), reconfigured, and resumed — clients keep running and the rest
    of the platform keeps serving throughout.  Only diffs the plan
    engine cannot realize incrementally (changed root, changed node
    powers) fall back to the stop-the-world path below.
``migration="concurrent"``
    Live migration with the plan's dependency waves
    (:meth:`~repro.deploy.migration.MigrationPlan.concurrent_schedule`)
    executed in parallel: every region of a wave is unlinked at once
    and the engine advances under interleaved
    :meth:`~repro.sim.engine.Simulator.run_until_condition` drains —
    each region reconfigures and resumes the moment *it* goes quiet
    (and its config window elapses), while its wave-mates keep
    draining.  Same per-region dark windows, strictly shorter total
    migration window; the applied tree is identical to the serial
    :meth:`~repro.deploy.migration.MigrationPlan.apply`, which the
    equivalence battery asserts.
``migration="restart"``
    The legacy stop-the-world mechanism, kept for comparison: stop the
    clients, advance the clock by the full migration price (in-flight
    requests drain meanwhile), rebuild the middleware on the *same*
    simulator, re-attach the monitor.

The run returns a :class:`ControlTimeline`: one frozen
:class:`EpochRecord` per epoch plus totals; every epoch that migrated
itemizes its downtime per step in
:attr:`EpochRecord.migration_steps`.  **Determinism contract** (the
live-migration extension of the :mod:`repro.workloads.loadgen` one):
everything is a pure function of (pool, trace, policy, params, seed,
migration mode) — wall-clock never leaks into the timeline, drains are
bounded by simulation-state predicates only, and structural steps run in
the plan's fixed order, so two runs with the same seed compare equal in
either mode, which the test suite asserts.  Controller bookkeeping cost
is exposed separately as :attr:`ControlLoop.overhead_seconds` for the
benchmark suite.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

from repro.api import PlanRequest
from repro.control.monitor import SLOMonitor, WindowObservation, merge_fluid
from repro.control.policy import (
    MIGRATION_MODES,
    ControlContext,
    ControlDecision,
    ControlPolicy,
    MigrationCostModel,
    make_policy,
)
from repro.control.protocol import (
    EXECUTOR_KINDS,
    commands_to_plan,
    make_executor,
    parse_command,
    parse_report,
    plan_commands,
)
from repro.control.registry import DeploymentRegistry, tree_digest
from repro.control.traces import HybridTrace, Trace
from repro.core.hierarchy import Hierarchy
from repro.core.kernels import HierarchyEvaluator
from repro.core.params import DEFAULT_PARAMS, ModelParams
from repro.core.registry import CAP_DEMAND, REGISTRY, PlannerRegistry
from repro.deploy.migration import (
    MigrationPlan,
    apply_steps,
    hierarchies_equal,
    plan_migration,
)
from repro.errors import ControlError, HierarchyError, ProtocolError
from repro.extensions.redeploy import improve_deployment
from repro.faults import FaultInjector, FaultRecord, FaultSchedule
from repro.faults import from_spec as fault_spec
from repro.middleware.client import ClosedLoopClient
from repro.middleware.detection import DetectionParams, parse_detection
from repro.middleware.system import MiddlewareSystem
from repro.obs import NULL_OBS, MetricsRegistry, MetricsSnapshot, Obs, Stopwatch
from repro.platforms.pool import NodePool
from repro.sim.engine import Simulator
from repro.sim.fluid import FluidPopulation
from repro.sim.stats import IntervalCounter
from repro.sim.trace import TraceRecorder

__all__ = [
    "MigrationStepRecord",
    "DetectionRecord",
    "EpochRecord",
    "ControlTimeline",
    "ControlLoop",
]

_REL_TOL = 1e-9

#: Modes that realize redeploys as in-place subtree migrations.
_LIVE_MODES = ("live", "concurrent")


def _hierarchy_without(hierarchy: Hierarchy, names: set[str]) -> Hierarchy:
    """Copy of ``hierarchy`` with every node in ``names`` pruned out.

    ``names`` must be subtree-closed (no orphaned descendants); removal
    runs deepest-first so every doomed node is a leaf when its turn
    comes.
    """
    pruned = hierarchy.copy()
    by_name = {str(node): node for node in pruned}
    doomed = [by_name[name] for name in sorted(names) if name in by_name]
    for node in sorted(doomed, key=pruned.depth, reverse=True):
        pruned.remove_leaf(node)
    pruned.validate(strict=False)
    return pruned


@dataclass(frozen=True)
class MigrationStepRecord:
    """One itemized migration step of an epoch's redeploy.

    ``seconds`` is the simulated wall duration of the step's window;
    ``downtime`` weights it by the fraction of deployed nodes that were
    actually dark — a full restart drains everything (downtime equals
    the window), a live drain charges only its subtree's share, and a
    drain-free growth step charges nothing.  ``started_at`` anchors the
    window in simulation time, so concurrent migrations expose their
    *overlapping* step intervals: two records of one epoch may share a
    ``started_at`` while their windows run side by side.
    """

    op: str  # "restart" | "drain" | "grow"
    target: str
    seconds: float
    drained_nodes: int
    deployed_nodes: int
    started_at: float = 0.0

    @property
    def interval(self) -> tuple[float, float]:
        """The step's ``[start, end]`` window in simulation time."""
        return (self.started_at, self.started_at + self.seconds)

    @property
    def downtime(self) -> float:
        """Service-weighted outage seconds of this step."""
        if self.deployed_nodes <= 0:
            return self.seconds
        fraction = min(1.0, self.drained_nodes / self.deployed_nodes)
        return self.seconds * fraction


@dataclass(frozen=True)
class DetectionRecord:
    """One failure the control plane *inferred* (never announced).

    Under timeout-modelled detection the loop learns about a crash only
    through the suspicion lifecycle: watchdog timeouts accumulate into a
    suspicion, the grace window elapses, and the monitor confirms the
    node dead — at which point the loop excises the subtree and records
    the whole story here.  ``injected_at`` is back-filled from the fault
    schedule purely for *accounting* (the latency a real operator would
    measure); the decision path never sees it.
    """

    #: Confirmed node (subtree root as the controller addressed it).
    node: str
    #: Every node excised with it (the confirmed node's subtree).
    nodes: tuple = ()
    #: When the fault schedule actually injected the failure — ``None``
    #: for a false positive (the node was alive; the controller gave up
    #: on it anyway).
    injected_at: float | None = None
    #: When the suspicion threshold was crossed (watchdog evidence).
    suspected_at: float = 0.0
    #: When the grace window closed and the monitor confirmed the death.
    confirmed_at: float = 0.0
    #: In-flight conversations dead-lettered (and resubmitted) by the
    #: confirmation-time excision.
    dead_letters: int = 0

    @property
    def latency(self) -> float | None:
        """Injection-to-confirmation delay; ``None`` for false positives."""
        if self.injected_at is None:
            return None
        return self.confirmed_at - self.injected_at


@dataclass(frozen=True)
class EpochRecord:
    """One epoch of the control timeline.

    ``action``/``reason`` echo the policy decision; ``applied`` says
    whether the loop actually redeployed (a decision can be a no-op —
    no improving move found, replan produced the current deployment —
    or vetoed by the migration-cost gate, in which case ``reason`` says
    so).  ``migration_seconds`` is the *effective* downtime paid this
    epoch — service-weighted outage, itemized per step in
    ``migration_steps``: a stop-the-world redeploy is one ``restart``
    item covering every node, a live redeploy one ``drain``/``grow``
    item per migrated subtree.
    """

    #: All fields describe the epoch as it ran — the deployment that
    #: served it, its capacity, its node counts.  A redeploy applied at
    #: the epoch's end shows up in ``applied``/``migration_seconds``
    #: here and in the *next* record's deployment fields.
    index: int
    start: float
    end: float
    offered: int
    served: int
    served_rate: float
    capacity: float
    deployed_nodes: int
    spares: int
    busiest_node: str
    busiest_utilization: float
    queue_depth: int
    action: str
    reason: str
    applied: bool
    migration_seconds: float
    migration_steps: tuple[MigrationStepRecord, ...] = ()
    #: Wall (simulated) duration of the epoch's whole migration — the
    #: span from the first step going dark to the last resuming.  Equals
    #: the sum of step windows for serial execution; strictly less when
    #: a concurrent schedule overlaps them.
    migration_window: float = 0.0
    #: Fault events injected during this epoch's simulate stage, as they
    #: actually landed (resolved targets, affected nodes, dead-letters).
    faults: tuple[FaultRecord, ...] = ()
    #: Failures *confirmed* (and excised) this epoch under
    #: timeout-modelled detection, with their measured latency.
    detections: tuple[DetectionRecord, ...] = ()
    #: Nodes past the suspicion threshold but still inside their grace
    #: window at this epoch's boundary (detection only).
    suspects: tuple[str, ...] = ()
    #: Previously suspect nodes that answered within the grace window
    #: and were re-integrated this epoch (detection only).
    reintegrated: tuple[str, ...] = ()
    #: Servers drained-and-replaced by an applied ``evict`` this epoch.
    evictions: tuple[str, ...] = ()
    #: Frozen :class:`~repro.obs.MetricsSnapshot` at this epoch's
    #: boundary — cumulative conversation/engine/migration counters plus
    #: this epoch's gauges.  Always populated by :meth:`ControlLoop.run`
    #: and fed exclusively from deterministic simulation state, so it is
    #: bit-identical whether tracing is enabled or not.
    metrics: MetricsSnapshot | None = None
    #: Hybrid runs only: mean fluid client mass carried analytically this
    #: epoch (``offered`` already includes it) and how many clients were
    #: actually simulated as the discrete cohort.  Both 0 on ordinary
    #: all-discrete runs.
    fluid_clients: float = 0.0
    cohort_clients: int = 0


@dataclass(frozen=True)
class ControlTimeline:
    """Structured outcome of one controller run."""

    policy: str
    trace_name: str
    seed: int
    epoch_duration: float
    records: tuple[EpochRecord, ...] = field(repr=False)
    total_served: int = 0
    redeploys: int = 0
    final_shape: tuple[int, int, int, int] = (0, 0, 0, 0)
    final_capacity: float = 0.0
    migration: str = "restart"
    #: Fault events that fired during the run (applied or skipped).
    fault_count: int = 0
    #: In-flight service conversations dead-lettered by crashes; every
    #: one was resubmitted elsewhere, so clients still completed.
    dead_letters: int = 0
    #: Conversations dropped without resubmission — the self-healing
    #: invariant keeps this at zero, and tests assert it.
    lost_conversations: int = 0
    #: Failures confirmed through the suspicion lifecycle (detection
    #: runs only; oracle runs leave it 0).
    detection_count: int = 0
    #: Servers drained-and-replaced by ``evict`` decisions.
    eviction_count: int = 0

    @property
    def detection_records(self) -> tuple[DetectionRecord, ...]:
        """Every confirmation across the run, in epoch order."""
        return tuple(
            detection
            for record in self.records
            for detection in record.detections
        )

    @property
    def mean_detection_latency(self) -> float:
        """Mean injection-to-confirmation delay (0 when nothing matched)."""
        latencies = [
            detection.latency
            for detection in self.detection_records
            if detection.latency is not None
        ]
        if not latencies:
            return 0.0
        return sum(latencies) / len(latencies)

    @property
    def served_in_epochs(self) -> int:
        """Completions inside measured windows (excludes drain time)."""
        return sum(record.served for record in self.records)

    @property
    def mean_served_rate(self) -> float:
        """Served requests/s averaged over the measured windows."""
        window = sum(r.end - r.start for r in self.records)
        return self.served_in_epochs / window if window > 0.0 else 0.0

    @property
    def migration_downtime(self) -> float:
        """Total effective downtime (service-weighted) across the run."""
        return sum(r.migration_seconds for r in self.records)

    @property
    def migration_step_count(self) -> int:
        """Itemized migration steps across every applied redeploy."""
        return sum(len(r.migration_steps) for r in self.records)

    @property
    def migration_window(self) -> float:
        """Total wall (simulated) time spent inside migrations.

        The number a concurrent schedule shrinks: overlapping drains
        pay their windows once, not back to back.
        """
        return sum(r.migration_window for r in self.records)

    def describe(self) -> str:
        faults = (
            f", {self.fault_count} faults injected "
            f"({self.dead_letters} dead-lettered, "
            f"{self.lost_conversations} lost)"
            if self.fault_count
            else ""
        )
        if self.detection_count:
            faults += (
                f", {self.detection_count} confirmed by timeout "
                f"(mean detection latency "
                f"{self.mean_detection_latency:.2f}s)"
            )
        if self.eviction_count:
            faults += f", {self.eviction_count} evicted"
        return (
            f"ControlTimeline[{self.policy}] on {self.trace_name} "
            f"({self.migration} migration): "
            f"{len(self.records)} epochs x {self.epoch_duration:g}s, "
            f"served {self.total_served} "
            f"({self.mean_served_rate:.1f} req/s mean), "
            f"{self.redeploys} redeploys "
            f"({self.migration_downtime:.2f}s downtime over "
            f"{self.migration_step_count} steps in a "
            f"{self.migration_window:.2f}s window){faults}, final shape "
            f"nodes={self.final_shape[0]} agents={self.final_shape[1]} "
            f"servers={self.final_shape[2]} height={self.final_shape[3]}"
        )


class ControlLoop:
    """Online autoscaling controller over the simulated platform.

    Parameters
    ----------
    pool:
        Every node the controller may ever use.  The initial deployment
        takes the first ``round(initial_fraction * n)`` (at least
        ``min_nodes``); the rest start as spares.
    app_work:
        Application work ``Wapp`` per request (MFlop).
    trace:
        Target client population over time.  A
        :class:`~repro.control.traces.HybridTrace` switches the loop
        into hybrid mode: only the sampled cohort runs as discrete
        closed-loop clients, while the fluid remainder is integrated
        analytically each epoch (calibrated from the cohort's measured
        per-client rate) and folded into the observations policies see
        — which is what makes 10⁵–10⁶-client traces run at small-pool
        wall times.
    policy:
        A registered policy name (optionally with ``policy_options``) or
        a :class:`~repro.control.policy.ControlPolicy` instance.
    epochs, epoch_duration:
        Rolling-horizon geometry: number of control epochs and seconds
        of simulation per epoch.
    base_method:
        Planner used for the initial deployment and for replans.
    cost_model:
        Migration pricing; defaults to
        :class:`~repro.control.policy.MigrationCostModel`.
    migration:
        ``"live"`` (default) applies redeploys as subtree-granular
        migrations inside the running simulation — only drained
        subtrees stop serving; ``"concurrent"`` additionally drains
        independent regions in parallel (dependency waves), shrinking
        the migration window; ``"restart"`` keeps the legacy
        stop-the-world rebuild for comparison.
    amortize_epochs:
        Scale-up gate: the modeled throughput gain must repay the
        migration downtime within this many epochs.  Live migrations
        are priced at their service-weighted outage, so the gate lets
        policies act far more aggressively in live mode.
    recorder:
        Optional :class:`~repro.sim.trace.TraceRecorder` wired into
        every generation of the platform (spanning redeploys).  Leave
        ``None`` for the zero-cost path.
    think_time:
        Client think time between requests.  0 reproduces the paper's
        load scripts (each client saturates); > 0 makes each trace level
        an open-ish load so utilization genuinely falls when the trace
        does — which is what gives scale-down policies something to see.
    seed:
        Master seed.  Every stochastic component (middleware RNGs per
        generation) derives from it; same seed ⇒ identical timeline.
    faults:
        Optional :class:`~repro.faults.FaultSchedule` (or a
        ``from_spec`` string) injected into the simulate stage: each
        event is applied at its scheduled time, the monitor reports the
        observed damage, and repair-enabled policies heal through the
        migration machinery.  Fault and repair records land in the
        timeline, so runs stay bit-reproducible per seed.
    detection:
        Optional :class:`~repro.middleware.detection.DetectionParams`
        (or a ``parse_detection`` spec string such as
        ``"timeout=0.5,retries=1,threshold=3"``).  When set, failures
        are *inferred*, never announced: crashes land silently, agents
        watch their children with timeout/retry ladders, and the loop
        only acts when the monitor's suspicion lifecycle confirms a
        death — at which point the subtree is excised and a
        :class:`DetectionRecord` (with measured detection latency)
        lands in the timeline.  ``None`` keeps the oracle health model
        bit-exactly.
    spare_reserve:
        Fraction of the pool (rounded to a node count) held back from
        scale-ups as a repair reserve.  ``improve`` decisions only see
        the scalable remainder; ``repair`` and ``evict`` draw on the
        whole spare set, so a damaged platform always has material to
        heal with.  A ``reserve=`` key in a detection spec string
        overrides this argument.
    executor:
        How the act stage realizes live migration plans — one of
        :data:`~repro.control.protocol.EXECUTOR_KINDS` (``"inline"``,
        ``"local"``, ``"pool"``) or a ready-made executor object with
        ``execute(snapshot, wires)`` / ``close()``.  ``"inline"`` (the
        default) applies plans directly, exactly as before the
        master/daemon split.  ``"local"`` and ``"pool"`` serialize each
        plan into versioned :class:`~repro.control.protocol
        .MigrationCommand` batches, execute them through stateless
        per-region daemons (in-process or in a process pool) that
        rebuild the deployment from a :class:`~repro.control.registry
        .DeploymentRegistry` snapshot, and verify the acked digests
        before the simulated apply — the timeline is bit-identical
        across all three kinds (asserted by ``tests/test_protocol.py``).
    executor_workers:
        Process count for the ``"pool"`` executor (``None`` for the
        pool default); ignored by the other kinds.
    obs:
        Observability handle.  ``None``/``False`` (default) runs with
        the shared null handle — disabled instrumentation costs one
        attribute check per site; ``True`` creates a fresh
        :class:`~repro.obs.Obs` (read it back via :attr:`obs`); an
        :class:`~repro.obs.Obs` instance is used as given.  Tracing
        never changes the timeline: every :class:`EpochRecord` metric
        is fed from deterministic simulation state whether or not a
        tracer records, so same-seed runs are bit-identical either way.
    """

    def __init__(
        self,
        pool: NodePool,
        app_work: float,
        trace: Trace,
        policy: str | ControlPolicy = "reactive",
        params: ModelParams | None = None,
        registry: PlannerRegistry | None = None,
        epochs: int = 30,
        epoch_duration: float = 5.0,
        base_method: str = "heuristic",
        initial_fraction: float = 0.5,
        min_nodes: int = 2,
        policy_options: dict[str, object] | None = None,
        cost_model: MigrationCostModel | None = None,
        migration: str = "live",
        amortize_epochs: int = 4,
        recorder: TraceRecorder | None = None,
        think_time: float = 0.0,
        seed: int = 0,
        faults: FaultSchedule | str | None = None,
        detection: DetectionParams | str | None = None,
        spare_reserve: float = 0.0,
        obs: Obs | bool | None = None,
        executor: str | object = "inline",
        executor_workers: int | None = None,
    ):
        if len(pool) < 2:
            raise ControlError(
                f"control loop needs a pool of >= 2 nodes, got {len(pool)}"
            )
        if not isinstance(trace, Trace):
            raise ControlError(
                f"trace must be a control Trace, got {type(trace).__name__}"
            )
        if epochs < 1:
            raise ControlError(f"epochs must be >= 1, got {epochs}")
        if epoch_duration <= 0.0:
            raise ControlError(
                f"epoch_duration must be > 0, got {epoch_duration}"
            )
        if not (0.0 < initial_fraction <= 1.0):
            raise ControlError(
                f"initial_fraction must be in (0, 1], got {initial_fraction}"
            )
        if min_nodes < 2:
            raise ControlError(f"min_nodes must be >= 2, got {min_nodes}")
        if amortize_epochs < 1:
            raise ControlError(
                f"amortize_epochs must be >= 1, got {amortize_epochs}"
            )
        if migration not in MIGRATION_MODES:
            raise ControlError(
                f"unknown migration mode {migration!r}; "
                f"expected one of {MIGRATION_MODES}"
            )
        if think_time < 0.0:
            raise ControlError(
                f"think_time must be >= 0, got {think_time}"
            )
        if isinstance(faults, str):
            faults = fault_spec(faults)
        if faults is not None and not isinstance(faults, FaultSchedule):
            raise ControlError(
                "faults must be a FaultSchedule or a fault-spec string, "
                f"got {type(faults).__name__}"
            )
        if isinstance(detection, str):
            detection, spec_reserve = parse_detection(detection)
            if spec_reserve is not None:
                spare_reserve = spec_reserve
        if detection is not None and not isinstance(
            detection, DetectionParams
        ):
            raise ControlError(
                "detection must be DetectionParams or a spec string, "
                f"got {type(detection).__name__}"
            )
        if not 0.0 <= spare_reserve < 1.0:
            raise ControlError(
                f"spare_reserve must be in [0, 1), got {spare_reserve}"
            )
        if obs is None or obs is False:
            obs = NULL_OBS
        elif obs is True:
            obs = Obs()
        elif not isinstance(obs, Obs):
            raise ControlError(
                f"obs must be an Obs handle or a bool, got "
                f"{type(obs).__name__}"
            )
        if isinstance(executor, str):
            if executor not in EXECUTOR_KINDS:
                raise ControlError(
                    f"unknown executor kind {executor!r}; "
                    f"expected one of {EXECUTOR_KINDS}"
                )
        elif not (
            hasattr(executor, "execute") and hasattr(executor, "close")
        ):
            raise ControlError(
                "executor must be an EXECUTOR_KINDS string or an object "
                f"with execute()/close(), got {type(executor).__name__}"
            )
        if executor_workers is not None and executor_workers < 1:
            raise ControlError(
                f"executor_workers must be >= 1, got {executor_workers}"
            )
        self.pool = pool
        self.app_work = float(app_work)
        self.trace = trace
        self.policy = make_policy(policy, policy_options)
        self.params = params if params is not None else DEFAULT_PARAMS
        self.registry = registry if registry is not None else REGISTRY
        self.epochs = epochs
        self.epoch_duration = float(epoch_duration)
        self.base_method = base_method
        self.initial_fraction = initial_fraction
        self.min_nodes = min_nodes
        self.cost_model = (
            cost_model if cost_model is not None else MigrationCostModel()
        )
        self.migration = migration
        self.amortize_epochs = amortize_epochs
        self.recorder = recorder
        self.think_time = float(think_time)
        self.seed = seed
        self.faults = faults
        self.detection = detection
        self.executor = executor
        self.executor_workers = executor_workers
        # The live run's executor instance (None in inline mode); owned
        # and closed by :meth:`run` when built from a kind string.
        self._executor = None
        #: Versioned deployment-state registry of the last :meth:`run` —
        #: one generation per applied deployment transition, the durable
        #: truth executors (and restarted daemons) rebuild from.
        self.deployment_registry = DeploymentRegistry()
        self.spare_reserve = float(spare_reserve)
        # Reserve size in nodes, fixed at construction: a fraction of
        # the *full* pool, so attrition cannot silently shrink it.
        self._reserve_target = int(round(self.spare_reserve * len(pool)))
        # Names of crashed nodes; they leave the usable pool for good.
        self._failed_names: set[str] = set()
        # Names of evicted nodes; the controller gave up on them, so
        # they leave the usable pool exactly like crashed ones.
        self._evicted_names: set[str] = set()
        # node -> injection time of a not-yet-confirmed silent fault
        # (detection accounting only; never consulted by decisions).
        self._pending_injections: dict[str, float] = {}
        #: The observability handle (the shared null handle when none
        #: was configured); callers read traces back from
        #: ``loop.obs.tracer`` after :meth:`run`.
        self.obs = obs
        # The metrics registry is *always* live — fed exclusively from
        # deterministic simulation state, so EpochRecord snapshots are
        # identical whether or not a tracer records.  A configured Obs
        # brings its own registry; the null handle gets a private one.
        self._metrics = (
            obs.metrics if obs.metrics is not None else MetricsRegistry()
        )
        # Centralized wall-clock accounting for controller bookkeeping
        # (planning, observing, deciding, pricing): one stopwatch
        # context manager instead of hand-paired perf_counter deltas,
        # so new control stages cannot double-count.  Telemetry only.
        self._overhead = Stopwatch()
        # Loop-owned memoizing evaluator for capacity evaluations
        # (bit-identical to cold hierarchy_throughput); recreated per
        # run so serial and process-pool sweeps see identical cache
        # hit-rate metrics.
        self._evaluator = HierarchyEvaluator(self.params)
        # The live run's simulator (sim-time source for planner spans).
        self._sim: Simulator | None = None
        #: The last run's final demand-unit estimate (req/s one
        #: unsaturated client generates); telemetry only.
        self.demand_unit_estimate = 0.0
        #: The deployment tree the last :meth:`run` ended on; telemetry
        #: for equivalence tests (the timeline itself only carries the
        #: shape signature).
        self.final_hierarchy: Hierarchy | None = None
        # Memoized demand-free (maximum-capacity) replans, keyed by the
        # excluded-name set (the repair reserve); reset per run and
        # whenever attrition shrinks the live pool.
        self._capacity_plans: dict[frozenset, object] = {}

    # ------------------------------------------------------------------ #

    @property
    def overhead_seconds(self) -> float:
        """Wall-clock seconds the controller itself spent (planning,
        observing, deciding, pricing) in the last :meth:`run` —
        telemetry only, never part of the timeline."""
        return self._overhead.total

    def run(self) -> ControlTimeline:
        """Execute the simulate → observe → decide → act loop."""
        if isinstance(self.executor, str):
            executor = make_executor(self.executor, self.executor_workers)
            owns_executor = True
        else:
            executor, owns_executor = self.executor, False
        # Spin the executor up (process-pool workers included) before
        # the run, *outside* the overhead stopwatch: worker spawn is
        # one-time infrastructure, not per-epoch controller bookkeeping,
        # and charging it to the first dispatch would make the
        # adaptation-overhead budget lie about steady state.
        if executor is not None:
            warm = getattr(executor, "warm", None)
            if warm is not None:
                warm()
        self._executor = executor
        try:
            return self._run_loop()
        finally:
            if owns_executor and executor is not None:
                executor.close()
            self._executor = None

    def _run_loop(self) -> ControlTimeline:
        self._overhead.reset()
        self._metrics.reset()
        self._evaluator = HierarchyEvaluator(self.params)
        obs = self.obs
        tracer = obs.tracer
        tracer.clear()
        self._capacity_plans = {}
        self._failed_names = set()
        self._evicted_names = set()
        self._pending_injections = {}
        # Fresh registry per run: generation 0 is the initial deployment
        # and every applied transition (redeploy, crash adoption,
        # confirmed-detection excision) commits the next one.
        self.deployment_registry = DeploymentRegistry()
        injector = (
            FaultInjector(self.faults) if self.faults is not None else None
        )
        # Dead-letter/lost/resubmission totals survive stop-the-world
        # rebuilds: the counters live on the system object, which
        # restarts replace.
        dead_letters_base = 0
        resubmissions_base = 0
        lost_base = 0
        params = self.params
        sim = Simulator()
        self._sim = sim
        with self._overhead:
            initial = min(
                len(self.pool),
                max(
                    self.min_nodes,
                    round(self.initial_fraction * len(self.pool)),
                ),
            )
            deployment = self._traced_plan(
                PlanRequest(
                    pool=self.pool.take(initial),
                    app_work=self.app_work,
                    params=params,
                    method=self.base_method,
                    seed=self.seed,
                ),
                purpose="initial",
            )
            completions = IntervalCounter()
            monitor = SLOMonitor(completions)
            hierarchy = deployment.hierarchy
            self.deployment_registry.commit(hierarchy, "initial")
            spares = self._spares_for(hierarchy)
            system = self._build_system(sim, hierarchy, generation=0)
            monitor.attach(system)
            # Model capacity of the live deployment; only changes on
            # redeploy.
            capacity = self._evaluator.evaluate(
                hierarchy, self.app_work
            ).throughput

        clients: list[ClosedLoopClient] = []
        observations: list[WindowObservation] = []
        records: list[EpochRecord] = []
        generation = 0
        redeploys = 0
        # Policies gate their cooldown on `redeploys > 0`, so the value
        # before the first redeploy is immaterial.
        epochs_since_redeploy = self.epochs
        demand_unit = 0.0
        client_serial = 0
        # Hybrid populations: only the sampled cohort runs as discrete
        # clients; the remainder is integrated analytically between
        # event boundaries by a fluid population calibrated from the
        # cohort's own measured per-client rate.
        hybrid = self.trace if isinstance(self.trace, HybridTrace) else None
        fluid = FluidPopulation() if hybrid is not None else None
        # Stopped clients whose final request is still in flight; their
        # completions land in windows whose `offered` no longer counts
        # them, so calibration is suppressed until the drain finishes.
        draining: list[ClosedLoopClient] = []

        def record_completion(request) -> None:
            completions.record(sim.now)

        for index in range(self.epochs):
            start = sim.now
            end = start + self.epoch_duration
            offered = self.trace.level(start)
            # The engine only ever runs the cohort; the fluid remainder
            # (offered - cohort_target) is integrated after the window.
            cohort_target = (
                hybrid.cohort_level(start) if hybrid is not None else offered
            )
            sim_span = (
                tracer.begin(
                    start, "epoch", "simulate", index=index, offered=offered
                )
                if obs.enabled
                else -1
            )

            # simulate: reconcile the client population, advance one epoch.
            while len(clients) < cohort_target:
                client = ClosedLoopClient(
                    system,
                    f"c{generation}-{client_serial:05d}",
                    think_time=self.think_time,
                    on_complete=record_completion,
                )
                client_serial += 1
                clients.append(client)
                client.start()
            while len(clients) > cohort_target:
                stopped = clients.pop()
                stopped.stop()
                draining.append(stopped)
            # A drain finishing mid-window still contaminates it, so the
            # calibration guard sees the window-start state; the list is
            # pruned afterwards for the next epoch.
            window_contaminated = bool(draining)
            faults_this_epoch: list[FaultRecord] = []
            if injector is not None:
                for event in injector.due(end):
                    if event.at > sim.now:
                        sim.run_until(event.at)
                    faults_this_epoch.append(injector.apply(event, system))
            sim.run_until(end)
            draining = [client for client in draining if client.active]
            if obs.enabled:
                tracer.end(end, sim_span)

            # observe → reconcile → decide → realize: controller
            # bookkeeping, accounted by the overhead stopwatch (the
            # simulated migration below is the platform's time, not the
            # controller's, so it stays outside the block).
            with self._overhead:
                observation = monitor.observe(
                    index, start, end, cohort_target
                )
                if observation.offered > 0 and not window_contaminated:
                    # served/offered never exceeds the rate one
                    # unsaturated client generates (latency only grows
                    # with contention), so the running max is a safe
                    # demand-unit estimate — but only for windows free
                    # of drain contamination: clients stopped by a
                    # population shrink complete their final requests
                    # inside windows whose `offered` no longer counts
                    # them, inflating the ratio for as long as the
                    # drain lasts.  Calibration waits until every
                    # stopped client has gone quiet; the estimate stays
                    # a lower bound.  (Redeploys don't contaminate: a
                    # stop-the-world restart aborts its fleet —
                    # disowned completions are never counted — and a
                    # live migration stops nobody.)
                    demand_unit = max(
                        demand_unit, observation.per_client_rate
                    )

                # Fluid advance: the mass not simulated as the cohort is
                # integrated analytically over the window just run, at
                # the per-client rate the cohort measured, against the
                # model capacity the cohort left unused.  The merged
                # observation (total offered, combined served) is what
                # calibration above never sees but policies below do.
                fluid_window = None
                if fluid is not None:
                    residual = max(0.0, capacity - observation.served_rate)
                    fluid_window = fluid.advance(
                        start, end, hybrid.fluid_level, demand_unit, residual
                    )
                    allocation = system.assign_fluid_rates(
                        fluid_window.served_rate
                    )
                    observation = merge_fluid(
                        observation, fluid_window, offered, allocation,
                        residual,
                    )
                observations.append(observation)

                # reconcile: observed damage is the truth the controller
                # plans from.
                detections: list[DetectionRecord] = []
                if self.detection is None:
                    # Oracle health: crash surgery already pruned the
                    # dead subtree out of the running system, so adopt
                    # the survivors' tree; crashed nodes leave the
                    # usable pool for good.
                    crashed_nodes = sorted(
                        name
                        for record in faults_this_epoch
                        if record.applied and record.kind == "crash"
                        for name in record.nodes
                    )
                    if crashed_nodes:
                        self._failed_names.update(crashed_nodes)
                        hierarchy = system.hierarchy
                        spares = self._spares_for(hierarchy)
                        self._capacity_plans.clear()
                        self.deployment_registry.commit(
                            hierarchy, "crash", epoch=index
                        )
                    if any(
                        record.applied and record.kind != "degrade"
                        for record in faults_this_epoch
                    ):
                        # Crashes shrink the tree, partitions dark a
                        # subtree, heals light it back up — all change
                        # what the model says the platform can serve.
                        # (Degrades don't touch the structure; the
                        # straggler still reports nominal.)
                        capacity = self._effective_capacity(
                            system, hierarchy
                        )
                else:
                    # Inferred health: faults landed silently, so the
                    # tree the controller plans from only changes when
                    # the monitor *confirms* a death.  Injection times
                    # are remembered purely for latency accounting.
                    for record in faults_this_epoch:
                        if not record.applied:
                            continue
                        if record.kind in ("crash", "partition"):
                            for name in record.nodes:
                                self._pending_injections.setdefault(
                                    name, record.at
                                )
                        elif record.kind == "heal":
                            for name in record.nodes:
                                self._pending_injections.pop(name, None)
                    if observation.failed_nodes:
                        detections = self._excise_confirmed(
                            system, monitor, observation.failed_nodes, end
                        )
                    if detections:
                        for detection in detections:
                            self._failed_names.update(detection.nodes)
                            for name in detection.nodes:
                                self._pending_injections.pop(name, None)
                        hierarchy = system.hierarchy
                        spares = self._spares_for(hierarchy)
                        self._capacity_plans.clear()
                        self.deployment_registry.commit(
                            hierarchy, "detection", epoch=index
                        )
                        capacity = self._effective_capacity(
                            system, hierarchy
                        )

                # decide.
                scalable, reserved = self._split_spares(spares)
                context = ControlContext(
                    observations=tuple(observations),
                    capacity=capacity,
                    deployed_nodes=len(hierarchy),
                    pool_size=len(self._live_pool()),
                    spares=len(scalable),
                    min_nodes=self.min_nodes,
                    epoch_duration=self.epoch_duration,
                    next_start=sim.now,
                    trace=self.trace,
                    demand_unit=demand_unit,
                    redeploys=redeploys,
                    epochs_since_redeploy=epochs_since_redeploy,
                    repair_spares=len(spares) if reserved else 0,
                    server_shares=self._server_shares(hierarchy),
                )
                decision = self.policy.decide(context)

                # act.
                candidate, reason, predicted_cost, new_capacity, plan = (
                    self._realize(
                        decision, hierarchy, scalable, capacity,
                        observation, reserved=reserved,
                    )
                )

                applied = False
                epoch_capacity = capacity
                epoch_nodes = len(hierarchy)
                epoch_spares = len(spares)
                step_records: tuple[MigrationStepRecord, ...] = ()
                migration_window = 0.0
                if candidate is not None:
                    if decision.action == "evict":
                        # The drained server leaves the usable pool for
                        # good — the controller decided it cannot be
                        # trusted — and capacity memos keyed on the old
                        # pool go stale with it.
                        self._evicted_names.update(decision.targets)
                        self._capacity_plans.clear()
                    hierarchy = candidate
                    spares = self._spares_for(hierarchy)
                    capacity = new_capacity
            act_start = sim.now
            dispatched: tuple = ()
            if candidate is not None:
                if (
                    self.migration in _LIVE_MODES
                    and plan is not None
                    and plan.is_live
                ):
                    # Live: migrate subtree by subtree inside the
                    # running simulation.  Clients keep looping and the
                    # undrained part of the platform keeps serving.
                    # Concurrent mode executes whole dependency waves
                    # at once instead of one region at a time.
                    # With an executor configured, the plan first runs
                    # the master/daemon protocol: serialized commands
                    # out, acked digests back, and the wire-round-
                    # tripped plan is what the simulated apply below
                    # executes — so serialization is load-bearing, not
                    # decorative.  (Restart plans bypass the protocol:
                    # stop-the-world is a rebuild, not a command batch.)
                    if self._executor is not None and plan.regions:
                        with self._overhead:
                            plan, dispatched = self._dispatch_commands(
                                plan, candidate, index
                            )
                    migrate_start = sim.now
                    if self.migration == "concurrent":
                        step_records = self._apply_concurrent(
                            sim, system, plan, candidate
                        )
                    else:
                        step_records = self._apply_live(
                            sim, system, plan, candidate
                        )
                    migration_window = sim.now - migrate_start
                    with self._overhead:
                        monitor.attach(system)  # fresh busy baselines
                else:
                    # Stop-the-world: the old platform's daemons are
                    # killed, so every in-flight request dies with them
                    # (aborted clients disown their completions), the
                    # platform serves nothing for the whole migration
                    # window, and a fresh client fleet reconnects to the
                    # rebuilt platform at the next epoch.  This is the
                    # cost live migration exists to avoid.
                    for client in clients:
                        client.abort()
                    clients = []
                    restart_start = sim.now
                    sim.run_until(sim.now + predicted_cost)
                    migration_window = predicted_cost
                    step_records = (
                        MigrationStepRecord(
                            op="restart",
                            target="*",
                            seconds=predicted_cost,
                            drained_nodes=epoch_nodes,
                            deployed_nodes=epoch_nodes,
                            started_at=restart_start,
                        ),
                    )
                    with self._overhead:
                        dead_letters_base += system.dead_letters
                        resubmissions_base += system.resubmissions
                        lost_base += system.lost_conversations
                        generation += 1
                        system = self._build_system(
                            sim, hierarchy, generation
                        )
                        monitor.attach(system)
                with self._overhead:
                    # The applied deployment becomes the next registry
                    # generation — committed *after* the apply, so the
                    # executors above replayed from the old one.
                    self.deployment_registry.commit(
                        hierarchy, decision.action, epoch=index,
                        command_ids=tuple(
                            command.command_id for command in dispatched
                        ),
                    )
                redeploys += 1
                applied = True
                epochs_since_redeploy = 0
            else:
                epochs_since_redeploy += 1

            if obs.enabled:
                tracer.event(
                    end, "epoch", "observe",
                    index=index,
                    served=observation.served,
                    queue_depth=observation.queue_depth,
                    suspects=len(observation.suspect_nodes),
                )
                tracer.event(
                    end, "epoch", "decide",
                    index=index,
                    action=decision.action,
                    applied=applied,
                )
                for detection in detections:
                    tracer.span(
                        detection.injected_at
                        if detection.injected_at is not None
                        else detection.suspected_at,
                        detection.confirmed_at,
                        "detection",
                        detection.node,
                        latency=detection.latency,
                        dead_letters=detection.dead_letters,
                        nodes=len(detection.nodes),
                    )
                if applied:
                    for step in step_records:
                        tracer.span(
                            step.started_at,
                            step.started_at + step.seconds,
                            "migration",
                            f"{step.op}:{step.target}",
                            drained_nodes=step.drained_nodes,
                            epoch=index,
                        )
                    tracer.span(
                        act_start, sim.now, "epoch", "act",
                        index=index,
                        action=decision.action,
                        steps=len(step_records),
                    )
                if applied and dispatched:
                    # The master/daemon exchange, folded back into the
                    # epoch: one dispatch marker, then per region a
                    # command span (outstanding from dispatch until the
                    # region resumed) closed by an ack event, with flow
                    # arrows tying each pair together across tracks.
                    by_root = {
                        command.root: command for command in dispatched
                    }
                    tracer.event(
                        act_start, "protocol", "dispatch",
                        epoch=index,
                        commands=len(dispatched),
                        generation=dispatched[0].generation,
                    )
                    for step in step_records:
                        command = by_root.get(step.target)
                        if command is None:
                            continue
                        done = step.started_at + step.seconds
                        tracer.span(
                            act_start, done, "protocol",
                            f"command:{step.target}",
                            command_id=command.command_id,
                            wave=command.wave,
                            generation=command.generation,
                            epoch=index,
                        )
                        tracer.event(
                            done, "protocol", f"ack:{step.target}",
                            command_id=command.command_id,
                            epoch=index,
                        )
                        tracer.flow(
                            act_start, "protocol", command.command_id, "s"
                        )
                        tracer.flow(
                            done, "protocol", command.command_id, "f"
                        )
                tracer.sample(end, "served_rate", observation.served_rate)
                tracer.sample(end, "queue_depth", observation.queue_depth)
                if fluid is not None:
                    tracer.sample(
                        end, "fluid_clients", observation.fluid_clients
                    )

            with self._overhead:
                snapshot = self._epoch_metrics(
                    sim=sim,
                    system=system,
                    observation=observation,
                    completions=completions,
                    dead_letters_base=dead_letters_base,
                    resubmissions_base=resubmissions_base,
                    lost_base=lost_base,
                    faults=faults_this_epoch,
                    detections=detections,
                    step_records=step_records,
                    migration_window=migration_window,
                    capacity=epoch_capacity,
                    deployed_nodes=epoch_nodes,
                    spares=epoch_spares,
                    offered=offered,
                    demand_unit=demand_unit,
                    applied=applied,
                    evictions=(
                        len(decision.targets)
                        if applied and decision.action == "evict"
                        else 0
                    ),
                    fluid_rate=(
                        fluid_window.served_rate
                        if fluid_window is not None
                        else 0.0
                    ),
                    fluid_total=(
                        fluid.total_served if fluid is not None else 0
                    ),
                )

            records.append(
                EpochRecord(
                    index=index,
                    start=start,
                    end=end,
                    offered=offered,
                    served=observation.served,
                    served_rate=observation.served_rate,
                    capacity=epoch_capacity,
                    deployed_nodes=epoch_nodes,
                    spares=epoch_spares,
                    busiest_node=observation.busiest_node,
                    busiest_utilization=observation.busiest_utilization,
                    queue_depth=observation.queue_depth,
                    action=decision.action,
                    reason=reason,
                    applied=applied,
                    migration_seconds=sum(
                        step.downtime for step in step_records
                    ),
                    migration_steps=step_records,
                    migration_window=migration_window,
                    faults=tuple(faults_this_epoch),
                    detections=tuple(detections),
                    suspects=observation.suspect_nodes,
                    reintegrated=observation.reintegrated_nodes,
                    evictions=(
                        decision.targets
                        if applied and decision.action == "evict"
                        else ()
                    ),
                    metrics=snapshot,
                    fluid_clients=observation.fluid_clients,
                    cohort_clients=observation.cohort,
                )
            )

        self.demand_unit_estimate = demand_unit
        self.final_hierarchy = hierarchy
        return ControlTimeline(
            policy=self.policy.name,
            trace_name=self.trace.name,
            seed=self.seed,
            epoch_duration=self.epoch_duration,
            records=tuple(records),
            total_served=completions.count,
            redeploys=redeploys,
            final_shape=hierarchy.shape_signature(),
            final_capacity=capacity,
            migration=self.migration,
            fault_count=sum(len(record.faults) for record in records),
            dead_letters=dead_letters_base + system.dead_letters,
            lost_conversations=lost_base + system.lost_conversations,
            detection_count=sum(
                len(record.detections) for record in records
            ),
            eviction_count=sum(
                len(record.evictions) for record in records
            ),
        )

    # ------------------------------------------------------------------ #

    def _traced_plan(self, request: PlanRequest, purpose: str):
        """One planner invocation, counted and (when enabled) spanned.

        The span opens and closes at the current simulation time (the
        planner is instantaneous in sim time); its wall duration lands
        in the profiling field the tracer keeps out of deterministic
        exports.  Every planner call in the loop goes through here, so
        the ``planner_calls`` counter is exact.
        """
        self._metrics.counter("planner_calls").inc()
        if not self.obs.enabled:
            return self.registry.plan(request)
        now = self._sim.now if self._sim is not None else 0.0
        span_id = self.obs.tracer.begin(
            now, "planner", request.method, purpose=purpose
        )
        deployment = self.registry.plan(request)
        self.obs.tracer.end(
            now, span_id, nodes=len(deployment.hierarchy)
        )
        return deployment

    def _epoch_metrics(
        self,
        *,
        sim: Simulator,
        system: MiddlewareSystem,
        observation: WindowObservation,
        completions: IntervalCounter,
        dead_letters_base: int,
        resubmissions_base: int,
        lost_base: int,
        faults,
        detections,
        step_records,
        migration_window: float,
        capacity: float,
        deployed_nodes: int,
        spares: int,
        offered: int,
        demand_unit: float,
        applied: bool,
        evictions: int,
        fluid_rate: float = 0.0,
        fluid_total: int = 0,
    ) -> MetricsSnapshot:
        """Fold one epoch's deterministic state into the registry and
        freeze it.

        Every input is a pure function of simulation state — engine and
        middleware counters, the monitor's window, the epoch's migration
        and detection records — so the returned snapshot is identical
        whether or not a tracer records (asserted by the obs test
        battery).  Cumulative counters adopt their authoritative totals;
        per-epoch quantities increment.
        """
        metrics = self._metrics
        metrics.counter("conversations_served").set_total(completions.count)
        metrics.counter("conversations_dead_lettered").set_total(
            dead_letters_base + system.dead_letters
        )
        metrics.counter("conversations_resubmitted").set_total(
            resubmissions_base + system.resubmissions
        )
        metrics.counter("conversations_lost").set_total(
            lost_base + system.lost_conversations
        )
        metrics.counter("engine_events").set_total(sim.events_processed)
        metrics.counter("engine_heap_compactions").set_total(
            sim.heap_compactions
        )
        metrics.counter("faults_injected").inc(len(faults))
        metrics.counter("detections_confirmed").inc(len(detections))
        metrics.counter("redeploys").inc(1 if applied else 0)
        metrics.counter("evictions").inc(evictions)
        metrics.counter("migration_steps").inc(len(step_records))
        metrics.counter("migration_downtime_seconds").inc(
            sum(step.downtime for step in step_records)
        )
        metrics.counter("migration_window_seconds").inc(migration_window)
        cache = self._evaluator.cache_info()
        metrics.counter("evaluator_cache_hits").set_total(cache["hits"])
        metrics.counter("evaluator_cache_misses").set_total(cache["misses"])
        lookups = cache["hits"] + cache["misses"]
        metrics.gauge("evaluator_cache_hit_rate").set(
            cache["hits"] / lookups if lookups else 0.0
        )
        metrics.gauge("offered_clients").set(offered)
        metrics.gauge("served_rate").set(observation.served_rate)
        metrics.gauge("capacity").set(capacity)
        metrics.gauge("deployed_nodes").set(deployed_nodes)
        metrics.gauge("spares").set(spares)
        metrics.gauge("queue_depth").set(observation.queue_depth)
        metrics.gauge("busiest_utilization").set(
            observation.busiest_utilization
        )
        metrics.gauge("suspect_nodes").set(len(observation.suspect_nodes))
        metrics.gauge("demand_unit_estimate").set(demand_unit)
        # Hybrid-population split: all four stay 0 on all-discrete runs,
        # set unconditionally so every epoch's snapshot has a uniform
        # key set (tracing on/off and hybrid/non-hybrid diffs stay
        # structural, never shape changes).
        metrics.gauge("fluid_clients").set(observation.fluid_clients)
        metrics.gauge("cohort_clients").set(observation.cohort)
        metrics.gauge("fluid_served_rate").set(fluid_rate)
        metrics.counter("fluid_served_total").set_total(fluid_total)
        for detection in detections:
            if detection.latency is not None:
                metrics.histogram("detection_latency").observe(
                    detection.latency
                )
        for step in step_records:
            metrics.histogram("migration_step_seconds").observe(step.seconds)
        return metrics.snapshot()

    def _excise_confirmed(
        self,
        system: MiddlewareSystem,
        monitor: SLOMonitor,
        confirmed: tuple,
        now: float,
    ) -> list[DetectionRecord]:
        """Cut every newly confirmed subtree out of the live system.

        Ancestors first: confirming an agent takes its whole subtree
        with it, so a server confirmed in the same window is skipped if
        an ancestor's excision already removed it.  Each excision runs
        the ordinary dead-letter machinery — in-flight conversations
        resubmit elsewhere — and yields a :class:`DetectionRecord`
        pairing the measured suspicion timeline with the (accounting
        only) injection time.
        """
        by_name = {str(node): node for node in system.hierarchy}
        ordered = sorted(
            confirmed,
            key=lambda name: (
                system.hierarchy.depth(by_name[name])
                if name in by_name
                else len(by_name),
                name,
            ),
        )
        records: list[DetectionRecord] = []
        for name in ordered:
            if name not in system.agents and name not in system.servers:
                continue  # excised with an ancestor this pass
            report = monitor.detection_report(name)
            suspected_at, confirmed_at = (
                report if report is not None else (now, now)
            )
            if name in system.servers:
                members, dead = system.fail_server(name)
            else:
                members, dead = system.fail_subtree(name)
            records.append(
                DetectionRecord(
                    node=name,
                    nodes=members,
                    injected_at=self._pending_injections.get(name),
                    suspected_at=suspected_at,
                    confirmed_at=confirmed_at,
                    dead_letters=dead,
                )
            )
        return records

    def _spares_for(self, hierarchy: Hierarchy):
        deployed = {str(node) for node in hierarchy}
        return [
            node
            for node in self.pool
            if node.name not in deployed
            and node.name not in self._failed_names
            and node.name not in self._evicted_names
        ]

    def _split_spares(self, spares) -> tuple[list, list]:
        """``(scalable, reserved)`` — strongest spares held for repairs.

        The reserve takes the highest-power spares (ties by name): a
        repair wants the best material available, and holding the best
        back costs scale-ups the least relative capacity.  With no
        reserve configured the split is the identity.
        """
        if self._reserve_target <= 0 or not spares:
            return list(spares), []
        ranked = sorted(spares, key=lambda node: (-node.power, node.name))
        reserved = ranked[: self._reserve_target]
        held = {node.name for node in reserved}
        scalable = [node for node in spares if node.name not in held]
        return scalable, reserved

    @staticmethod
    def _server_shares(hierarchy: Hierarchy) -> tuple:
        """Power-proportional modeled share per deployed server."""
        powers = {
            str(node): hierarchy.power(node) for node in hierarchy.servers
        }
        total = sum(powers.values())
        if total <= 0.0:
            return ()
        return tuple(
            (name, power / total) for name, power in sorted(powers.items())
        )

    def _live_pool(self) -> NodePool:
        """The pool minus crashed and evicted nodes — what planning may
        still use."""
        unusable = self._failed_names | self._evicted_names
        if not unusable:
            return self.pool
        return self.pool.without(unusable)

    def _effective_capacity(
        self, system: MiddlewareSystem, hierarchy: Hierarchy
    ) -> float:
        """Modeled throughput of the *reachable* part of the deployment.

        Partitioned subtrees are still in the logical tree but serve
        nothing (their fan-out edge is severed), so capacity is modeled
        over the tree with them pruned out.  A platform whose servers
        are all dark has zero capacity — the model is never consulted
        on a serverless tree.

        Under timeout-modelled detection the oracle partition registry
        is off-limits — the controller only knows what the watchdogs
        told it — so capacity is the model over the tree it believes
        in (confirmed subtrees were already excised from it).
        """
        dark: set[str] = set()
        if self.detection is None:
            for members in system.partitioned_subtrees.values():
                dark.update(members)
        reachable = hierarchy
        if dark:
            reachable = _hierarchy_without(hierarchy, dark)
        if not reachable.servers:
            return 0.0
        return self._evaluator.evaluate(
            reachable, self.app_work
        ).throughput

    def _plan_full_capacity(self, exclude: frozenset = frozenset()):
        """Demand-free replan over the live pool, memoized per run.

        ``exclude`` holds names additionally withheld (the repair
        reserve, for policy-driven restructures).  The memo is keyed by
        it and dropped whenever attrition (crash, confirmation,
        eviction) shrinks the pool, so each entry is always the
        maximum-capacity plan over the nodes it may actually use.
        """
        plan = self._capacity_plans.get(exclude)
        if plan is None:
            pool = self._live_pool()
            if exclude:
                pool = pool.without(exclude & set(pool.names))
            plan = self._capacity_plans[exclude] = self._traced_plan(
                PlanRequest(
                    pool=pool,
                    app_work=self.app_work,
                    params=self.params,
                    method=self.base_method,
                    seed=self.seed,
                ),
                purpose="full-capacity",
            )
        return plan

    def _build_system(
        self, sim: Simulator, hierarchy: Hierarchy, generation: int
    ) -> MiddlewareSystem:
        return MiddlewareSystem(
            sim,
            hierarchy,
            self.params,
            self.app_work,
            trace=self.recorder,
            seed=self.seed + generation,
            detection=self.detection,
            obs=self.obs,
        )

    def _plan_and_price(
        self, current: Hierarchy, candidate: Hierarchy
    ) -> tuple[MigrationPlan | None, float]:
        """Migration recipe and predicted downtime under the active mode.

        Live plans price at their service-weighted outage (per-subtree
        drains); everything else — restart mode, or diffs the plan
        engine could only realize as a rebuild — prices at the full
        stop-the-world cost.  Restart mode skips the tree diff
        entirely (``plan`` is ``None``): it would be discarded unused,
        and its cost would inflate the adaptation-overhead telemetry
        the benchmark suite tracks.
        """
        if self.migration in _LIVE_MODES:
            plan = plan_migration(current, candidate)
            if plan.is_live:
                return plan, self.cost_model.plan_outage_seconds(
                    plan, self.params
                )
            return plan, self.cost_model.cost_seconds(
                current, candidate, self.params
            )
        return None, self.cost_model.cost_seconds(
            current, candidate, self.params
        )

    def _dispatch_commands(
        self, plan: MigrationPlan, candidate: Hierarchy, epoch: int
    ) -> tuple[MigrationPlan, tuple]:
        """Run one plan through the master/daemon command protocol.

        The master side of the act-stage split: serialize ``plan`` into
        versioned :class:`~repro.control.protocol.MigrationCommand`
        wires against the registry's current generation, hand them to
        the configured executor (whose stateless daemons rebuild the
        deployment from a registry snapshot and apply the batch), then
        verify every ack — command-id correlation, per-command digest
        against the master's own replay, and the final tree against the
        decided ``candidate``.  Any disagreement is a
        :class:`~repro.errors.ProtocolError`, never a silent repair.

        Returns ``(plan, commands)`` where ``plan`` is the **wire-
        round-tripped** plan (rebuilt from the parsed command wires) —
        the simulated apply executes that one, so a serialization bug
        cannot hide behind the in-memory original.
        """
        registry = self.deployment_registry
        generation = registry.generation
        commands = plan_commands(plan, generation, epoch)
        wires = [command.to_wire() for command in commands]
        reports = self._executor.execute(registry.snapshot(), wires)
        if len(reports) != len(commands):
            raise ProtocolError(
                f"executor returned {len(reports)} report(s) for "
                f"{len(commands)} command(s)"
            )
        replay = registry.current()
        for command, wire in zip(commands, reports):
            report = parse_report(wire)
            if (
                report.command_id != command.command_id
                or report.root != command.root
                or report.generation != generation
                or report.status != "applied"
            ):
                raise ProtocolError(
                    f"bad ack for {command.command_id}: "
                    f"got id={report.command_id!r} root={report.root!r} "
                    f"generation={report.generation} "
                    f"status={report.status!r}"
                )
            apply_steps(replay, command.steps)
            if report.digest != tree_digest(replay):
                raise ProtocolError(
                    f"digest mismatch on {command.command_id}: the "
                    "daemon built a different tree than the master's "
                    "replay"
                )
        if not hierarchies_equal(replay, candidate):
            raise ProtocolError(
                "executed command batch does not reproduce the decided "
                "deployment"
            )
        round_tripped = commands_to_plan(
            tuple(parse_command(wire) for wire in wires)
        )
        return round_tripped, commands

    def _apply_live(
        self,
        sim: Simulator,
        system: MiddlewareSystem,
        plan: MigrationPlan,
        target: Hierarchy,
    ) -> tuple[MigrationStepRecord, ...]:
        """Execute an incremental plan region by region on the live system.

        Per drained region: unlink the subtree from the fan-out, run the
        engine until the region's in-flight work has gone quiet (capped
        by the cost model's ``drain_seconds``), bill the configuration
        pushes, apply the structural steps, and restore the fan-out
        edge.  Drain-free growth regions bill configuration only — the
        platform serves at full capacity throughout.
        """
        records: list[MigrationStepRecord] = []
        deployed = max(1, plan.source_nodes)
        for region in plan.regions:
            start = sim.now
            drained = tuple(str(node) for node in region.drained)
            if drained:
                system.unlink(str(region.root), drained)
                busy = system.region_busy_predicate(drained)
                sim.run_until_condition(
                    sim.now + self.cost_model.drain_seconds,
                    lambda: not busy(),
                )
            config = self.cost_model.region_config_seconds(
                region, self.params
            )
            if config > 0.0:
                sim.run_until(sim.now + config)
            self._finish_region(sim, system, region, drained, target)
            records.append(
                MigrationStepRecord(
                    op="drain" if drained else "grow",
                    target=str(region.root),
                    seconds=sim.now - start,
                    drained_nodes=len(drained),
                    deployed_nodes=deployed,
                    started_at=start,
                )
            )
        system.complete_migration(target)
        return tuple(records)

    def _finish_region(
        self,
        sim: Simulator,
        system: MiddlewareSystem,
        region,
        drained: tuple[str, ...],
        target: Hierarchy,
    ) -> None:
        """Apply one region's structural steps and restore its fan-out."""
        system.apply_migration(region.steps)
        if drained and region.root in target:
            parent = target.parent(region.root)
            if parent is not None:
                system.ensure_linked(str(region.root), str(parent))

    def _apply_concurrent(
        self,
        sim: Simulator,
        system: MiddlewareSystem,
        plan: MigrationPlan,
        target: Hierarchy,
    ) -> tuple[MigrationStepRecord, ...]:
        """Execute an incremental plan wave by wave, regions in parallel.

        Every region of a dependency wave is unlinked at the wave's
        start; the engine then advances under interleaved
        :meth:`~repro.sim.engine.Simulator.run_until_condition` drains,
        and each region is reconfigured and resumed the moment its own
        subtree has gone quiet (capped by ``drain_seconds``) and its
        config push has elapsed — while its wave-mates are still
        draining.  The wave ends when its last region resumes; the next
        wave (whose regions depend on this one's attaches/promotes)
        then starts.  Step records carry overlapping intervals:
        ``started_at`` is shared per wave while windows differ.

        Determinism: regions are scanned in plan order, config
        completions are totally ordered by ``(time, plan order)``, and
        every pause point is a pure function of simulation state — the
        same contract as the serial executor, which the regression
        tests compare against run by run.
        """
        records: list[MigrationStepRecord] = []
        deployed = max(1, plan.source_nodes)
        for wave_index, wave in enumerate(plan.concurrent_schedule()):
            start = sim.now
            # Wave-aware drain budget: the serial executor grants each
            # region the full cap back to back, but a wave drains its
            # regions *simultaneously* — so the wave shares one cap,
            # split proportionally to each region's drained-node count.
            # A single-region wave keeps the full cap bit-exactly
            # (its share is 1.0), so serial-shaped plans are unchanged.
            total_drained = sum(len(region.drained) for region in wave)
            cap_for: dict[str, float] = {}
            # root -> (region, members, quiet predicate), plan order.
            draining: dict[str, tuple] = {}
            # (config done, plan order, region, members) — min-heap.
            ready: list[tuple[float, int, object, tuple[str, ...]]] = []
            for order, region in enumerate(wave):
                drained = tuple(str(node) for node in region.drained)
                if drained:
                    system.unlink(str(region.root), drained)
                    cap_for[str(region.root)] = (
                        start
                        + self.cost_model.drain_seconds
                        * (len(drained) / total_drained)
                    )
                    draining[str(region.root)] = (
                        region,
                        drained,
                        system.region_busy_predicate(drained),
                    )
                else:
                    config = self.cost_model.region_config_seconds(
                        region, self.params
                    )
                    heapq.heappush(ready, (start + config, order, region, ()))
            offset = len(wave)
            while draining or ready:
                horizon = min(
                    ([ready[0][0]] if ready else [])
                    + [cap_for[root] for root in draining]
                )
                if draining and horizon > sim.now:
                    busy_probes = [
                        probe for (_, _, probe) in draining.values()
                    ]
                    sim.run_until_condition(
                        horizon,
                        lambda: any(not probe() for probe in busy_probes),
                    )
                elif horizon > sim.now:
                    sim.run_until(horizon)
                # Quiet (or capped-out) regions start their config push.
                for root in list(draining):
                    region, drained, probe = draining[root]
                    if not probe() or sim.now >= cap_for[root]:
                        config = self.cost_model.region_config_seconds(
                            region, self.params
                        )
                        heapq.heappush(
                            ready, (sim.now + config, offset, region, drained)
                        )
                        offset += 1
                        del draining[root]
                # Regions whose config window has closed resume now.
                while ready and ready[0][0] <= sim.now + 1e-12:
                    _, _, region, drained = heapq.heappop(ready)
                    self._finish_region(sim, system, region, drained, target)
                    records.append(
                        MigrationStepRecord(
                            op="drain" if drained else "grow",
                            target=str(region.root),
                            seconds=sim.now - start,
                            drained_nodes=len(drained),
                            deployed_nodes=deployed,
                            started_at=start,
                        )
                    )
            if self.obs.enabled:
                self.obs.tracer.span(
                    start, sim.now, "migration",
                    f"wave:{wave_index}", regions=len(wave),
                )
        system.complete_migration(target)
        return tuple(records)

    def _realize(
        self,
        decision: ControlDecision,
        hierarchy: Hierarchy,
        spares,
        capacity: float,
        observation: WindowObservation,
        reserved=(),
    ) -> tuple[
        Hierarchy | None, str, float, float, MigrationPlan | None
    ]:
        """Turn a decision into ``(candidate, reason, cost, rho, plan)``.

        ``candidate`` is ``None`` (cost, rho 0, plan ``None``) when the
        decision is a no-op or the migration-cost gate vetoes it;
        ``reason`` then says why.  ``rho`` is the candidate's modeled
        throughput — already computed by the improve/replan machinery,
        so the caller never re-evaluates the model — and ``plan`` the
        migration recipe the act stage executes.

        ``spares`` is the *scalable* spare set; ``reserved`` the
        repair reserve held back from scale-ups.  ``improve`` and
        policy replans see only the former; ``repair`` and ``evict``
        draw on both.
        """
        reason = decision.reason
        if decision.action == "hold":
            return None, reason, 0.0, 0.0, None
        if decision.action == "evict":
            return self._realize_evict(
                decision, hierarchy, list(spares) + list(reserved), reason
            )
        if decision.action == "improve":
            if not spares:
                qualifier = (
                    "spares held in repair reserve" if reserved
                    else "no spares"
                )
                return None, f"{reason} [no-op: {qualifier}]", 0.0, 0.0, None
            result = improve_deployment(
                hierarchy, list(spares), self.params, self.app_work
            )
            gain = result.final_throughput - result.initial_throughput
            if not result.actions or gain <= capacity * _REL_TOL:
                return (
                    None, f"{reason} [no-op: no improving move]",
                    0.0, 0.0, None,
                )
            return self._gate_scale_up(
                result.hierarchy, hierarchy, result.final_throughput,
                gain, observation, reason,
            )
        if decision.action == "repair":
            # Healing is exempt from the amortization veto: the platform
            # is damaged, and the gate's served-rate arithmetic would
            # read the post-fault slump as "not worth migrating for".
            # It is also what the reserve exists for, so repairs splice
            # from the scalable spares *and* the reserve.
            repair_spares = list(spares) + list(reserved)
            if repair_spares:
                try:
                    result = improve_deployment(
                        hierarchy, repair_spares, self.params, self.app_work
                    )
                except HierarchyError:
                    # Crash surgery can leave survivors the strict
                    # validator rejects (single-child agents); the
                    # bottleneck-removal mechanism cannot start from
                    # such a tree, so fall through to a full replan.
                    result = None
                if (
                    result is not None
                    and result.actions
                    and result.final_throughput - capacity
                    > capacity * _REL_TOL
                ):
                    plan, cost = self._plan_and_price(
                        hierarchy, result.hierarchy
                    )
                    return (
                        result.hierarchy, reason, cost,
                        result.final_throughput, plan,
                    )
            # No spares, or splicing could not raise capacity:
            # restructure the survivors from scratch over the live pool.
            planned = self._plan_full_capacity()
            if (
                self.cost_model.touched_nodes(hierarchy, planned.hierarchy)
                > 0
                and planned.throughput > capacity * (1.0 + _REL_TOL)
            ):
                plan, cost = self._plan_and_price(
                    hierarchy, planned.hierarchy
                )
                return (
                    planned.hierarchy, reason, cost,
                    planned.throughput, plan,
                )
            return (
                None, f"{reason} [no-op: no repair raises capacity]",
                0.0, 0.0, None,
            )
        # replan
        if decision.demand is not None and CAP_DEMAND not in self.registry.get(
            self.base_method
        ).capabilities:
            # A demand-blind planner would plan the full pool for maximum
            # throughput — turning a shrink decision into a scale-up, the
            # opposite of what the policy asked for.
            return None, (
                f"{reason} [no-op: planner {self.base_method!r} ignores "
                "demand caps]"
            ), 0.0, 0.0, None
        # Policy-driven replans never touch the repair reserve; only
        # repair (above) and evict may spend it.
        held = frozenset(node.name for node in reserved)
        if decision.demand is None:
            # Demand-free replans (the saturation restructure above all)
            # are a pure function of run constants — live pool, work,
            # params, method, seed — so a persistently saturated policy
            # proposing one every epoch must not pay the planner again
            # each time.  (The memo drops whenever attrition shrinks
            # the pool.)
            planned = self._plan_full_capacity(held)
        else:
            pool = self._live_pool()
            if held:
                pool = pool.without(held & set(pool.names))
            planned = self._traced_plan(
                PlanRequest(
                    pool=pool,
                    app_work=self.app_work,
                    demand=decision.demand,
                    params=self.params,
                    method=self.base_method,
                    seed=self.seed,
                ),
                purpose="demand",
            )
        candidate = planned.hierarchy
        if self.cost_model.touched_nodes(hierarchy, candidate) == 0:
            return (
                None, f"{reason} [no-op: replan kept the deployment]",
                0.0, 0.0, None,
            )
        gain = planned.throughput - capacity
        if gain > capacity * _REL_TOL:
            return self._gate_scale_up(
                candidate, hierarchy, planned.throughput, gain,
                observation, reason,
            )
        if decision.demand is None:
            # A demand-free replan is capacity-seeking (the saturation
            # restructure, or any policy asking for maximum throughput):
            # a reshaped tree that does not raise modeled capacity is
            # churn, not relief, so it is never applied.
            return None, (
                f"{reason} [no-op: full-capacity replan does not raise "
                "modeled capacity]"
            ), 0.0, 0.0, None
        # Scale-down (or sideways): efficiency move, no throughput gate —
        # but never below the configured deployment floor.
        if len(candidate) < self.min_nodes:
            return None, (
                f"{reason} [no-op: candidate has {len(candidate)} nodes, "
                f"below min_nodes={self.min_nodes}]"
            ), 0.0, 0.0, None
        plan, cost = self._plan_and_price(hierarchy, candidate)
        return candidate, reason, cost, planned.throughput, plan

    def _realize_evict(
        self,
        decision: ControlDecision,
        hierarchy: Hierarchy,
        all_spares: list,
        reason: str,
    ) -> tuple[
        Hierarchy | None, str, float, float, MigrationPlan | None
    ]:
        """Drain-and-replace a persistently degraded server.

        The target leaf is swapped for the strongest available spare
        under the same parent — an ordinary one-region migration, so
        live modes drain only that subtree.  Like repair, eviction is
        exempt from the amortization veto: it is triage, not a
        throughput play (the replacement may even be weaker on paper —
        the model's rate for the evictee was a lie).
        """
        target = decision.targets[0]
        if not all_spares:
            return None, f"{reason} [no-op: no spares]", 0.0, 0.0, None
        server_names = {str(node) for node in hierarchy.servers}
        if target not in server_names:
            return None, (
                f"{reason} [no-op: {target} is not a deployed server]"
            ), 0.0, 0.0, None
        replacement = max(
            all_spares, key=lambda node: (node.power, node.name)
        )
        candidate = hierarchy.copy()
        doomed = {str(node): node for node in candidate}[target]
        parent = candidate.parent(doomed)
        candidate.remove_leaf(doomed)
        candidate.add_server(replacement.name, replacement.power, parent)
        candidate.validate(strict=False)
        rho = self._evaluator.evaluate(
            candidate, self.app_work, validate=False
        ).throughput
        plan, cost = self._plan_and_price(hierarchy, candidate)
        return candidate, reason, cost, rho, plan

    def _gate_scale_up(
        self,
        candidate: Hierarchy,
        current: Hierarchy,
        rho: float,
        gain: float,
        observation: WindowObservation,
        reason: str,
    ) -> tuple[
        Hierarchy | None, str, float, float, MigrationPlan | None
    ]:
        """Veto scale-ups whose gain cannot amortize the migration loss."""
        plan, cost = self._plan_and_price(current, candidate)
        lost_requests = cost * observation.served_rate
        horizon = self.amortize_epochs * self.epoch_duration
        if plan is not None and plan.is_live:
            # The gain only accrues once the migration window closes, so
            # the amortization horizon shrinks by the window of the
            # schedule that will actually run.  Concurrent waves close
            # it sooner (each wave pays only its slowest region), so for
            # the identical plan the concurrent gate is never stricter
            # than the serial-live one — which is what makes heavily
            # multi-region plans, restructures above all, affordable.
            window = self.cost_model.plan_window_seconds(
                plan, self.params,
                concurrent=self.migration == "concurrent",
            )
            horizon = max(0.0, horizon - window)
        gained_requests = gain * horizon
        if gained_requests <= lost_requests:
            return None, (
                f"{reason} [vetoed: migration loses "
                f"{lost_requests:.0f} requests vs {gained_requests:.0f} "
                f"gained over {self.amortize_epochs} epochs]"
            ), 0.0, 0.0, None
        return candidate, reason, cost, rho, plan
