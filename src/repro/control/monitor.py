"""Windowed SLO observation over the simulated platform.

The control loop's *sense* stage.  :class:`SLOMonitor` watches one
:class:`~repro.middleware.system.MiddlewareSystem` at a time and, once per
control epoch, condenses the window into a :class:`WindowObservation`:
served throughput (from a completion counter the controller owns, so the
series survives redeploys), per-tier utilization (agents vs. servers,
computed over the *window* by diffing
:meth:`~repro.sim.resources.SerialResource.busy_seconds` snapshots — the
cumulative :meth:`~repro.sim.resources.SerialResource.utilization` would
smear the past into the present), and queue depth (work items waiting
across every node resource, the earliest saturation signal).

The monitor is strictly read-only with respect to the simulation: it
never schedules events, so attaching it cannot perturb a run.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import ControlError
from repro.middleware.system import MiddlewareSystem
from repro.sim.stats import IntervalCounter

__all__ = ["WindowObservation", "SLOMonitor", "merge_fluid"]


@dataclass(frozen=True)
class WindowObservation:
    """What the monitor saw during one control epoch.

    Attributes
    ----------
    index:
        Epoch number (0-based).
    start, end:
        Window bounds in simulation time.
    offered:
        Target client population during the window (the trace level).
    served:
        Requests completed inside the window.
    served_rate:
        ``served / (end - start)`` — requests/s.
    agent_utilization:
        Busiest agent's busy fraction over the window.
    server_utilization:
        Mean server busy fraction over the window.
    busiest_node, busiest_utilization:
        The window's bottleneck node — the live analogue of the model's
        limiting element.
    queue_depth:
        Work items waiting across all node resources at window end.
    failed_nodes:
        Nodes *newly* observed failed during this window (each failure
        is reported exactly once, in the window it happened).  Under
        oracle health this mirrors ``system.failed_nodes``; under
        timeout-modelled detection it holds *newly confirmed* suspects
        only — the monitor never reads the oracle registries.
    degraded_nodes:
        Nodes running below nominal rate at window end (oracle health
        only; empty under detection — stragglers surface through
        ``server_rates`` instead).
    partitioned_nodes:
        Roots of subtrees partitioned off the fan-out at window end
        (oracle health only; a silent partition manifests as suspicion).
    suspect_nodes:
        Detection only: nodes past the suspicion threshold at window
        end, still inside their grace window.
    reintegrated_nodes:
        Detection only: previously suspect nodes that answered within
        the grace window and dropped back to healthy this window.
    server_rates:
        ``(name, served_per_second)`` per deployed server over this
        window — the raw material of the eviction rule.
    fluid_clients:
        Mean fluid client mass carried analytically during this window
        (0.0 on ordinary all-discrete runs).  On hybrid runs the
        observation is *merged* — ``offered``/``served``/``served_rate``
        and ``server_rates`` already include the fluid contribution
        (see :func:`merge_fluid`), and this field plus ``cohort`` record
        how the total splits.
    fluid_served:
        Whole completions attributed to the fluid mass this window.
    cohort:
        Discrete sampled clients actually simulated this window (equals
        ``offered`` on all-discrete runs where it is left 0 — a 0 here
        means "no hybrid split", not "no clients").
    """

    index: int
    start: float
    end: float
    offered: int
    served: int
    served_rate: float
    agent_utilization: float
    server_utilization: float
    busiest_node: str
    busiest_utilization: float
    queue_depth: int
    failed_nodes: tuple = ()
    degraded_nodes: tuple = ()
    partitioned_nodes: tuple = ()
    suspect_nodes: tuple = ()
    reintegrated_nodes: tuple = ()
    server_rates: tuple = ()
    fluid_clients: float = 0.0
    fluid_served: int = 0
    cohort: int = 0

    @property
    def per_client_rate(self) -> float:
        """Requests/s each offered client achieved (0 when idle)."""
        if self.offered <= 0:
            return 0.0
        return self.served_rate / self.offered


def merge_fluid(
    observation: WindowObservation,
    window,
    offered: int,
    allocation: tuple,
    capacity: float,
) -> WindowObservation:
    """Fold a fluid window into a cohort-only observation.

    ``observation`` is what :meth:`SLOMonitor.observe` saw of the
    discrete sampled cohort; ``window`` the matching
    :class:`~repro.sim.fluid.FluidWindow`; ``offered`` the *total*
    population (trace level); ``allocation`` the per-server
    ``(name, rate)`` fluid shares from
    :meth:`~repro.middleware.system.MiddlewareSystem.assign_fluid_rates`;
    ``capacity`` the residual model throughput the fluid mass was
    integrated against.

    The merged observation is what policies see: ``offered`` is the
    total, ``served``/``served_rate``/``server_rates`` combine both
    halves, and ``busiest_utilization`` is raised to the fluid
    utilization (fluid served rate over residual capacity, capped at 1)
    when the fluid side is the hotter one — without this, no measured
    node utilization would ever reflect a capacity-saturated fluid mass
    and reactive scale-up could not fire at 10⁶-client scale.  The
    split itself is preserved in ``fluid_clients`` / ``fluid_served`` /
    ``cohort``.  ``served_rate`` keeps the fluid side's *fractional*
    mass (more faithful than the floor-carried integer ``served``), so
    ``served_rate * duration`` and ``served`` may differ by < 1.
    """
    if capacity > 0.0:
        fluid_utilization = min(1.0, window.served_rate / capacity)
    else:
        fluid_utilization = 1.0 if window.demand_rate > 0.0 else 0.0
    # Merge over the *union* of both key sets: a server that entered the
    # deployment between the observe snapshot and assign_fluid_rates
    # (mid-epoch repair splice) appears in `allocation` but not yet in
    # `observation.server_rates`, and dropping it would silently erase
    # its fluid share — undercounting exactly the server the eviction
    # lag rule is about to judge.  Both inputs are name-sorted, so the
    # sorted union keeps the merged tuple deterministic.
    merged = {name: rate for name, rate in observation.server_rates}
    for name, share in allocation:
        merged[name] = merged.get(name, 0.0) + share
    merged_rates = tuple(sorted(merged.items()))
    return replace(
        observation,
        offered=offered,
        served=observation.served + window.served,
        served_rate=observation.served_rate + window.served_rate,
        busiest_utilization=max(
            observation.busiest_utilization, fluid_utilization
        ),
        server_rates=merged_rates,
        fluid_clients=window.offered_mean,
        fluid_served=window.served,
        cohort=observation.offered,
    )


class SLOMonitor:
    """Windowed observer over the running (simulated) platform.

    Parameters
    ----------
    completions:
        The controller-owned completion counter.  Owning it here rather
        than reading ``system.completions`` keeps the served series
        continuous across redeploys, when the system object is replaced.
    """

    def __init__(self, completions: IntervalCounter):
        self.completions = completions
        self._system: MiddlewareSystem | None = None
        self._busy_snapshot: dict[str, float] = {}
        self._snapshot_time = 0.0
        # Failures already reported — cumulative across attaches, so a
        # redeploy (which replaces the system object) cannot make an old
        # failure look new again.
        self._failed_seen: set[str] = set()
        # Per-server completed-services snapshot (window rates).
        self._served_snapshot: dict[str, int] = {}
        # Suspicion lifecycle (timeout-modelled detection only).
        # healthy → suspect (threshold crossed) → confirmed-dead (grace
        # elapsed with no answer); an answer at any point before
        # confirmation re-integrates the node.
        self._detection = None
        self._suspect_since: dict[str, float] = {}
        self._was_suspect: set[str] = set()
        # node -> (suspected_at, confirmed_at); confirmations are final
        # and reported exactly once, in the window they happen.
        self._confirmed: dict[str, tuple[float, float]] = {}

    # ------------------------------------------------------------------ #

    def attach(self, system: MiddlewareSystem) -> None:
        """Point the monitor at a (new) platform and reset busy baselines."""
        self._system = system
        self._detection = getattr(system, "detection", None)
        # A name that re-entered the deployment (repair splices a spare,
        # a later redeploy reuses the name) is alive again: drop it from
        # the already-reported sets so a *second* failure of the reused
        # name is reported — without this, `_failed_seen` grows forever
        # and swallows every repeat failure, and a confirmed suspicion
        # would outlive the node it was about.
        deployed = set(system.agents) | set(system.servers)
        self._failed_seen -= deployed
        for name in deployed:
            self._confirmed.pop(name, None)
        self._snapshot_time = system.sim.now
        self._busy_snapshot = {
            name: element.resource.busy_seconds()
            for name, element in self._elements(system)
        }
        self._served_snapshot = {
            name: server.services_done
            for name, server in system.servers.items()
        }

    @staticmethod
    def _elements(system: MiddlewareSystem):
        yield from system.agents.items()
        yield from system.servers.items()

    def window_utilization(self) -> dict[str, float]:
        """Per-node busy fraction since the last attach/observe snapshot."""
        if self._system is None:
            raise ControlError("monitor is not attached to a system")
        elapsed = self._system.sim.now - self._snapshot_time
        if elapsed <= 0.0:
            return {name: 0.0 for name, _ in self._elements(self._system)}
        report = {}
        for name, element in self._elements(self._system):
            before = self._busy_snapshot.get(name, 0.0)
            busy = element.resource.busy_seconds() - before
            report[name] = min(1.0, max(0.0, busy / elapsed))
        return report

    def observe(
        self, index: int, start: float, end: float, offered: int
    ) -> WindowObservation:
        """Condense the window ``(start, end]`` into one observation.

        Also advances the busy-time snapshot, so consecutive calls yield
        independent windows.
        """
        if self._system is None:
            raise ControlError("monitor is not attached to a system")
        if end <= start:
            raise ControlError(f"bad observation window: ({start}, {end})")
        system = self._system
        utilization = self.window_utilization()
        agent_utils = {
            name: utilization[name] for name in system.agents
        }
        server_utils = [utilization[name] for name in system.servers]
        busiest = max(utilization, key=lambda k: (utilization[k], k))
        served = self.completions.count_in(start, end)
        queue_depth = sum(
            element.resource.queue_length
            for _, element in self._elements(system)
        )
        # Roll the snapshot forward for the next window.
        self._snapshot_time = system.sim.now
        self._busy_snapshot = {
            name: element.resource.busy_seconds()
            for name, element in self._elements(system)
        }
        duration = end - start
        server_rates = tuple(
            (
                name,
                (server.services_done - self._served_snapshot.get(name, 0))
                / duration,
            )
            for name, server in sorted(system.servers.items())
        )
        self._served_snapshot = {
            name: server.services_done
            for name, server in system.servers.items()
        }
        if self._detection is None:
            new_failed = tuple(sorted(system.failed_nodes - self._failed_seen))
            self._failed_seen.update(system.failed_nodes)
            degraded = tuple(sorted(system.degraded))
            partitioned = tuple(sorted(system.partitioned_subtrees))
            suspects: tuple = ()
            reintegrated: tuple = ()
        else:
            suspects, reintegrated, new_failed = self._suspicion_pass(
                system, end
            )
            # Inferred health only: the oracle registries stay unread.
            degraded = ()
            partitioned = ()
        return WindowObservation(
            index=index,
            start=start,
            end=end,
            offered=offered,
            served=served,
            served_rate=served / (end - start),
            agent_utilization=(
                max(agent_utils.values()) if agent_utils else 0.0
            ),
            server_utilization=(
                sum(server_utils) / len(server_utils) if server_utils else 0.0
            ),
            busiest_node=busiest,
            busiest_utilization=utilization[busiest],
            queue_depth=queue_depth,
            failed_nodes=new_failed,
            degraded_nodes=degraded,
            partitioned_nodes=partitioned,
            suspect_nodes=suspects,
            reintegrated_nodes=reintegrated,
            server_rates=server_rates,
        )

    # ------------------------------------------------------------------ #
    # suspicion lifecycle (timeout-modelled detection)

    def _suspicion_pass(
        self, system: MiddlewareSystem, now: float
    ) -> tuple[tuple, tuple, tuple]:
        """Advance every node's health state at a window boundary.

        Reads only the evidence a real aggregator would have — the
        liveness table the watchdogs feed — never the oracle registries.
        A node whose consecutive-timeout count crossed the threshold
        becomes *suspect*; a suspect that stays silent for the grace
        window is *confirmed* dead (final, reported once); a suspect
        that answers anything first drops back to healthy and is
        reported as re-integrated.  Returns ``(suspects, reintegrated,
        confirmed)``, each name-sorted.
        """
        grace = self._detection.grace
        suspects: list[str] = []
        reintegrated: list[str] = []
        confirmed: list[str] = []
        deployed = set(system.agents) | set(system.servers)
        for name, entry in system.liveness.items():
            if name in self._confirmed:
                continue  # confirmation is final
            if name not in deployed:
                # Excised (or migrated away) between windows: stale
                # suspicion must not outlive the node.
                self._suspect_since.pop(name, None)
                self._was_suspect.discard(name)
                continue
            if entry.crossed_at is None:
                if name in self._was_suspect:
                    reintegrated.append(name)
                    self._was_suspect.discard(name)
                self._suspect_since.pop(name, None)
                continue
            since = self._suspect_since.get(name)
            if since is None or entry.crossed_at > since:
                # First sighting — or the node answered (resetting the
                # crossing) and went silent again since the last window:
                # the grace clock restarts from the fresh crossing.
                since = self._suspect_since[name] = entry.crossed_at
            if now - since >= grace:
                confirmed.append(name)
                self._confirmed[name] = (since, now)
                self._suspect_since.pop(name, None)
                self._was_suspect.discard(name)
            else:
                suspects.append(name)
                self._was_suspect.add(name)
        return tuple(suspects), tuple(reintegrated), tuple(confirmed)

    def detection_report(self, name: str) -> tuple[float, float] | None:
        """``(suspected_at, confirmed_at)`` for a confirmed node, else None."""
        return self._confirmed.get(name)
