"""Windowed SLO observation over the simulated platform.

The control loop's *sense* stage.  :class:`SLOMonitor` watches one
:class:`~repro.middleware.system.MiddlewareSystem` at a time and, once per
control epoch, condenses the window into a :class:`WindowObservation`:
served throughput (from a completion counter the controller owns, so the
series survives redeploys), per-tier utilization (agents vs. servers,
computed over the *window* by diffing
:meth:`~repro.sim.resources.SerialResource.busy_seconds` snapshots — the
cumulative :meth:`~repro.sim.resources.SerialResource.utilization` would
smear the past into the present), and queue depth (work items waiting
across every node resource, the earliest saturation signal).

The monitor is strictly read-only with respect to the simulation: it
never schedules events, so attaching it cannot perturb a run.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ControlError
from repro.middleware.system import MiddlewareSystem
from repro.sim.stats import IntervalCounter

__all__ = ["WindowObservation", "SLOMonitor"]


@dataclass(frozen=True)
class WindowObservation:
    """What the monitor saw during one control epoch.

    Attributes
    ----------
    index:
        Epoch number (0-based).
    start, end:
        Window bounds in simulation time.
    offered:
        Target client population during the window (the trace level).
    served:
        Requests completed inside the window.
    served_rate:
        ``served / (end - start)`` — requests/s.
    agent_utilization:
        Busiest agent's busy fraction over the window.
    server_utilization:
        Mean server busy fraction over the window.
    busiest_node, busiest_utilization:
        The window's bottleneck node — the live analogue of the model's
        limiting element.
    queue_depth:
        Work items waiting across all node resources at window end.
    failed_nodes:
        Nodes *newly* observed failed during this window (each failure
        is reported exactly once, in the window it happened).
    degraded_nodes:
        Nodes running below nominal rate at window end.
    partitioned_nodes:
        Roots of subtrees partitioned off the fan-out at window end.
    """

    index: int
    start: float
    end: float
    offered: int
    served: int
    served_rate: float
    agent_utilization: float
    server_utilization: float
    busiest_node: str
    busiest_utilization: float
    queue_depth: int
    failed_nodes: tuple = ()
    degraded_nodes: tuple = ()
    partitioned_nodes: tuple = ()

    @property
    def per_client_rate(self) -> float:
        """Requests/s each offered client achieved (0 when idle)."""
        if self.offered <= 0:
            return 0.0
        return self.served_rate / self.offered


class SLOMonitor:
    """Windowed observer over the running (simulated) platform.

    Parameters
    ----------
    completions:
        The controller-owned completion counter.  Owning it here rather
        than reading ``system.completions`` keeps the served series
        continuous across redeploys, when the system object is replaced.
    """

    def __init__(self, completions: IntervalCounter):
        self.completions = completions
        self._system: MiddlewareSystem | None = None
        self._busy_snapshot: dict[str, float] = {}
        self._snapshot_time = 0.0
        # Failures already reported — cumulative across attaches, so a
        # redeploy (which replaces the system object) cannot make an old
        # failure look new again.
        self._failed_seen: set[str] = set()

    # ------------------------------------------------------------------ #

    def attach(self, system: MiddlewareSystem) -> None:
        """Point the monitor at a (new) platform and reset busy baselines."""
        self._system = system
        self._snapshot_time = system.sim.now
        self._busy_snapshot = {
            name: element.resource.busy_seconds()
            for name, element in self._elements(system)
        }

    @staticmethod
    def _elements(system: MiddlewareSystem):
        yield from system.agents.items()
        yield from system.servers.items()

    def window_utilization(self) -> dict[str, float]:
        """Per-node busy fraction since the last attach/observe snapshot."""
        if self._system is None:
            raise ControlError("monitor is not attached to a system")
        elapsed = self._system.sim.now - self._snapshot_time
        if elapsed <= 0.0:
            return {name: 0.0 for name, _ in self._elements(self._system)}
        report = {}
        for name, element in self._elements(self._system):
            before = self._busy_snapshot.get(name, 0.0)
            busy = element.resource.busy_seconds() - before
            report[name] = min(1.0, max(0.0, busy / elapsed))
        return report

    def observe(
        self, index: int, start: float, end: float, offered: int
    ) -> WindowObservation:
        """Condense the window ``(start, end]`` into one observation.

        Also advances the busy-time snapshot, so consecutive calls yield
        independent windows.
        """
        if self._system is None:
            raise ControlError("monitor is not attached to a system")
        if end <= start:
            raise ControlError(f"bad observation window: ({start}, {end})")
        system = self._system
        utilization = self.window_utilization()
        agent_utils = {
            name: utilization[name] for name in system.agents
        }
        server_utils = [utilization[name] for name in system.servers]
        busiest = max(utilization, key=lambda k: (utilization[k], k))
        served = self.completions.count_in(start, end)
        queue_depth = sum(
            element.resource.queue_length
            for _, element in self._elements(system)
        )
        # Roll the snapshot forward for the next window.
        self._snapshot_time = system.sim.now
        self._busy_snapshot = {
            name: element.resource.busy_seconds()
            for name, element in self._elements(system)
        }
        new_failed = tuple(sorted(system.failed_nodes - self._failed_seen))
        self._failed_seen.update(system.failed_nodes)
        return WindowObservation(
            index=index,
            start=start,
            end=end,
            offered=offered,
            served=served,
            served_rate=served / (end - start),
            agent_utilization=(
                max(agent_utils.values()) if agent_utils else 0.0
            ),
            server_utilization=(
                sum(server_utils) / len(server_utils) if server_utils else 0.0
            ),
            busiest_node=busiest,
            busiest_utilization=utilization[busiest],
            queue_depth=queue_depth,
            failed_nodes=new_failed,
            degraded_nodes=tuple(sorted(system.degraded)),
            partitioned_nodes=tuple(sorted(system.partitioned_subtrees)),
        )
