"""Autoscaling policies — the control loop's *decide* stage.

A policy looks at the monitor's windowed observations (plus the model's
capacity estimate of the live deployment) and chooses one of three
actions per epoch:

``hold``
    Keep the current deployment.
``improve``
    Grow the running deployment in place with
    :func:`repro.extensions.redeploy.improve_deployment` — the paper's
    prior-work mechanism, consuming spare nodes.  Cheap migration: only
    the touched nodes move.
``replan``
    Plan a fresh deployment over the whole pool through the planner
    registry, optionally capped to a demand target (requests/s) so the
    platform can also *shrink*.
``repair``
    Self-healing response to an *observed fault* (dead node, fresh
    partition): splice spare pool nodes over the gap — or restructure
    the survivors when no spares remain — through the same
    improve/replan machinery, exempt from the amortization veto.

Policies register by name (:func:`register_policy`) exactly like
planners, and declare :class:`PolicyOptions` dataclasses — the planner
registry's typed-option machinery (eager validation, CLI string
coercion) with :class:`~repro.errors.ControlError` as the error domain —
so ``repro-deploy control --policy NAME --policy-opt key=value`` and
third-party policies come for free:

* ``hold`` — the static no-op baseline (what the paper's one-shot plan
  amounts to);
* ``reactive`` — threshold rules on the window's bottleneck utilization
  and queue depth, gated by hysteresis (N consecutive windows) and a
  post-redeploy cooldown; when saturation persists with every pool node
  deployed it proposes a **same-nodes restructuring replan** (shape,
  not size — applied only if the reshaped tree raises modeled capacity
  and its migration price amortizes);
* ``predictive`` — linear lookahead on the offered-client trend, scaled
  through the throughput model's capacity estimate, acting *before*
  saturation (with the same restructure-at-full-occupancy escape);
* ``predictive_ewma`` — Holt-Winters-style exponentially smoothed
  level+trend forecast with an optional additive seasonal component,
  built for recurring shapes like the ``diurnal`` trace;
* ``oracle`` — reads the true future trace level and replans whenever
  required capacity drifts from deployed capacity.  An upper bound on
  responsiveness and a deliberately migration-oblivious baseline: it
  redeploys on every demand shift, so a good reactive policy should
  approach its served throughput with far fewer redeploys.

Every decision the loop applies is additionally priced through a
:class:`MigrationCostModel` (seconds of downtime derived from
:class:`~repro.core.params.ModelParams` communication constants) —
full-platform relaunch cost for stop-the-world restarts, service-weighted
per-subtree drain cost for live migration plans; scale-ups whose modeled
gain does not amortize the migration loss are vetoed by the loop.  The
live price is typically orders of magnitude below the restart price,
which is what lets policies act aggressively under live migration.
"""

from __future__ import annotations

import dataclasses
import inspect
from collections.abc import Mapping
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.control.traces import Trace
from repro.core.hierarchy import Hierarchy
from repro.core.params import ModelParams
from repro.core.registry import PlannerOptions
from repro.errors import ControlError, PlanningError

if TYPE_CHECKING:  # pragma: no cover
    from repro.control.monitor import WindowObservation
    from repro.deploy.migration import MigrationPlan

__all__ = [
    "MIGRATION_MODES",
    "ControlDecision",
    "ControlContext",
    "ControlPolicy",
    "MigrationCostModel",
    "register_policy",
    "available_policies",
    "make_policy",
    "PolicyOptions",
    "HoldOptions",
    "ReactiveOptions",
    "PredictiveOptions",
    "SeasonalPredictiveOptions",
    "OracleOptions",
    "StaticPolicy",
    "ReactivePolicy",
    "PredictivePolicy",
    "SeasonalPredictivePolicy",
    "OraclePolicy",
]


#: Valid :class:`~repro.control.loop.ControlLoop` migration modes.
#: Lives here (not in the loop module) so light CLI imports can build
#: their ``--migration`` choices without dragging in the sim stack.
MIGRATION_MODES = ("live", "concurrent", "restart")


@dataclass(frozen=True)
class ControlDecision:
    """One policy verdict for the upcoming epoch.

    ``demand`` is the capacity target (requests/s) of a ``replan`` —
    ``None`` means plan for maximum throughput.  Demand-free replans
    are *capacity-seeking*: the loop applies them only when the planned
    tree's modeled capacity exceeds the deployed one (anything else is
    churn), whereas a demand-capped replan may also shrink or move
    sideways.

    ``repair`` is the failure response: regrow capacity over the
    surviving deployment from spare pool nodes (or restructure the
    survivors when none remain).  It is realized through the same
    improve/replan machinery, but the loop exempts it from the scale-up
    amortization veto — a repair restores the SLO, it does not chase
    marginal gain.

    ``evict`` drains-and-replaces a persistently degraded server
    (named in ``targets``) with a spare through the ordinary migration
    machinery; like repair it is veto-exempt — cutting a straggler
    loose restores the SLO too.
    """

    action: str  # "hold" | "improve" | "replan" | "repair" | "evict"
    reason: str = ""
    demand: float | None = None
    #: Nodes the decision names explicitly (evict: the server to drain).
    targets: tuple = ()

    def __post_init__(self) -> None:
        if self.action not in (
            "hold", "improve", "replan", "repair", "evict"
        ):
            raise ControlError(
                f"unknown control action {self.action!r}; "
                "expected hold, improve, replan, repair or evict"
            )
        if self.demand is not None and self.demand <= 0.0:
            raise ControlError(
                f"replan demand must be > 0, got {self.demand}"
            )
        if self.action == "evict" and not self.targets:
            raise ControlError("evict decisions must name their targets")
        if self.targets and not all(
            isinstance(t, str) and t for t in self.targets
        ):
            raise ControlError(
                f"decision targets must be node names, got {self.targets!r}"
            )

    @classmethod
    def hold(cls, reason: str = "") -> "ControlDecision":
        return cls("hold", reason)


@dataclass(frozen=True)
class ControlContext:
    """Everything a policy may look at when deciding.

    Attributes
    ----------
    observations:
        Monitor history, oldest first; ``observations[-1]`` is the epoch
        that just finished.
    capacity:
        Model-predicted throughput (Eq. 16) of the live deployment.
    deployed_nodes, pool_size, spares:
        Node accounting; ``spares`` are pool nodes not deployed.
    min_nodes:
        Smallest deployment the controller will shrink to.
    epoch_duration, next_start:
        Epoch length and the upcoming epoch's start time.
    trace:
        The workload trace.  Only the oracle may *peek ahead* on it;
        causal policies must restrict themselves to ``observations``.
    demand_unit:
        Online estimate of the requests/s one unsaturated closed-loop
        client generates (0 while unknown) — the bridge from trace
        levels (clients) to capacity targets (requests/s).
    redeploys, epochs_since_redeploy:
        Redeploy accounting, the raw material of cooldown gates.
    repair_spares:
        Spares available to *repairs and evictions* specifically.  With
        a ``spare_reserve`` in force this exceeds ``spares`` (which
        counts only what scale-ups may consume); without one the loop
        leaves it 0 and repairs fall back to ``spares``.
    server_shares:
        ``(name, share)`` per deployed server — its power as a fraction
        of total deployed server power, i.e. the service share the model
        expects it to carry.  Compared against the observed
        ``WindowObservation.server_rates`` by the eviction rule.
    """

    observations: tuple[WindowObservation, ...]
    capacity: float
    deployed_nodes: int
    pool_size: int
    spares: int
    min_nodes: int
    epoch_duration: float
    next_start: float
    trace: Trace
    demand_unit: float
    redeploys: int
    epochs_since_redeploy: int
    repair_spares: int = 0
    server_shares: tuple = ()

    @property
    def last(self) -> WindowObservation | None:
        return self.observations[-1] if self.observations else None

    def required_rate(self, level: int, headroom: float = 1.0) -> float:
        """Capacity (req/s) needed to serve ``level`` clients unsaturated."""
        return max(0.0, level * self.demand_unit * headroom)

    def can_shrink(self) -> bool:
        return self.deployed_nodes > self.min_nodes


class ControlPolicy:
    """Protocol-by-convention base: a ``name`` and a ``decide``.

    Subclasses implement :meth:`decide`; stateless by design — all state
    a policy needs (hysteresis counters included) is derivable from the
    context's observation history, which keeps runs replayable.

    Policies that declare an ``options_type`` (a :class:`PolicyOptions`
    dataclass) get typed, eagerly-validated option handling through
    :func:`make_policy`, sharing the planner registry's coercion
    machinery; policies without one fall back to the legacy
    constructor-default string coercion.
    """

    name = "abstract"
    #: Typed option dataclass, or None for legacy loose-kwargs policies.
    options_type: "type[PolicyOptions] | None" = None

    def decide(self, ctx: ControlContext) -> ControlDecision:
        raise NotImplementedError  # pragma: no cover

    def _apply_options(self, options: "PolicyOptions") -> None:
        """Copy every option field onto the instance (validated already)."""
        for spec in dataclasses.fields(options):
            setattr(self, spec.name, getattr(options, spec.name))

    def describe(self) -> str:
        options = ", ".join(
            f"{key}={value!r}"
            for key, value in sorted(vars(self).items())
        )
        return f"{self.name}({options})"


# ---------------------------------------------------------------------- #
# typed policy options


@dataclass(frozen=True)
class PolicyOptions(PlannerOptions):
    """Base class for per-policy typed option dataclasses.

    Exactly the planner registry's :class:`~repro.core.registry.\
PlannerOptions` machinery — typed fields, eager ``__post_init__``
    validation, string coercion for CLI ``--policy-opt key=value`` flags
    (including tuple specs and annotations) — but raising
    :class:`~repro.errors.ControlError` so control-plane callers keep a
    single error domain.
    """

    @classmethod
    def coerce(cls, mapping: Mapping[str, object]) -> "PolicyOptions":
        valid = sorted(f.name for f in dataclasses.fields(cls))
        unknown = sorted(set(mapping) - set(valid))
        if unknown:
            raise ControlError(
                f"unknown option(s) {unknown} for policy options "
                f"{cls.__name__}; valid options: {valid}"
            )
        try:
            return super().coerce(mapping)
        except PlanningError as exc:
            raise ControlError(str(exc)) from exc


# ---------------------------------------------------------------------- #
# registry

_POLICIES: dict[str, type] = {}


def register_policy(cls: type) -> type:
    """Class decorator registering a policy under ``cls.name``."""
    name = getattr(cls, "name", None)
    if not name or not isinstance(name, str):
        raise ControlError(
            f"policy {cls!r} needs a non-empty string `name`"
        )
    if not callable(getattr(cls, "decide", None)):
        raise ControlError(f"policy {name!r} needs a decide() method")
    if name in _POLICIES:
        raise ControlError(f"policy {name!r} is already registered")
    _POLICIES[name] = cls
    return cls


def available_policies() -> tuple[str, ...]:
    """Registered policy names, sorted."""
    return tuple(sorted(_POLICIES))


def accepted_options(policy: str) -> frozenset[str] | None:
    """Option names policy ``policy`` accepts, or None if unconstrained.

    Typed policies (those with an ``options_type``) report their
    dataclass fields; legacy policies return ``None`` — callers cannot
    know the constructor's vocabulary without instantiating, so they
    should pass options through unfiltered.
    """
    if policy not in _POLICIES:
        raise ControlError(
            f"unknown control policy {policy!r}; "
            f"available policies: {', '.join(available_policies())}"
        )
    options_type = getattr(_POLICIES[policy], "options_type", None)
    if options_type is None:
        return None
    return frozenset(f.name for f in dataclasses.fields(options_type))


def make_policy(
    policy: "str | ControlPolicy",
    options: Mapping[str, object] | None = None,
) -> "ControlPolicy":
    """Resolve a policy name (plus loose options) into an instance.

    Policies that declare a typed ``options_type`` (all the built-ins)
    resolve options through it: eager validation, registry-grade string
    coercion, actionable unknown-key errors.  Legacy policies without
    one keep the constructor-default string coercion.
    """
    if isinstance(policy, ControlPolicy):
        if options:
            raise ControlError(
                "policy options only apply when the policy is given by "
                "name, not as an instance"
            )
        return policy
    if policy not in _POLICIES:
        raise ControlError(
            f"unknown control policy {policy!r}; "
            f"available policies: {', '.join(available_policies())}"
        )
    cls = _POLICIES[policy]
    options_type = getattr(cls, "options_type", None)
    if options_type is not None:
        resolved = (
            options_type.coerce(options) if options else options_type()
        )
        return cls(
            **{
                spec.name: getattr(resolved, spec.name)
                for spec in dataclasses.fields(resolved)
            }
        )
    if not options:
        return cls()
    parameters = {
        name: parameter
        for name, parameter in inspect.signature(cls.__init__).parameters.items()
        if name != "self"
        and parameter.kind
        in (
            inspect.Parameter.POSITIONAL_OR_KEYWORD,
            inspect.Parameter.KEYWORD_ONLY,
        )
    }
    unknown = sorted(set(options) - set(parameters))
    if unknown:
        raise ControlError(
            f"unknown option(s) {unknown} for policy {policy!r}; "
            f"valid options: {sorted(parameters)}"
        )
    kwargs: dict[str, object] = {}
    for key, value in options.items():
        default = parameters[key].default
        if default is inspect.Parameter.empty and isinstance(value, str):
            # No default to infer a type from: passing the raw string on
            # would fail deep inside decide() instead of here.
            raise ControlError(
                f"policy option {key!r} of {policy!r} has no default to "
                "infer a type from; pass a pre-typed value via the API "
                "or give the parameter a default"
            )
        if isinstance(value, str) and default is not inspect.Parameter.empty:
            try:
                if isinstance(default, bool):
                    lowered = value.strip().lower()
                    if lowered in ("1", "true", "yes", "on"):
                        value = True
                    elif lowered in ("0", "false", "no", "off"):
                        value = False
                    else:
                        raise ValueError(f"not a boolean: {value!r}")
                elif isinstance(default, int):
                    value = int(value)
                elif isinstance(default, float):
                    value = float(value)
            except ValueError as exc:
                raise ControlError(
                    f"policy option {key}={value!r} is not a valid "
                    f"{type(default).__name__}: {exc}"
                ) from exc
        kwargs[key] = value
    return cls(**kwargs)


# ---------------------------------------------------------------------- #
# migration pricing


@dataclass(frozen=True)
class MigrationCostModel:
    """Downtime (seconds) of switching deployments, priced from the model.

    Two migration mechanisms, two prices:

    **Full restart** (legacy, :meth:`cost_seconds`): the whole platform
    stops, and *every* element of the target deployment is relaunched —
    ``launch_seconds`` of process spawn/registration plus a
    configuration push (``config_mb`` over the platform link) and
    ``control_round_trips`` agent-level request/reply exchanges — the
    same :class:`~repro.core.params.ModelParams` communication constants
    the throughput model bills (Table 3 sizes over ``bandwidth``) — on
    top of a fixed control-plane ``restart_seconds`` barrier.
    GoDIET-style launchers behave exactly like this: tear everything
    down, per-element launch and config, serial acks, one restart
    barrier; in-flight requests die with the old daemons.

    **Live, per-subtree** (:meth:`plan_outage_seconds`): a
    :class:`~repro.deploy.migration.MigrationPlan` drains one subtree at
    a time while the rest keeps serving.  Each drained region pays at
    most ``drain_seconds`` of quiesce window plus its structural steps'
    config pushes, but only its *drained fraction* of the platform is
    out — the effective downtime is the service-weighted outage, which
    is what lets policies act far more aggressively than under the
    restart price.  Pure capacity growth (new servers under surviving
    agents) drains nothing and prices at configuration cost only.
    """

    restart_seconds: float = 0.25
    config_mb: float = 1.0
    control_round_trips: int = 2
    #: Process launch + naming-service registration per element, billed
    #: for every target node on a full restart and for newly attached
    #: nodes during live migration (where it overlaps with serving).
    launch_seconds: float = 0.1
    #: Per-region drain cap (seconds) for live migrations.  The runtime
    #: exits a drain as soon as the region goes quiet, so this is the
    #: worst case, and the conservative price the veto gate uses.
    drain_seconds: float = 0.25

    def __post_init__(self) -> None:
        if self.restart_seconds < 0.0:
            raise ControlError(
                f"restart_seconds must be >= 0, got {self.restart_seconds}"
            )
        if self.config_mb < 0.0:
            raise ControlError(
                f"config_mb must be >= 0, got {self.config_mb}"
            )
        if self.control_round_trips < 0:
            raise ControlError(
                "control_round_trips must be >= 0, "
                f"got {self.control_round_trips}"
            )
        if self.launch_seconds < 0.0:
            raise ControlError(
                f"launch_seconds must be >= 0, got {self.launch_seconds}"
            )
        if self.drain_seconds < 0.0:
            raise ControlError(
                f"drain_seconds must be >= 0, got {self.drain_seconds}"
            )

    @staticmethod
    def touched_nodes(old: Hierarchy | None, new: Hierarchy) -> int:
        """Nodes added, removed, re-parented or role-changed."""
        if old is None:
            return len(new)

        def placement(h: Hierarchy) -> dict[str, tuple[str, object]]:
            return {
                str(node): (str(h.parent(node)), h.role(node)) for node in h
            }

        before, after = placement(old), placement(new)
        added = set(after) - set(before)
        removed = set(before) - set(after)
        moved = {
            node
            for node in set(before) & set(after)
            if before[node] != after[node]
        }
        return len(added) + len(removed) + len(moved)

    def per_node_seconds(self, params: ModelParams) -> float:
        """Configuration-push time billed per structurally touched node."""
        return (
            self.config_mb / params.bandwidth
            + self.control_round_trips * params.agent_child_comm
        )

    def cost_seconds(
        self, old: Hierarchy | None, new: Hierarchy, params: ModelParams
    ) -> float:
        """Predicted downtime of a full-restart migration ``old`` → ``new``.

        Stop-the-world semantics: the old platform is torn down whole
        and every element of the *new* one is launched and configured,
        however small the structural diff — which is exactly why live
        migration pays off.
        """
        per_node = self.launch_seconds + self.per_node_seconds(params)
        return self.restart_seconds + len(new) * per_node

    def region_config_seconds(self, region, params: ModelParams) -> float:
        """Configuration time of one region's structural steps.

        Reconfigurations are in-place config pushes; only newly
        attached elements additionally pay the launch cost.  This is
        the exact time the live executor bills the simulation for a
        region's reconfiguration, shared here so the veto price and the
        executed cost can never drift apart.
        """
        launches = sum(
            1 for step in region.structural_steps if step.op == "attach"
        )
        return (
            region.touched * self.per_node_seconds(params)
            + launches * self.launch_seconds
        )

    def region_window_seconds(self, region, params: ModelParams) -> float:
        """Worst-case wall (simulated) duration of one migration region."""
        drain = self.drain_seconds if region.drained else 0.0
        return drain + self.region_config_seconds(region, params)

    def wave_window_seconds(self, wave, params: ModelParams) -> float:
        """Worst-case wall duration of one concurrent dependency wave.

        The concurrent executor shares a single drain cap across a
        wave's simultaneously-draining regions, each slice proportional
        to the region's drained-node count; a wave closes when its
        slowest region (drain slice plus config push) resumes.  A
        single-region wave prices exactly like
        :meth:`region_window_seconds` — the share is 1.0 — so the
        serial and concurrent prices agree on serial-shaped plans.
        """
        total_drained = sum(len(region.drained) for region in wave)
        window = 0.0
        for region in wave:
            drain = (
                self.drain_seconds * (len(region.drained) / total_drained)
                if region.drained
                else 0.0
            )
            window = max(
                window, drain + self.region_config_seconds(region, params)
            )
        return window

    def plan_outage_seconds(
        self, plan: "MigrationPlan", params: ModelParams
    ) -> float:
        """Effective downtime of a plan: outage weighted by coverage.

        For live (incremental) plans, each region's window counts only
        in proportion to the fraction of deployed nodes it drains — the
        rest of the platform serves straight through, and pure-growth
        regions cost nothing.  Restart-kind and cold plans are
        stop-the-world rebuilds of the whole target, so they price
        exactly like :meth:`cost_seconds`: one barrier plus a full
        relaunch of every target element.

        The effective outage is *schedule-independent*: draining two
        regions concurrently overlaps their dark windows in wall time
        but each subtree is still dark for its own window, so the
        service-weighted sum is the same either way.  What a concurrent
        schedule shrinks is the **wall window** of the whole migration
        — see :meth:`plan_window_seconds`.
        """
        if not plan.is_live:
            per_node = self.launch_seconds + self.per_node_seconds(params)
            return self.restart_seconds + plan.target_nodes * per_node
        deployed = max(1, plan.source_nodes)
        outage = 0.0
        for region in plan.regions:
            window = self.region_window_seconds(region, params)
            fraction = min(1.0, len(region.drained) / deployed)
            outage += window * fraction
        return outage

    def plan_window_seconds(
        self,
        plan: "MigrationPlan",
        params: ModelParams,
        concurrent: bool = False,
    ) -> float:
        """Worst-case wall (simulated) duration of executing ``plan``.

        Serial execution pays region windows back to back; a concurrent
        schedule pays each dependency wave only its *slowest* region, so
        a plan with independent regions migrates in a strictly shorter
        window.  Non-live plans are one stop-the-world window, priced
        like :meth:`cost_seconds` regardless of schedule.  This is the
        horizon discount the concurrent amortization gate applies: the
        modeled gain only starts accruing once the migration window has
        closed.
        """
        if not plan.is_live:
            per_node = self.launch_seconds + self.per_node_seconds(params)
            return self.restart_seconds + plan.target_nodes * per_node
        if not concurrent:
            return sum(
                self.region_window_seconds(region, params)
                for region in plan.regions
            )
        return sum(
            self.wave_window_seconds(wave, params)
            for wave in plan.concurrent_schedule()
        )


# ---------------------------------------------------------------------- #
# built-in policies


def _failure_decision(
    ctx: ControlContext, restructure: bool
) -> ControlDecision | None:
    """The shared self-healing gate: repair if a fault was just observed.

    Checked *before* every warm-up/cooldown/hysteresis gate — a dead
    subtree does not wait out a cooldown.  Only the *latest* window
    counts: the monitor reports each crashed node exactly once (in the
    window its failure was observed), and a partition is fresh only in
    the window its root first appears among the standing set — so a
    fault triggers exactly one repair decision, and if realizing it is
    a no-op (nothing raises modeled capacity over the survivors) the
    policy resumes normal scaling next epoch instead of retrying a
    hopeless repair forever.  Returns ``None`` when healthy.
    """
    if not ctx.observations:
        return None
    latest = ctx.observations[-1]
    previous = (
        set(ctx.observations[-2].partitioned_nodes)
        if len(ctx.observations) > 1
        else set()
    )
    fresh_partitions = set(latest.partitioned_nodes) - previous
    broken = sorted(set(latest.failed_nodes) | fresh_partitions)
    if not broken:
        return None
    what = ", ".join(broken)
    # Repairs draw on the reserved pool too (that is what the reserve
    # is *for*); without a reserve, repair_spares is 0 and this reduces
    # to the plain spare count.
    if max(ctx.spares, ctx.repair_spares) > 0:
        return ControlDecision(
            "repair", f"observed failure of {what}; splicing in spares"
        )
    if restructure:
        return ControlDecision(
            "repair",
            f"observed failure of {what}; no spares, restructuring "
            "the survivors",
        )
    return ControlDecision.hold(
        f"observed failure of {what} but no spares to repair with"
    )


def _validate_evict(evict_after: int, evict_fraction: float) -> None:
    if evict_after < 0:
        raise ControlError(
            f"evict_after must be >= 0 (0 disables), got {evict_after}"
        )
    if not (0.0 < evict_fraction < 1.0):
        raise ControlError(
            f"evict_fraction must be in (0, 1), got {evict_fraction}"
        )


def _eviction_decision(
    ctx: ControlContext, evict_after: int, evict_fraction: float
) -> ControlDecision | None:
    """Drain-and-replace a persistently under-serving server.

    The straggler rule, in load-independent form: a server whose
    *observed share* of completed services stays below ``evict_fraction``
    of its *modeled share* (power-proportional — what Eq. 8's balanced
    split expects it to carry) for ``evict_after`` consecutive windows
    is evicted.  Comparing shares rather than absolute rates keeps the
    rule honest at low offered load, where every absolute rate is small.

    Fires only when a spare exists to take the straggler's place, and
    only on windows measured entirely under the current deployment —
    windows spanning a redeploy compare a server against a tree it was
    not part of.  Returns ``None`` when nothing qualifies.
    """
    if evict_after < 1 or len(ctx.observations) < evict_after:
        return None
    if max(ctx.spares, ctx.repair_spares) < 1:
        return None
    if ctx.redeploys > 0 and ctx.epochs_since_redeploy + 1 < evict_after:
        return None
    shares = dict(ctx.server_shares)
    if not shares:
        return None
    candidates: set[str] | None = None
    for observation in ctx.observations[-evict_after:]:
        rates = dict(observation.server_rates)
        total = sum(rates.values())
        if total <= 0.0:
            return None  # idle window: no evidence either way
        lagging = {
            name
            for name, share in shares.items()
            if share > 0.0
            and name in rates
            and rates[name] / total < evict_fraction * share
        }
        candidates = lagging if candidates is None else candidates & lagging
        if not candidates:
            return None
    assert candidates  # non-empty by the loop's early return
    # Deterministic pick: the worst laggard in the latest window, ties
    # by name.
    latest_rates = dict(ctx.observations[-1].server_rates)
    target = min(
        sorted(candidates),
        key=lambda name: (latest_rates.get(name, 0.0), name),
    )
    return ControlDecision(
        "evict",
        f"server {target} served under {evict_fraction:.0%} of its "
        f"modeled share for {evict_after} consecutive window(s); "
        "draining and replacing it",
        targets=(target,),
    )


@dataclass(frozen=True)
class HoldOptions(PolicyOptions):
    """The static baseline takes no options."""


@dataclass(frozen=True)
class ReactiveOptions(PolicyOptions):
    """Options of the threshold policy (validated eagerly)."""

    up_utilization: float = 0.90
    up_fraction: float = 0.90
    down_fraction: float = 0.40
    hysteresis: int = 2
    cooldown: int = 2
    headroom: float = 1.3
    #: When saturation persists with every pool node deployed, propose a
    #: same-nodes restructuring replan (shape, not size); the loop only
    #: applies it if the reshaped tree raises modeled capacity and the
    #: migration price amortizes.
    restructure: bool = True
    #: Self-healing: answer observed node failures and fresh partitions
    #: with a ``repair`` decision, ahead of every other gate.
    repair: bool = True
    #: Straggler eviction: drain-and-replace a server whose observed
    #: service share stays below ``evict_fraction`` of its modeled share
    #: for ``evict_after`` consecutive windows.  0 disables (default).
    evict_after: int = 0
    evict_fraction: float = 0.5

    def __post_init__(self) -> None:
        _validate_evict(self.evict_after, self.evict_fraction)
        if not (0.0 < self.up_utilization <= 1.0):
            raise ControlError(
                f"up_utilization must be in (0, 1], got {self.up_utilization}"
            )
        if not (0.0 < self.down_fraction < self.up_fraction <= 1.0):
            raise ControlError(
                "need 0 < down_fraction < up_fraction <= 1, got "
                f"({self.down_fraction}, {self.up_fraction})"
            )
        if self.hysteresis < 1:
            raise ControlError(
                f"hysteresis must be >= 1, got {self.hysteresis}"
            )
        if self.cooldown < 0:
            raise ControlError(f"cooldown must be >= 0, got {self.cooldown}")
        if self.headroom < 1.0:
            raise ControlError(f"headroom must be >= 1, got {self.headroom}")


@dataclass(frozen=True)
class PredictiveOptions(PolicyOptions):
    """Options of the trend-extrapolation policy (validated eagerly)."""

    lookahead: int = 2
    window: int = 3
    headroom: float = 1.25
    down_fraction: float = 0.4
    cooldown: int = 2
    #: As in :class:`ReactiveOptions`: propose a same-nodes reshaped
    #: plan when the predicted requirement exceeds capacity and no
    #: spares remain.
    restructure: bool = True
    #: Self-healing: answer observed node failures and fresh partitions
    #: with a ``repair`` decision, ahead of every other gate.
    repair: bool = True
    #: Straggler eviction, as in :class:`ReactiveOptions`.  0 disables.
    evict_after: int = 0
    evict_fraction: float = 0.5

    def __post_init__(self) -> None:
        _validate_evict(self.evict_after, self.evict_fraction)
        if self.lookahead < 1:
            raise ControlError(
                f"lookahead must be >= 1, got {self.lookahead}"
            )
        if self.window < 2:
            raise ControlError(f"window must be >= 2, got {self.window}")
        if self.headroom < 1.0:
            raise ControlError(f"headroom must be >= 1, got {self.headroom}")
        if not (0.0 < self.down_fraction < 1.0):
            raise ControlError(
                f"down_fraction must be in (0, 1), got {self.down_fraction}"
            )
        if self.cooldown < 0:
            raise ControlError(f"cooldown must be >= 0, got {self.cooldown}")


@dataclass(frozen=True)
class OracleOptions(PolicyOptions):
    """Options of the clairvoyant replanner (validated eagerly)."""

    headroom: float = 1.2
    tolerance: float = 0.15

    def __post_init__(self) -> None:
        if self.headroom < 1.0:
            raise ControlError(f"headroom must be >= 1, got {self.headroom}")
        if self.tolerance <= 0.0:
            raise ControlError(
                f"tolerance must be > 0, got {self.tolerance}"
            )


@register_policy
class StaticPolicy(ControlPolicy):
    """Never adapt — the paper's one-shot deployment as a baseline."""

    name = "hold"
    options_type = HoldOptions

    def decide(self, ctx: ControlContext) -> ControlDecision:
        return ControlDecision.hold("static policy")


@register_policy
class ReactivePolicy(ControlPolicy):
    """Threshold rules with hysteresis and cooldown.

    Scale **up** (``improve``, consuming spare nodes) after
    ``hysteresis`` consecutive *saturated* windows: the
    aggregate served rate has reached ``up_fraction`` of the modeled
    capacity **and** the bottleneck node is pinned (utilization at
    ``up_utilization`` or queues backing up).  Both conditions matter —
    a single slow server can sit at 100 % utilization while the platform
    as a whole has plenty of headroom, and the aggregate alone cannot
    distinguish "at capacity" from "exactly sized".

    Scale **down** (demand-capped ``replan``) after ``hysteresis``
    consecutive windows whose served rate falls below ``down_fraction``
    of capacity — the platform is provably over-provisioned — sized to
    the recent peak offered level times ``headroom``.  Right-sizing is
    not just thrift: a smaller hierarchy has lower fan-out and latency,
    so closed-loop clients are actually served *faster* on it.

    Both directions respect a ``cooldown`` of epochs after any redeploy,
    which (with the hysteresis) is what keeps the policy still on a
    plateau instead of oscillating around a threshold.
    """

    name = "reactive"
    options_type = ReactiveOptions

    def __init__(
        self,
        up_utilization: float = 0.90,
        up_fraction: float = 0.90,
        down_fraction: float = 0.40,
        hysteresis: int = 2,
        cooldown: int = 2,
        headroom: float = 1.3,
        restructure: bool = True,
        repair: bool = True,
        evict_after: int = 0,
        evict_fraction: float = 0.5,
    ):
        self._apply_options(
            ReactiveOptions(
                up_utilization=up_utilization,
                up_fraction=up_fraction,
                down_fraction=down_fraction,
                hysteresis=hysteresis,
                cooldown=cooldown,
                headroom=headroom,
                restructure=restructure,
                repair=repair,
                evict_after=evict_after,
                evict_fraction=evict_fraction,
            )
        )

    def decide(self, ctx: ControlContext) -> ControlDecision:
        if self.repair:
            healing = _failure_decision(ctx, self.restructure)
            if healing is not None:
                return healing
        if self.evict_after:
            evicting = _eviction_decision(
                ctx, self.evict_after, self.evict_fraction
            )
            if evicting is not None:
                return evicting
        if len(ctx.observations) < self.hysteresis:
            return ControlDecision.hold("warming up")
        if ctx.redeploys > 0 and ctx.epochs_since_redeploy < self.cooldown:
            return ControlDecision.hold("cooldown after redeploy")
        # Observations measured under a *previous* deployment compare a
        # stale served rate against the current capacity; only decide on
        # windows that lie entirely after the last redeploy.
        if ctx.redeploys > 0 and ctx.epochs_since_redeploy + 1 < self.hysteresis:
            return ControlDecision.hold("hysteresis window spans a redeploy")
        recent = ctx.observations[-self.hysteresis:]
        overloaded = all(
            o.offered > 0
            and o.served_rate >= self.up_fraction * ctx.capacity
            and (
                o.busiest_utilization >= self.up_utilization
                or o.queue_depth > o.offered
            )
            for o in recent
        )
        if overloaded:
            if ctx.spares > 0:
                return ControlDecision(
                    "improve",
                    f"saturated {self.hysteresis} epochs "
                    f"(util {recent[-1].busiest_utilization:.2f} at "
                    f"{recent[-1].busiest_node})",
                )
            if self.restructure:
                # Every pool node is deployed and pressure persists: the
                # *shape* of the tree is the bottleneck, not its size.
                # A demand-free replan asks the planner for the best
                # tree over the same nodes; the loop applies it only if
                # it raises modeled capacity and its (live/concurrent)
                # migration price amortizes.
                return ControlDecision(
                    "replan",
                    f"saturated {self.hysteresis} epochs with pool "
                    "exhausted; restructuring over the same nodes",
                )
            return ControlDecision.hold("saturated but pool exhausted")
        idle = all(
            o.served_rate <= self.down_fraction * ctx.capacity
            for o in recent
        )
        if idle and ctx.can_shrink() and ctx.demand_unit > 0.0:
            peak_offered = max(o.offered for o in recent)
            required = max(
                ctx.required_rate(peak_offered, self.headroom),
                ctx.demand_unit,
            )
            if required < ctx.capacity:
                return ControlDecision(
                    "replan",
                    f"over-provisioned {self.hysteresis} epochs "
                    f"(serving {recent[-1].served_rate:.1f} of "
                    f"{ctx.capacity:.1f} req/s capacity)",
                    demand=required,
                )
        return ControlDecision.hold("within thresholds")


@register_policy
class PredictivePolicy(ControlPolicy):
    """Linear lookahead on the offered-client trend through the model.

    Extrapolates the offered level ``lookahead`` epochs ahead, converts
    it to a required rate via the online demand-unit estimate, and acts
    when the *predicted* requirement crosses the deployment's modeled
    capacity — scaling before saturation instead of after it.  Shares
    the reactive policy's cooldown gate; the trend window doubles as
    hysteresis.
    """

    name = "predictive"
    options_type = PredictiveOptions

    def __init__(
        self,
        lookahead: int = 2,
        window: int = 3,
        headroom: float = 1.25,
        down_fraction: float = 0.4,
        cooldown: int = 2,
        restructure: bool = True,
        repair: bool = True,
        evict_after: int = 0,
        evict_fraction: float = 0.5,
    ):
        self._apply_options(
            PredictiveOptions(
                lookahead=lookahead,
                window=window,
                headroom=headroom,
                down_fraction=down_fraction,
                cooldown=cooldown,
                restructure=restructure,
                repair=repair,
                evict_after=evict_after,
                evict_fraction=evict_fraction,
            )
        )

    def decide(self, ctx: ControlContext) -> ControlDecision:
        if self.repair:
            healing = _failure_decision(ctx, self.restructure)
            if healing is not None:
                return healing
        if self.evict_after:
            evicting = _eviction_decision(
                ctx, self.evict_after, self.evict_fraction
            )
            if evicting is not None:
                return evicting
        if len(ctx.observations) < self.window or ctx.demand_unit <= 0.0:
            return ControlDecision.hold("warming up")
        if ctx.redeploys > 0 and ctx.epochs_since_redeploy < self.cooldown:
            return ControlDecision.hold("cooldown after redeploy")
        if ctx.redeploys > 0 and ctx.epochs_since_redeploy + 1 < self.window:
            return ControlDecision.hold("trend window spans a redeploy")
        recent = ctx.observations[-self.window:]
        slope = (recent[-1].offered - recent[0].offered) / (self.window - 1)
        predicted = max(0.0, recent[-1].offered + slope * self.lookahead)
        required = max(
            predicted * ctx.demand_unit * self.headroom, ctx.demand_unit
        )
        if required > ctx.capacity:
            if ctx.spares > 0:
                return ControlDecision(
                    "improve",
                    f"predicted {predicted:.0f} clients needs "
                    f"{required:.1f} req/s > capacity {ctx.capacity:.1f}",
                )
            if self.restructure:
                return ControlDecision(
                    "replan",
                    f"predicted {predicted:.0f} clients exceeds capacity "
                    "with pool exhausted; restructuring over the same "
                    "nodes",
                )
            return ControlDecision.hold("predicted overload; pool exhausted")
        if required < ctx.capacity * self.down_fraction and ctx.can_shrink():
            return ControlDecision(
                "replan",
                f"predicted demand {required:.1f} req/s well under "
                f"capacity {ctx.capacity:.1f}",
                demand=required,
            )
        return ControlDecision.hold("capacity matches prediction")


@dataclass(frozen=True)
class SeasonalPredictiveOptions(PolicyOptions):
    """Options of the EWMA/seasonal predictor (validated eagerly)."""

    #: Level smoothing factor (EWMA weight of the newest window).
    alpha: float = 0.5
    #: Trend smoothing factor.
    beta: float = 0.3
    #: Seasonal smoothing factor (used when ``season > 0``).
    gamma: float = 0.3
    #: Season length in epochs; 0 disables the seasonal component and
    #: leaves a plain Holt (level+trend) double-EWMA.  For a ``diurnal``
    #: trace, set this to ``period / epoch_duration``.
    season: int = 0
    lookahead: int = 2
    headroom: float = 1.25
    down_fraction: float = 0.4
    cooldown: int = 2
    #: Observations required before the smoothed forecast is trusted.
    warmup: int = 3
    restructure: bool = True
    repair: bool = True
    #: Straggler eviction, as in :class:`ReactiveOptions`.  0 disables.
    evict_after: int = 0
    evict_fraction: float = 0.5

    def __post_init__(self) -> None:
        _validate_evict(self.evict_after, self.evict_fraction)
        for name in ("alpha", "beta", "gamma"):
            value = getattr(self, name)
            if not (0.0 < value <= 1.0):
                raise ControlError(
                    f"{name} must be in (0, 1], got {value}"
                )
        if self.season < 0:
            raise ControlError(f"season must be >= 0, got {self.season}")
        if self.lookahead < 1:
            raise ControlError(
                f"lookahead must be >= 1, got {self.lookahead}"
            )
        if self.headroom < 1.0:
            raise ControlError(f"headroom must be >= 1, got {self.headroom}")
        if not (0.0 < self.down_fraction < 1.0):
            raise ControlError(
                f"down_fraction must be in (0, 1), got {self.down_fraction}"
            )
        if self.cooldown < 0:
            raise ControlError(f"cooldown must be >= 0, got {self.cooldown}")
        if self.warmup < 2:
            raise ControlError(f"warmup must be >= 2, got {self.warmup}")


@register_policy
class SeasonalPredictivePolicy(ControlPolicy):
    """Holt-Winters-style EWMA forecast of the offered-client level.

    Where :class:`PredictivePolicy` fits a straight line through a short
    window — jumpy on noisy traces, blind to recurring shapes — this
    variant keeps exponentially-smoothed *level* and *trend* estimates
    (Holt's method) plus an optional additive *seasonal* component
    indexed by epoch-within-season, which is what makes it track
    ``diurnal`` traces: after one full period it anticipates the next
    peak instead of chasing it.

    Stateless like every policy: the smoothed state is recomputed from
    the full observation history each epoch (O(n), n = epochs so far),
    so runs stay replayable from the context alone.
    """

    name = "predictive_ewma"
    options_type = SeasonalPredictiveOptions

    def __init__(
        self,
        alpha: float = 0.5,
        beta: float = 0.3,
        gamma: float = 0.3,
        season: int = 0,
        lookahead: int = 2,
        headroom: float = 1.25,
        down_fraction: float = 0.4,
        cooldown: int = 2,
        warmup: int = 3,
        restructure: bool = True,
        repair: bool = True,
        evict_after: int = 0,
        evict_fraction: float = 0.5,
    ):
        self._apply_options(
            SeasonalPredictiveOptions(
                alpha=alpha,
                beta=beta,
                gamma=gamma,
                season=season,
                lookahead=lookahead,
                headroom=headroom,
                down_fraction=down_fraction,
                cooldown=cooldown,
                warmup=warmup,
                restructure=restructure,
                repair=repair,
                evict_after=evict_after,
                evict_fraction=evict_fraction,
            )
        )

    def _forecast(self, offered: "list[int]") -> float:
        """Holt(-Winters additive) forecast ``lookahead`` steps ahead."""
        level = float(offered[0])
        trend = float(offered[1] - offered[0])
        seasonal = [0.0] * self.season if self.season > 0 else []
        for i, value in enumerate(offered[1:], start=1):
            season_term = seasonal[i % self.season] if self.season > 0 else 0.0
            previous_level = level
            level = (
                self.alpha * (value - season_term)
                + (1.0 - self.alpha) * (level + trend)
            )
            trend = (
                self.beta * (level - previous_level)
                + (1.0 - self.beta) * trend
            )
            if self.season > 0:
                seasonal[i % self.season] = (
                    self.gamma * (value - level)
                    + (1.0 - self.gamma) * seasonal[i % self.season]
                )
        horizon = len(offered) - 1 + self.lookahead
        season_term = (
            seasonal[horizon % self.season] if self.season > 0 else 0.0
        )
        return max(0.0, level + trend * self.lookahead + season_term)

    def decide(self, ctx: ControlContext) -> ControlDecision:
        if self.repair:
            healing = _failure_decision(ctx, self.restructure)
            if healing is not None:
                return healing
        if self.evict_after:
            evicting = _eviction_decision(
                ctx, self.evict_after, self.evict_fraction
            )
            if evicting is not None:
                return evicting
        if len(ctx.observations) < self.warmup or ctx.demand_unit <= 0.0:
            return ControlDecision.hold("warming up")
        if ctx.redeploys > 0 and ctx.epochs_since_redeploy < self.cooldown:
            return ControlDecision.hold("cooldown after redeploy")
        predicted = self._forecast([o.offered for o in ctx.observations])
        required = max(
            predicted * ctx.demand_unit * self.headroom, ctx.demand_unit
        )
        if required > ctx.capacity:
            if ctx.spares > 0:
                return ControlDecision(
                    "improve",
                    f"ewma forecast {predicted:.0f} clients needs "
                    f"{required:.1f} req/s > capacity {ctx.capacity:.1f}",
                )
            if self.restructure:
                return ControlDecision(
                    "replan",
                    f"ewma forecast {predicted:.0f} clients exceeds "
                    "capacity with pool exhausted; restructuring over "
                    "the same nodes",
                )
            return ControlDecision.hold("forecast overload; pool exhausted")
        if required < ctx.capacity * self.down_fraction and ctx.can_shrink():
            return ControlDecision(
                "replan",
                f"ewma forecast {required:.1f} req/s well under "
                f"capacity {ctx.capacity:.1f}",
                demand=required,
            )
        return ControlDecision.hold("capacity matches ewma forecast")


@register_policy
class OraclePolicy(ControlPolicy):
    """Clairvoyant replanner: reads the true future trace level.

    Every epoch it peeks at the trace over the next epoch, converts the
    peak upcoming level into a required rate, and replans the full pool
    whenever required and deployed capacity differ by more than
    ``tolerance`` — no hysteresis, no cooldown, no migration awareness.
    It bounds how much throughput *any* causal policy could recover, at
    the price of redeploying on every demand shift.
    """

    name = "oracle"
    options_type = OracleOptions

    def __init__(self, headroom: float = 1.2, tolerance: float = 0.15):
        self._apply_options(
            OracleOptions(headroom=headroom, tolerance=tolerance)
        )

    def decide(self, ctx: ControlContext) -> ControlDecision:
        if ctx.demand_unit <= 0.0:
            return ControlDecision.hold("calibrating demand unit")
        step = max(ctx.epoch_duration / 4.0, 1e-6)
        upcoming = ctx.trace.peak(
            ctx.next_start, ctx.next_start + ctx.epoch_duration, step
        )
        required = max(
            ctx.required_rate(upcoming, self.headroom), ctx.demand_unit
        )
        if required > ctx.capacity * (1.0 + self.tolerance):
            return ControlDecision(
                "replan",
                f"oracle: {upcoming} clients next epoch needs "
                f"{required:.1f} req/s > capacity {ctx.capacity:.1f}",
                demand=required,
            )
        if (
            required < ctx.capacity * (1.0 - self.tolerance)
            and ctx.can_shrink()
        ):
            return ControlDecision(
                "replan",
                f"oracle: {upcoming} clients next epoch needs only "
                f"{required:.1f} req/s < capacity {ctx.capacity:.1f}",
                demand=required,
            )
        return ControlDecision.hold("oracle: capacity matches demand")
