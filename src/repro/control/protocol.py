"""Master/executor command protocol for the control plane's act stage.

The control loop used to *be* the whole control plane: one in-process
loop that planned a migration and applied it to its own middleware.
This module splits the act stage along the production seam — a
**master** that decides, and per-region **executors** (daemons) that
apply — connected by typed, versioned wire messages (after Uberun's
``SSmaster.py`` / ``SSdaemon.py`` / ``SSprotocol.py`` exchange):

:class:`MigrationCommand`
    One region of a :class:`~repro.deploy.migration.MigrationPlan`,
    serialized with enough plan-level metadata (kind, wave index,
    node counts, dependency roots) that a batch of commands rebuilds
    the *entire* plan via :func:`commands_to_plan` — the master's
    decision survives the wire round-trip losslessly.
:class:`RegionReport`
    The executor's ack: which command it applied, against which
    registry generation, and the content digest of the tree it arrived
    at, which the master cross-checks against its own replay.

Executors are **stateless**: :func:`execute_command` receives a
:meth:`~repro.control.registry.DeploymentRegistry.snapshot` and
rebuilds the deployment from the registry every call — the same path a
restarted daemon takes to rejoin, so the durability story is exercised
on every single dispatch, not just in a recovery test.

Three executor kinds (:data:`EXECUTOR_KINDS`):

``inline``
    No protocol at all — the loop applies its plan directly, exactly
    as before this module existed.  The bit-identity baseline.
``local``
    :class:`InProcessExecutor`: full wire round-trip (commands and
    reports pass through ``json.dumps``/``loads``), executed serially
    in the master's process.
``pool``
    :class:`ProcessExecutor`: the same wire exchange, fanned out to a
    ``ProcessPoolExecutor`` — region commands of one plan really do
    execute in parallel processes.  Falls back to in-process execution
    when the host refuses child processes (e.g. inside a daemonic
    pool worker of ``control_sweep``); the protocol is deterministic,
    so the fallback is bit-identical, just slower.

Determinism contract: executors only compute *structural* results
(trees and digests) that the master verifies and then discards in
favour of its own simulated apply — so the
:class:`~repro.control.loop.ControlTimeline` is bit-identical across
all three kinds, which ``tests/test_protocol.py`` asserts with faults
and detection enabled.
"""

from __future__ import annotations

import json
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass

from repro.control.registry import (
    DeploymentRegistry,
    tree_digest,
)
from repro.deploy.migration import (
    MigrationPlan,
    MigrationRegion,
    MigrationStep,
    apply_steps,
)
from repro.errors import ProtocolError

__all__ = [
    "PROTOCOL_VERSION",
    "EXECUTOR_KINDS",
    "MigrationCommand",
    "RegionReport",
    "plan_commands",
    "commands_to_plan",
    "parse_command",
    "parse_report",
    "execute_command",
    "InProcessExecutor",
    "ProcessExecutor",
    "make_executor",
]

#: Wire-format version stamped on every command and report; parsers
#: reject versions they do not understand.
PROTOCOL_VERSION = 1

#: Recognized act-stage executor kinds, in increasing distribution:
#: ``inline`` (no protocol — the pre-split direct apply), ``local``
#: (wire round-trip, in-process), ``pool`` (wire round-trip, process
#: pool).  Module-level like MIGRATION_MODES so the CLI can offer
#: ``choices=`` without importing the heavy loop machinery.
EXECUTOR_KINDS = ("inline", "local", "pool")

_COMMAND_FIELDS = frozenset(
    {
        "version", "command_id", "generation", "epoch", "wave",
        "plan_kind", "source_nodes", "target_nodes", "root",
        "depends_on", "drained", "steps",
    }
)
_REPORT_FIELDS = frozenset(
    {"version", "command_id", "root", "generation", "status", "applied",
     "digest"}
)


@dataclass(frozen=True)
class MigrationCommand:
    """One region's marching orders, as the master serializes them.

    ``generation`` is the registry generation the command's base tree
    comes from; ``command_id`` is deterministic
    (``g{generation}e{epoch}r{index}``) so acks correlate without any
    random nonce; ``wave`` is the region's concurrent-schedule wave.
    The plan-level fields (``plan_kind``, ``source_nodes``,
    ``target_nodes``) ride on every command so a batch is
    self-describing — :func:`commands_to_plan` needs no side channel.
    """

    version: int
    command_id: str
    generation: int
    epoch: int
    wave: int
    plan_kind: str
    source_nodes: int
    target_nodes: int
    root: str
    depends_on: tuple
    drained: tuple
    steps: tuple  # of MigrationStep

    def region(self) -> MigrationRegion:
        """Rebuild the :class:`MigrationRegion` this command carries."""
        return MigrationRegion(
            root=self.root,
            drained=self.drained,
            steps=self.steps,
            depends_on=self.depends_on,
        )

    def to_wire(self) -> dict:
        return {
            "version": self.version,
            "command_id": self.command_id,
            "generation": self.generation,
            "epoch": self.epoch,
            "wave": self.wave,
            "plan_kind": self.plan_kind,
            "source_nodes": self.source_nodes,
            "target_nodes": self.target_nodes,
            "root": self.root,
            "depends_on": list(self.depends_on),
            "drained": list(self.drained),
            "steps": [step.to_wire() for step in self.steps],
        }


@dataclass(frozen=True)
class RegionReport:
    """The executor's ack for one applied command.

    ``digest`` is the content digest (:func:`~repro.control.registry
    .tree_digest`) of the tree the executor reached after applying its
    command on top of every earlier command in the batch — the master
    replays the same prefix and refuses a mismatched ack.
    """

    version: int
    command_id: str
    root: str
    generation: int
    status: str  # "applied"
    applied: int  # structural steps applied
    digest: str

    def to_wire(self) -> dict:
        return {
            "version": self.version,
            "command_id": self.command_id,
            "root": self.root,
            "generation": self.generation,
            "status": self.status,
            "applied": self.applied,
            "digest": self.digest,
        }


def parse_command(wire: dict) -> MigrationCommand:
    """Validate and deserialize one wire-form command.

    Unknown protocol versions and missing/extra fields are refused with
    :class:`~repro.errors.ProtocolError` — a daemon never guesses at a
    message shape it does not recognize.
    """
    if not isinstance(wire, dict):
        raise ProtocolError(
            f"command must be a dict, got {type(wire).__name__}"
        )
    if wire.get("version") != PROTOCOL_VERSION:
        raise ProtocolError(
            f"unknown command protocol version {wire.get('version')!r} "
            f"(this build speaks version {PROTOCOL_VERSION})"
        )
    if set(wire) != _COMMAND_FIELDS:
        missing = _COMMAND_FIELDS - set(wire)
        extra = set(wire) - _COMMAND_FIELDS
        raise ProtocolError(
            f"malformed command: missing fields {sorted(missing)}, "
            f"unexpected fields {sorted(extra)}"
        )
    try:
        return MigrationCommand(
            version=int(wire["version"]),
            command_id=str(wire["command_id"]),
            generation=int(wire["generation"]),
            epoch=int(wire["epoch"]),
            wave=int(wire["wave"]),
            plan_kind=str(wire["plan_kind"]),
            source_nodes=int(wire["source_nodes"]),
            target_nodes=int(wire["target_nodes"]),
            root=str(wire["root"]),
            depends_on=tuple(wire["depends_on"]),
            drained=tuple(wire["drained"]),
            steps=tuple(
                MigrationStep.from_wire(step) for step in wire["steps"]
            ),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise ProtocolError(f"malformed command: {exc}") from exc


def parse_report(wire: dict) -> RegionReport:
    """Validate and deserialize one wire-form region report."""
    if not isinstance(wire, dict):
        raise ProtocolError(
            f"report must be a dict, got {type(wire).__name__}"
        )
    if wire.get("version") != PROTOCOL_VERSION:
        raise ProtocolError(
            f"unknown report protocol version {wire.get('version')!r} "
            f"(this build speaks version {PROTOCOL_VERSION})"
        )
    if set(wire) != _REPORT_FIELDS:
        missing = _REPORT_FIELDS - set(wire)
        extra = set(wire) - _REPORT_FIELDS
        raise ProtocolError(
            f"malformed report: missing fields {sorted(missing)}, "
            f"unexpected fields {sorted(extra)}"
        )
    try:
        return RegionReport(
            version=int(wire["version"]),
            command_id=str(wire["command_id"]),
            root=str(wire["root"]),
            generation=int(wire["generation"]),
            status=str(wire["status"]),
            applied=int(wire["applied"]),
            digest=str(wire["digest"]),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise ProtocolError(f"malformed report: {exc}") from exc


def plan_commands(
    plan: MigrationPlan, generation: int, epoch: int
) -> tuple:
    """Serialize ``plan`` into one :class:`MigrationCommand` per region.

    Commands come out in the plan's serial region order; each carries
    its concurrent-schedule wave index so executors (and the trace)
    know which commands may run simultaneously.
    """
    wave_of = {}
    for index, wave in enumerate(plan.concurrent_schedule()):
        for region in wave:
            wave_of[region.root] = index
    commands = []
    for index, region in enumerate(plan.regions):
        commands.append(
            MigrationCommand(
                version=PROTOCOL_VERSION,
                command_id=f"g{generation}e{epoch}r{index}",
                generation=generation,
                epoch=epoch,
                wave=wave_of[region.root],
                plan_kind=plan.kind,
                source_nodes=plan.source_nodes,
                target_nodes=plan.target_nodes,
                root=str(region.root),
                depends_on=tuple(str(r) for r in region.depends_on),
                drained=tuple(str(n) for n in region.drained),
                steps=region.steps,
            )
        )
    return tuple(commands)


def commands_to_plan(commands) -> MigrationPlan:
    """Rebuild the full :class:`MigrationPlan` from a command batch.

    The inverse of :func:`plan_commands`: command order is plan order,
    and the plan-level metadata every command carries must agree across
    the batch.  ``commands_to_plan(plan_commands(p, g, e)).apply(old)``
    equals ``p.apply(old)`` — the round-trip the property tests pin.
    """
    if not commands:
        raise ProtocolError("cannot rebuild a plan from zero commands")
    head = commands[0]
    for command in commands:
        if (
            command.plan_kind != head.plan_kind
            or command.generation != head.generation
            or command.source_nodes != head.source_nodes
            or command.target_nodes != head.target_nodes
        ):
            raise ProtocolError(
                "command batch is inconsistent: "
                f"{command.command_id} disagrees with {head.command_id} "
                "on plan-level metadata"
            )
    return MigrationPlan(
        kind=head.plan_kind,
        regions=tuple(command.region() for command in commands),
        source_nodes=head.source_nodes,
        target_nodes=head.target_nodes,
    )


# ---------------------------------------------------------------------- #
# the daemon side


def execute_command(snapshot: dict, wires, index: int) -> dict:
    """Apply one command of a batch — the stateless daemon entry point.

    ``snapshot`` is a registry snapshot, ``wires`` the wire-form command
    batch (plan order), ``index`` which command this call executes.  The
    daemon restores the registry, rebuilds the current deployment tree,
    replays commands ``0..index`` in plan order, and acks the digest of
    the tree it reached.  Restoring from the registry on *every* call is
    deliberate: it is exactly the restart-rejoin path, so durability is
    exercised on every dispatch.  Pure function of its arguments —
    picklable, deterministic, safe to fan out.
    """
    registry = DeploymentRegistry.restore(snapshot)
    commands = tuple(parse_command(wire) for wire in wires)
    if not 0 <= index < len(commands):
        raise ProtocolError(
            f"command index {index} out of range for a batch of "
            f"{len(commands)}"
        )
    command = commands[index]
    if command.generation != registry.generation:
        raise ProtocolError(
            f"command {command.command_id} targets generation "
            f"{command.generation} but the registry is at "
            f"{registry.generation} — daemon must re-sync"
        )
    tree = registry.current()
    for prefix in commands[: index + 1]:
        apply_steps(tree, prefix.steps)
    report = RegionReport(
        version=PROTOCOL_VERSION,
        command_id=command.command_id,
        root=command.root,
        generation=command.generation,
        status="applied",
        applied=len(command.region().structural_steps),
        digest=tree_digest(tree),
    )
    return report.to_wire()


def _execute_star(args) -> str:
    """Pool worker: unpack args, run the daemon, return the report JSON."""
    snapshot_json, wires_json, index = args
    wire = execute_command(
        json.loads(snapshot_json), json.loads(wires_json), index
    )
    return json.dumps(wire, sort_keys=True)


def _warm_probe() -> bool:
    """No-op pool task: forces a worker to spawn (and proves it can)."""
    return True


class InProcessExecutor:
    """Serial executor: full wire round-trip, master's own process.

    Every command batch passes through ``json.dumps``/``loads`` on both
    legs, so the wire encoding is load-bearing even without a second
    process — the first rung of the distribution ladder.
    """

    kind = "local"

    def execute(self, snapshot: dict, wires) -> tuple:
        """Run every command of the batch; returns wire-form reports."""
        snapshot_json = json.dumps(snapshot, sort_keys=True)
        wires_json = json.dumps(list(wires), sort_keys=True)
        return tuple(
            json.loads(_execute_star((snapshot_json, wires_json, index)))
            for index in range(len(wires))
        )

    def warm(self) -> None:
        """Nothing to spin up."""

    def close(self) -> None:
        """Nothing to release."""


class ProcessExecutor:
    """Process-pool executor: region commands run in parallel daemons.

    The pool is created lazily on first use and survives across epochs
    (spawn cost is paid once per run, not per plan).  Hosts that refuse
    child processes — e.g. the daemonic workers of a ``control_sweep``
    process pool cannot themselves fork — degrade gracefully to
    in-process execution; the protocol is deterministic, so the result
    is bit-identical either way.
    """

    kind = "pool"

    def __init__(self, workers: int | None = None) -> None:
        self._workers = workers
        self._pool: ProcessPoolExecutor | None = None
        self._fallback = False

    def _ensure_pool(self) -> ProcessPoolExecutor | None:
        if self._fallback:
            return None
        if self._pool is None:
            try:
                self._pool = ProcessPoolExecutor(max_workers=self._workers)
            except (OSError, ValueError, RuntimeError, AssertionError):
                self._fallback = True
                return None
        return self._pool

    def execute(self, snapshot: dict, wires) -> tuple:
        """Fan the batch out to the pool; returns wire-form reports.

        Report order is command order regardless of completion order —
        determinism comes from ordered collection, not scheduling.
        """
        snapshot_json = json.dumps(snapshot, sort_keys=True)
        wires_json = json.dumps(list(wires), sort_keys=True)
        jobs = [
            (snapshot_json, wires_json, index) for index in range(len(wires))
        ]
        pool = self._ensure_pool()
        if pool is not None:
            try:
                payloads = list(pool.map(_execute_star, jobs))
            except (OSError, RuntimeError, AssertionError):
                # A daemonic host can fail at submit time rather than
                # pool construction; same graceful degradation.
                self._fallback = True
                self.close()
                payloads = [_execute_star(job) for job in jobs]
        else:
            payloads = [_execute_star(job) for job in jobs]
        return tuple(json.loads(payload) for payload in payloads)

    def warm(self) -> None:
        """Spin the pool's workers up (best effort) ahead of dispatch.

        Submitting one probe task forces worker spawn now rather than
        on the first command batch — and discovers a fork-refusing host
        early, flipping to the in-process fallback before any plan is
        in flight.
        """
        pool = self._ensure_pool()
        if pool is None:
            return
        try:
            pool.submit(_warm_probe).result()
        except (OSError, RuntimeError, AssertionError):
            self._fallback = True
            self.close()

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


def make_executor(kind: str, workers: int | None = None):
    """Build the executor for ``kind`` (``None`` for ``inline``).

    ``inline`` means "no protocol" — the loop applies plans directly —
    so it maps to no executor object at all.
    """
    if kind == "inline":
        return None
    if kind == "local":
        return InProcessExecutor()
    if kind == "pool":
        return ProcessExecutor(workers=workers)
    raise ProtocolError(
        f"unknown executor kind {kind!r}; expected one of {EXECUTOR_KINDS}"
    )
