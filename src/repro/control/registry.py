"""Versioned deployment-state registry — the control plane's durable truth.

The master/executor split (:mod:`repro.control.protocol`) needs a
source of truth that is *not* anyone's in-memory tree: executors are
stateless and rebuild their view of the deployment from a registry
snapshot on every command batch, and a daemon that restarts rejoins
from the registry instead of trusting whatever it remembered.  This
module supplies that registry:

:class:`DeploymentRegistry`
    An append-only log of :class:`RegistryEntry` records, one per
    applied deployment transition (initial plan, applied redeploy,
    crash adoption, confirmed-failure excision).  Each entry carries a
    **monotonic generation number** (asserted to increase by exactly
    one per commit), the serialized deployment tree, a content digest,
    and provenance metadata (epoch, cause, the command ids of the plan
    that produced it).

Versioning discipline (after Nova's versioned-schema migrations):
every snapshot is stamped with :data:`SCHEMA_VERSION`; ``restore``
refuses snapshots from schema versions it does not understand rather
than guessing.  The snapshot/restore round-trip is **exact** — the
snapshot is plain JSON-safe data, ``json.loads(json.dumps(s)) == s``,
and a restored registry compares equal to the original entry by entry
— which the protocol test battery asserts.

Determinism: serialization walks the tree in BFS order and digests a
name-sorted row list, so equal trees always serialize to equal bytes;
nothing here reads a clock or an RNG.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass

from repro.core.hierarchy import Hierarchy, Role
from repro.errors import ProtocolError

__all__ = [
    "SCHEMA_VERSION",
    "RegistryEntry",
    "DeploymentRegistry",
    "serialize_tree",
    "restore_tree",
    "tree_digest",
]

#: Registry snapshot schema version.  Bump on any change to the
#: snapshot layout; ``restore`` rejects versions it does not know.
SCHEMA_VERSION = 1

#: One serialized node: ``(name, parent_name | None, role, power)``.
TreeRow = tuple


def serialize_tree(tree: Hierarchy) -> tuple:
    """Flatten ``tree`` into JSON-safe ``(name, parent, role, power)`` rows.

    Rows come out in BFS order from the root, so ``restore_tree`` can
    rebuild by appending (every parent exists before its children) and
    equal trees serialize identically.
    """
    rows = []
    for node in tree:
        parent = tree.parent(node)
        rows.append(
            (
                str(node),
                str(parent) if parent is not None else None,
                tree.role(node).value,
                tree.power(node),
            )
        )
    return tuple(rows)


def restore_tree(rows) -> Hierarchy:
    """Rebuild a :class:`Hierarchy` from :func:`serialize_tree` rows."""
    tree = Hierarchy()
    for row in rows:
        if len(row) != 4:
            raise ProtocolError(f"malformed tree row {row!r}")
        name, parent, role, power = row
        if parent is None:
            tree.set_root(name, power)
        elif role == Role.AGENT.value:
            tree.add_agent(name, power, parent)
        elif role == Role.SERVER.value:
            tree.add_server(name, power, parent)
        else:
            raise ProtocolError(f"unknown role {role!r} in tree row")
    return tree


def tree_digest(tree_or_rows) -> str:
    """Content digest of a deployment tree (or its serialized rows).

    Rows are name-sorted before hashing, so the digest identifies the
    *placement* — which node sits where, in which role, at what power —
    independent of serialization order.  Used by executors to ack what
    they actually built and by the master to cross-check the ack.
    """
    rows = (
        serialize_tree(tree_or_rows)
        if isinstance(tree_or_rows, Hierarchy)
        else tree_or_rows
    )
    payload = json.dumps(
        sorted(list(row) for row in rows),
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


@dataclass(frozen=True)
class RegistryEntry:
    """One committed deployment generation.

    ``generation`` is assigned by the registry (monotonic, dense);
    ``cause`` names the transition (``initial``, a policy action such
    as ``replan``/``improve``/``repair``/``evict``, or ``crash`` /
    ``detection`` for fault adoptions); ``epoch`` the control epoch it
    landed in (``-1`` for the initial deployment); ``command_ids`` the
    protocol commands that realized it (empty for inline-mode applies
    and non-plan transitions).
    """

    generation: int
    tree: tuple
    digest: str
    cause: str
    epoch: int = -1
    command_ids: tuple = ()

    def hierarchy(self) -> Hierarchy:
        """Rebuild this generation's deployment tree."""
        return restore_tree(self.tree)

    def to_wire(self) -> dict:
        """JSON-safe dict form (tuples become lists)."""
        return {
            "generation": self.generation,
            "tree": [list(row) for row in self.tree],
            "digest": self.digest,
            "cause": self.cause,
            "epoch": self.epoch,
            "command_ids": list(self.command_ids),
        }

    @classmethod
    def from_wire(cls, wire: dict) -> "RegistryEntry":
        try:
            return cls(
                generation=int(wire["generation"]),
                tree=tuple(tuple(row) for row in wire["tree"]),
                digest=str(wire["digest"]),
                cause=str(wire["cause"]),
                epoch=int(wire["epoch"]),
                command_ids=tuple(wire["command_ids"]),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ProtocolError(
                f"malformed registry entry: {exc}"
            ) from exc


class DeploymentRegistry:
    """Append-only, generation-numbered log of applied deployments.

    The registry is the durable source of truth the protocol's
    executors plan from: :meth:`snapshot` exports the whole log as
    JSON-safe data, :meth:`restore` rebuilds an identical registry in
    another process (or after a restart), and :meth:`current` yields
    the latest generation's tree.  Generations are dense and strictly
    increasing — :meth:`commit` assigns them, and a digest mismatch on
    restore is an error, never a silent repair.
    """

    def __init__(self) -> None:
        self._entries: list[RegistryEntry] = []

    # -- commits ------------------------------------------------------- #

    @property
    def generation(self) -> int:
        """Latest committed generation (``-1`` for an empty registry)."""
        return len(self._entries) - 1

    @property
    def entries(self) -> tuple:
        return tuple(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    def __eq__(self, other) -> bool:
        if not isinstance(other, DeploymentRegistry):
            return NotImplemented
        return self._entries == other._entries

    def commit(
        self,
        tree: Hierarchy,
        cause: str,
        epoch: int = -1,
        command_ids: tuple = (),
    ) -> RegistryEntry:
        """Record ``tree`` as the next generation and return its entry."""
        rows = serialize_tree(tree)
        entry = RegistryEntry(
            generation=len(self._entries),
            tree=rows,
            digest=tree_digest(rows),
            cause=str(cause),
            epoch=int(epoch),
            command_ids=tuple(str(c) for c in command_ids),
        )
        self._entries.append(entry)
        return entry

    def entry(self, generation: int) -> RegistryEntry:
        """The entry committed as ``generation``."""
        if not 0 <= generation < len(self._entries):
            raise ProtocolError(
                f"no registry entry for generation {generation} "
                f"(have 0..{len(self._entries) - 1})"
            )
        return self._entries[generation]

    def current(self) -> Hierarchy:
        """The latest generation's deployment tree, rebuilt."""
        if not self._entries:
            raise ProtocolError("registry is empty — nothing committed yet")
        return self._entries[-1].hierarchy()

    # -- snapshot / restore -------------------------------------------- #

    def snapshot(self) -> dict:
        """Export the whole registry as JSON-safe data.

        ``json.loads(json.dumps(snapshot))`` equals the snapshot, and
        :meth:`restore` rebuilds a registry equal to this one — the
        exact round-trip the durability story rests on.
        """
        return {
            "schema": SCHEMA_VERSION,
            "generation": self.generation,
            "entries": [entry.to_wire() for entry in self._entries],
        }

    @classmethod
    def restore(cls, snapshot: dict) -> "DeploymentRegistry":
        """Rebuild a registry from a :meth:`snapshot`.

        Validates the schema version, the dense generation numbering,
        and every entry's digest against its serialized tree — a
        corrupted or hand-edited snapshot fails loudly here, not as a
        wrong deployment later.
        """
        if not isinstance(snapshot, dict):
            raise ProtocolError(
                "registry snapshot must be a dict, got "
                f"{type(snapshot).__name__}"
            )
        schema = snapshot.get("schema")
        if schema != SCHEMA_VERSION:
            raise ProtocolError(
                f"unknown registry schema version {schema!r} "
                f"(this build reads version {SCHEMA_VERSION})"
            )
        registry = cls()
        for index, wire in enumerate(snapshot.get("entries", ())):
            entry = RegistryEntry.from_wire(wire)
            if entry.generation != index:
                raise ProtocolError(
                    f"registry generations must be dense: entry {index} "
                    f"claims generation {entry.generation}"
                )
            if tree_digest(entry.tree) != entry.digest:
                raise ProtocolError(
                    f"registry entry {index} digest mismatch — "
                    "snapshot is corrupt"
                )
            registry._entries.append(entry)
        if registry.generation != snapshot.get("generation"):
            raise ProtocolError(
                "registry snapshot generation header disagrees with "
                "its entry list"
            )
        return registry
