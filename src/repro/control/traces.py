"""Time-varying workload traces — the control plane's demand signal.

The paper plans a deployment once, for a fixed client population.  A live
platform sees nothing of the sort: load ramps up through the morning,
bursts around deadlines, and occasionally a *flash crowd* multiplies it in
seconds.  A :class:`Trace` models that as a deterministic function from
simulation time to a **target closed-loop client population** — the same
unit of load as the paper's §5.1 protocol (one client = one request at a
time in a continual loop), so every trace level is directly comparable
with the load-curve figures.

Traces are:

* **pure** — ``level(t)`` depends on ``t`` only, never on call order, so
  a controller can sample the same trace twice (e.g. the oracle policy
  peeking ahead) without perturbing anything;
* **composable** — ``+`` superimposes traces, :meth:`Trace.scale`,
  :meth:`Trace.clamp` and :meth:`Trace.delayed` reshape them;
* **seeded** — the only stochastic combinator, :meth:`Trace.jittered`,
  *requires* an explicit seed and derives every draw from
  ``(seed, time-bucket)``, keeping the jittered trace a pure function of
  time (the determinism contract of :mod:`repro.workloads.loadgen`
  applies here too: same seed, same levels, bit-identical runs);
* **replayable** — :func:`replay` turns a recorded
  :class:`~repro.workloads.loadgen.RampResult` client series back into a
  trace, closing the measure → replay loop.

Constructors: :func:`constant`, :func:`piecewise`, :func:`ramp`,
:func:`diurnal`, :func:`burst`, :func:`flash_crowd`, :func:`replay`, and
:func:`from_spec` for the CLI's compact ``name:key=value,...`` syntax.

**Hybrid fluid/discrete populations.**  Any spec accepts two extra keys,
``population=`` (a multiplier taking a demo-sized shape to 10⁵–10⁶
clients) and ``cohort=`` (how many of those clients are simulated as
real discrete conversations).  The result is a :class:`HybridTrace`:
``level(t)`` is the *total* population, ``cohort_level(t)`` the sampled
discrete slice the engine runs per-message, and ``fluid_level(t)`` the
remainder carried analytically by
:class:`repro.sim.fluid.FluidPopulation`.  Hybrid specs round-trip
exactly: ``from_spec(trace.name)`` rebuilds the same trace, spec string
and all.  Programmatic construction goes through :func:`hybrid`.

A small **fixture library** of named :func:`piecewise` scenarios ships
with the package (:func:`fixture` / :func:`fixtures`): real-world-shaped
step functions — a Wikipedia-style flash crowd, a Black-Friday double
wave, an office-hours workday — resolvable by name through
:func:`from_spec` (bare ``wikipedia_flash`` or parameterized
``fixture:name=wikipedia_flash,scale=2``) so sweeps and the CLI get
scenario diversity without hand-writing step lists.
"""

from __future__ import annotations

import math
import random
from collections.abc import Callable, Sequence

from repro.errors import ControlError

__all__ = [
    "Trace",
    "HybridTrace",
    "constant",
    "piecewise",
    "ramp",
    "diurnal",
    "burst",
    "flash_crowd",
    "replay",
    "fixture",
    "fixtures",
    "hybrid",
    "from_spec",
]


class Trace:
    """A deterministic client-population target over simulation time.

    Wraps a real-valued function of time; :meth:`level` floors and clamps
    it to a non-negative integer client count.  Combinators return new
    traces and never mutate.
    """

    __slots__ = ("_fn", "name")

    def __init__(self, fn: Callable[[float], float], name: str = "trace"):
        self._fn = fn
        self.name = name

    # ------------------------------------------------------------------ #

    def level(self, t: float) -> int:
        """Target client population at time ``t`` (non-negative integer)."""
        return max(0, int(math.floor(self._fn(t))))

    def __call__(self, t: float) -> int:
        return self.level(t)

    def sample(self, start: float, end: float, step: float) -> list[int]:
        """Levels at ``start, start+step, ...`` strictly below ``end``.

        An empty window (``end == start``) contains no sample points and
        returns ``[]``.
        """
        if step <= 0.0:
            raise ControlError(f"sample step must be > 0, got {step}")
        if end < start:
            raise ControlError(f"bad sample window: ({start}, {end})")
        count = max(0, int(math.ceil((end - start) / step - 1e-12)))
        return [self.level(start + i * step) for i in range(count)]

    def peak(self, start: float, end: float, step: float = 1.0) -> int:
        """Highest sampled level over ``[start, end)`` (must be non-empty)."""
        levels = self.sample(start, end, step)
        if not levels:
            raise ControlError(
                f"cannot take the peak of an empty window ({start}, {end})"
            )
        return max(levels)

    # ------------------------------------------------------------------ #
    # combinators

    def __add__(self, other: "Trace") -> "Trace":
        if not isinstance(other, Trace):
            return NotImplemented
        fn_a, fn_b = self._fn, other._fn
        return Trace(
            lambda t: fn_a(t) + fn_b(t), f"{self.name}+{other.name}"
        )

    def scale(self, factor: float) -> "Trace":
        """This trace with every level multiplied by ``factor``."""
        if factor < 0.0:
            raise ControlError(f"scale factor must be >= 0, got {factor}")
        fn = self._fn
        return Trace(lambda t: fn(t) * factor, f"{self.name}*{factor:g}")

    def clamp(self, low: int, high: int) -> "Trace":
        """This trace with levels clipped into ``[low, high]``."""
        if not (0 <= low <= high):
            raise ControlError(f"need 0 <= low <= high, got ({low}, {high})")
        fn = self._fn
        return Trace(
            lambda t: min(float(high), max(float(low), fn(t))),
            f"clamp({self.name},{low},{high})",
        )

    def delayed(self, offset: float) -> "Trace":
        """This trace shifted ``offset`` seconds later in time."""
        fn = self._fn
        return Trace(lambda t: fn(t - offset), f"{self.name}@+{offset:g}s")

    def jittered(
        self, amplitude: int, seed: int, quantum: float = 1.0
    ) -> "Trace":
        """Add seeded uniform jitter of ``±amplitude`` clients.

        ``seed`` is mandatory — there is no implicit randomness anywhere
        in the control plane.  The jitter for time ``t`` is drawn from a
        generator keyed on ``(seed, floor(t / quantum))``, so the result
        is still a pure function of time: re-sampling any instant yields
        the same level, and two runs with the same seed see the same
        trace.
        """
        if amplitude < 0:
            raise ControlError(f"amplitude must be >= 0, got {amplitude}")
        if quantum <= 0.0:
            raise ControlError(f"quantum must be > 0, got {quantum}")
        fn = self._fn

        def jittered_fn(t: float) -> float:
            bucket = int(math.floor(t / quantum))
            # Knuth-style mix of (seed, bucket) into one int; Random()
            # accepts only scalar seeds.
            draw = random.Random(seed * 2654435761 + bucket).uniform(
                -amplitude, amplitude
            )
            return fn(t) + draw

        return Trace(jittered_fn, f"{self.name}~{amplitude}(seed={seed})")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Trace({self.name!r})"


# ---------------------------------------------------------------------- #
# constructors


def constant(level: int) -> Trace:
    """A fixed client population — the paper's own (static) scenario."""
    if level < 0:
        raise ControlError(f"level must be >= 0, got {level}")
    return Trace(lambda t: float(level), f"constant({level})")


def piecewise(steps: Sequence[tuple[float, int]]) -> Trace:
    """A step function: ``steps`` are ``(start_time, level)`` pairs.

    Times must be non-negative and strictly increasing; before the first
    step the level is the first step's level.
    """
    if not steps:
        raise ControlError("piecewise trace needs at least one step")
    times = [float(t) for t, _ in steps]
    levels = [int(level) for _, level in steps]
    if min(levels) < 0:
        raise ControlError(f"levels must be >= 0, got {min(levels)}")
    if times[0] < 0.0 or any(b <= a for a, b in zip(times, times[1:])):
        raise ControlError(
            f"step times must be >= 0 and strictly increasing, got {times}"
        )

    def fn(t: float) -> float:
        level = levels[0]
        for start, step_level in zip(times, levels):
            if t >= start:
                level = step_level
            else:
                break
        return float(level)

    return Trace(fn, f"piecewise({len(steps)} steps)")


def ramp(
    start_level: int, end_level: int, t_start: float, t_end: float
) -> Trace:
    """Linear growth (or decline) between two instants, flat outside."""
    if min(start_level, end_level) < 0:
        raise ControlError("levels must be >= 0")
    if t_end <= t_start:
        raise ControlError(f"need t_start < t_end, got ({t_start}, {t_end})")

    def fn(t: float) -> float:
        if t <= t_start:
            return float(start_level)
        if t >= t_end:
            return float(end_level)
        frac = (t - t_start) / (t_end - t_start)
        return start_level + (end_level - start_level) * frac

    return Trace(fn, f"ramp({start_level}->{end_level})")


def diurnal(
    base: int, peak: int, period: float, phase: float = 0.0
) -> Trace:
    """A sinusoidal day/night cycle between ``base`` and ``peak``."""
    if not (0 <= base <= peak):
        raise ControlError(f"need 0 <= base <= peak, got ({base}, {peak})")
    if period <= 0.0:
        raise ControlError(f"period must be > 0, got {period}")
    mid = (base + peak) / 2.0
    amp = (peak - base) / 2.0

    def fn(t: float) -> float:
        return mid - amp * math.cos(2.0 * math.pi * (t - phase) / period)

    return Trace(fn, f"diurnal({base}..{peak},T={period:g})")


def burst(base: int, burst_level: int, at: float, duration: float) -> Trace:
    """A rectangular burst: ``burst_level`` clients during the window."""
    if min(base, burst_level) < 0:
        raise ControlError("levels must be >= 0")
    if duration <= 0.0:
        raise ControlError(f"duration must be > 0, got {duration}")

    def fn(t: float) -> float:
        return float(burst_level if at <= t < at + duration else base)

    return Trace(fn, f"burst({base}->{burst_level}@{at:g})")


def flash_crowd(
    base: int, peak: int, at: float, rise: float = 5.0, fall: float = 30.0
) -> Trace:
    """A flash crowd: sudden linear rise to ``peak``, exponential decay.

    Level is ``base`` before ``at``, climbs linearly to ``peak`` over
    ``rise`` seconds, then relaxes back towards ``base`` with time
    constant ``fall`` — the canonical shape of a link going viral.
    """
    if not (0 <= base <= peak):
        raise ControlError(f"need 0 <= base <= peak, got ({base}, {peak})")
    if rise <= 0.0 or fall <= 0.0:
        raise ControlError(
            f"rise and fall must be > 0, got ({rise}, {fall})"
        )

    def fn(t: float) -> float:
        if t < at:
            return float(base)
        if t < at + rise:
            return base + (peak - base) * (t - at) / rise
        return base + (peak - base) * math.exp(-(t - at - rise) / fall)

    return Trace(fn, f"flash({base}->{peak}@{at:g})")


def replay(result: object, window: float = 1.0) -> Trace:
    """Replay the client series of a recorded ramp experiment.

    Accepts a :class:`~repro.workloads.loadgen.RampResult` (or anything
    with a per-bucket ``clients`` array) and holds each bucket's client
    count for ``window`` seconds; beyond the recording the last level
    persists, so a replayed run can outlive the original.
    """
    clients = getattr(result, "clients", result)
    levels = [int(c) for c in clients]
    if not levels:
        raise ControlError("cannot replay an empty client series")
    if window <= 0.0:
        raise ControlError(f"window must be > 0, got {window}")
    last = len(levels) - 1

    def fn(t: float) -> float:
        if t < 0.0:
            return float(levels[0])
        return float(levels[min(int(t / window), last)])

    return Trace(fn, f"replay({len(levels)} buckets)")


# ---------------------------------------------------------------------- #
# hybrid fluid/discrete populations


class HybridTrace(Trace):
    """A trace split into a discrete sampled cohort and a fluid remainder.

    ``population`` multiplies the base shape (so a demo-sized fixture can
    describe 10⁶ clients without rewriting its steps); ``cohort`` caps how
    many of the resulting clients the engine simulates as real closed-loop
    conversations.  The partition is over the **floored** total —
    ``cohort_level(t) + fluid_level(t) == level(t)`` exactly — so a cohort
    at least as large as the peak level leaves zero fluid mass and the
    hybrid run degenerates to the ordinary all-discrete simulation.

    It *is a* :class:`Trace` (``level`` reports the total population), so
    everything that samples traces — policies peeking ahead, capacity
    planning, reports — sees the true demand without knowing about the
    split.
    """

    __slots__ = ("population", "cohort")

    def __init__(
        self, base: Trace, population: float = 1.0, cohort: int = 16
    ):
        if not isinstance(base, Trace):
            raise ControlError(
                f"hybrid base must be a Trace, got {type(base).__name__}"
            )
        if population <= 0.0:
            raise ControlError(
                f"population multiplier must be > 0, got {population}"
            )
        if cohort < 1:
            raise ControlError(f"cohort must be >= 1, got {cohort}")
        base_fn = base._fn
        factor = float(population)
        if factor == 1.0:
            fn = base_fn
        else:
            def fn(t: float) -> float:
                return base_fn(t) * factor
        super().__init__(
            fn,
            f"hybrid({base.name},population={factor:g},cohort={int(cohort)})",
        )
        self.population = factor
        self.cohort = int(cohort)

    def cohort_level(self, t: float) -> int:
        """Discrete clients to actually run at ``t`` (≤ ``cohort``)."""
        return min(self.cohort, self.level(t))

    def fluid_level(self, t: float) -> float:
        """Client mass carried by the fluid model at ``t``.

        Exactly ``level(t) - cohort_level(t)`` — the partition covers the
        floored total, so the two halves always recombine to ``level``.
        """
        return float(self.level(t) - self.cohort_level(t))


def hybrid(base: Trace, population: float = 1.0, cohort: int = 16) -> Trace:
    """Split ``base`` (scaled by ``population``) into cohort + fluid.

    Returns a :class:`HybridTrace`.  See the class docstring for the
    partition semantics; :func:`from_spec` reaches the same constructor
    through the ``population=`` / ``cohort=`` spec keys.
    """
    return HybridTrace(base, population=population, cohort=cohort)


# ---------------------------------------------------------------------- #
# fixture library

#: Named piecewise scenarios, each a list of ``(start_time, level)``
#: steps over a few simulated minutes.  Shapes are stylized from real
#: arrival traces, scaled to client counts a demo-size pool can serve.
_FIXTURES: dict[str, tuple[tuple[float, int], ...]] = {
    # A page goes viral (the Wikipedia flash-crowd shape): a quiet
    # baseline multiplies tenfold within half a minute, then decays in
    # steps as the link ages off front pages.
    "wikipedia_flash": (
        (0.0, 4), (25.0, 18), (35.0, 40), (55.0, 28), (75.0, 16),
        (100.0, 8), (125.0, 5),
    ),
    # Doors-open retail surge with a second evening wave and a deep
    # overnight trough — two distinct peaks stress scale-up *and*
    # scale-down decisions in one run.
    "black_friday": (
        (0.0, 6), (20.0, 24), (40.0, 36), (60.0, 18), (80.0, 32),
        (105.0, 14), (130.0, 5),
    ),
    # An office-hours workday in miniature: morning ramp, lunch dip,
    # afternoon plateau, evening wind-down.
    "workday": (
        (0.0, 3), (15.0, 12), (35.0, 24), (55.0, 16), (70.0, 26),
        (95.0, 20), (115.0, 8), (135.0, 4),
    ),
}


def fixtures() -> tuple[str, ...]:
    """Names of the shipped trace fixtures, sorted."""
    return tuple(sorted(_FIXTURES))


def fixture(name: str, scale: float = 1.0) -> Trace:
    """A named :func:`piecewise` fixture, optionally level-scaled.

    ``scale`` multiplies every level (e.g. ``scale=2`` doubles the
    crowd), so one shape serves pools of different capacities.
    """
    steps = _FIXTURES.get(name)
    if steps is None:
        raise ControlError(
            f"unknown trace fixture {name!r}; "
            f"available fixtures: {', '.join(fixtures())}"
        )
    trace = piecewise(list(steps))
    if scale != 1.0:
        trace = trace.scale(scale)
    trace.name = f"fixture:{name}" + (f"*{scale:g}" if scale != 1.0 else "")
    return trace


# ---------------------------------------------------------------------- #
# CLI spec parsing


_SPEC_BUILDERS: dict[str, tuple[Callable[..., Trace], dict[str, type]]] = {
    "constant": (constant, {"level": int}),
    "ramp": (
        ramp,
        {"start_level": int, "end_level": int, "t_start": float,
         "t_end": float},
    ),
    "diurnal": (
        diurnal, {"base": int, "peak": int, "period": float, "phase": float}
    ),
    "burst": (
        burst, {"base": int, "burst_level": int, "at": float,
                "duration": float},
    ),
    "flash": (
        flash_crowd,
        {"base": int, "peak": int, "at": float, "rise": float, "fall": float},
    ),
}


def from_spec(spec: str) -> Trace:
    """Build a trace from a compact ``name:key=value,...`` string.

    The CLI's trace syntax::

        constant:level=20
        ramp:start_level=5,end_level=60,t_start=10,t_end=50
        diurnal:base=5,peak=40,period=120
        burst:base=5,burst_level=50,at=30,duration=20
        flash:base=5,peak=60,at=30,rise=5,fall=30
        piecewise:steps=0/4|30/40|60/4
        wikipedia_flash
        fixture:name=black_friday,scale=1.5
        diurnal:base=4,peak=10,period=160,population=100000,cohort=24

    ``piecewise`` steps are ``time/level`` pairs joined by ``|``; a bare
    fixture name (see :func:`fixtures`) resolves from the shipped
    library, with ``fixture:name=...,scale=...`` for level scaling.
    The compact forms ``fixture:black_friday`` and
    ``fixture:black_friday*1.5`` are accepted too — they are exactly
    what :attr:`Trace.name` reports for a fixture trace, so fixture
    specs round-trip: ``from_spec(fixture(n, s).name)`` rebuilds an
    equivalent trace.

    Every keyed form additionally accepts ``population=`` (a ``> 0``
    multiplier applied to the shape) and/or ``cohort=`` (``>= 1``
    discrete sampled clients, default 16): their presence upgrades the
    result to a :class:`HybridTrace` whose ``name`` is the spec string
    itself, so hybrid specs round-trip exactly through
    ``from_spec(trace.name)``.
    """
    name, _, body = spec.partition(":")
    name = name.strip().lower()
    if name in _FIXTURES and not body.strip():
        return fixture(name)
    if name == "fixture" and body.strip() and "=" not in body:
        # Compact (round-trippable) form: "fixture:NAME" or
        # "fixture:NAME*SCALE" — the spelling of Trace.name.
        raw_name, star, raw_scale = body.strip().partition("*")
        if star:
            try:
                scale = float(raw_scale)
            except ValueError as exc:
                raise ControlError(
                    f"trace option scale={raw_scale!r} is not a valid float"
                ) from exc
        else:
            scale = 1.0
        return fixture(raw_name.strip(), scale=scale)
    kwargs: dict[str, str] = {}
    if body.strip():
        for item in body.split(","):
            key, separator, value = item.partition("=")
            if not separator or not key.strip():
                raise ControlError(
                    f"trace spec expects key=value items, got {item!r}"
                )
            # Accept dashed keys like every other key=value CLI surface.
            kwargs[key.strip().replace("-", "_")] = value.strip()
    # Hybrid keys are grammar-wide, not per-builder: pop them before any
    # builder sees (and rejects) them.
    raw_population = kwargs.pop("population", None)
    raw_cohort = kwargs.pop("cohort", None)
    trace = _build_base(name, kwargs)
    if raw_population is None and raw_cohort is None:
        return trace
    population = 1.0
    if raw_population is not None:
        try:
            population = float(raw_population)
        except ValueError as exc:
            raise ControlError(
                f"trace option population={raw_population!r} is not a "
                f"valid float"
            ) from exc
    cohort = 16
    if raw_cohort is not None:
        try:
            cohort = int(raw_cohort)
        except ValueError as exc:
            raise ControlError(
                f"trace option cohort={raw_cohort!r} is not a valid int"
            ) from exc
    trace = HybridTrace(trace, population=population, cohort=cohort)
    # The spec itself is the canonical name: exact round-trip through
    # from_spec(trace.name).
    trace.name = spec
    return trace


def _build_base(name: str, kwargs: dict[str, str]) -> Trace:
    """Dispatch the keyed spec forms (fixture / piecewise / builders)."""
    if name == "fixture":
        fixture_name = kwargs.pop("name", "")
        raw_scale = kwargs.pop("scale", "1.0")
        if kwargs:
            raise ControlError(
                "fixture trace only takes name=... and scale=..., got "
                f"{sorted(kwargs)}"
            )
        try:
            scale = float(raw_scale)
        except ValueError as exc:
            raise ControlError(
                f"trace option scale={raw_scale!r} is not a valid float"
            ) from exc
        return fixture(fixture_name, scale=scale)
    if name == "piecewise":
        raw = kwargs.pop("steps", "")
        if kwargs:
            raise ControlError(
                f"piecewise trace only takes steps=..., got {sorted(kwargs)}"
            )
        steps = []
        for pair in raw.split("|"):
            if not pair.strip():
                continue
            parts = pair.split("/")
            try:
                if len(parts) != 2:
                    raise ValueError(f"{pair!r} is not one time/level pair")
                steps.append((float(parts[0]), int(parts[1])))
            except ValueError as exc:
                raise ControlError(
                    f"piecewise steps must be time/level pairs joined by "
                    f"'|', got {raw!r}: {exc}"
                ) from exc
        return piecewise(steps)
    if name not in _SPEC_BUILDERS:
        raise ControlError(
            f"unknown trace type {name!r}; expected one of "
            f"{sorted([*_SPEC_BUILDERS, 'piecewise', 'fixture'])} "
            f"or a fixture name ({', '.join(fixtures())})"
        )
    builder, fields = _SPEC_BUILDERS[name]
    unknown = sorted(set(kwargs) - set(fields))
    if unknown:
        raise ControlError(
            f"unknown trace option(s) {unknown} for {name!r}; "
            f"valid options: {sorted(fields)}"
        )
    converted: dict[str, object] = {}
    for key, value in kwargs.items():
        try:
            converted[key] = fields[key](value)
        except ValueError as exc:
            raise ControlError(
                f"trace option {key}={value!r} is not a valid "
                f"{fields[key].__name__}"
            ) from exc
    try:
        return builder(**converted)
    except TypeError as exc:
        raise ControlError(
            f"trace {name!r} is missing required options "
            f"(valid options: {sorted(fields)}): {exc}"
        ) from exc
