"""Core analytic models and deployment planners.

This package contains the paper's primary contribution:

* :mod:`repro.core.params` — the calibrated model parameter set (Table 3);
* :mod:`repro.core.comm_model` / :mod:`repro.core.comp_model` — the per-node
  communication and computation time models (Eqs. 1–10);
* :mod:`repro.core.throughput` — scheduling / service / platform throughput
  (Eqs. 11–16);
* :mod:`repro.core.kernels` — batched/array versions of the throughput
  kernels and the memoizing :class:`~repro.core.kernels.HierarchyEvaluator`
  every planner's hot loop runs on;
* :mod:`repro.core.hierarchy` — the deployment-tree data structure;
* :mod:`repro.core.heuristic` — the heterogeneous deployment heuristic
  (Algorithm 1);
* :mod:`repro.core.homogeneous` — the optimal complete-spanning-d-ary-tree
  planner for homogeneous pools (reference [10] of the paper);
* :mod:`repro.core.optimal` — exhaustive reference planners for small pools;
* :mod:`repro.core.baselines` — star / balanced / chain deployments (§5.3);
* :mod:`repro.core.registry` — the pluggable planner registry and typed
  per-planner options (the modern entry point, with
  :mod:`repro.api` on top);
* :mod:`repro.core.planner` — the deprecated high-level planning façade.
"""

from repro.core.params import LevelSizes, ModelParams
from repro.core.hierarchy import Hierarchy, Role
from repro.core.throughput import (
    agent_sched_throughput,
    hierarchy_throughput,
    server_sched_throughput,
    service_throughput,
    ThroughputReport,
)
from repro.core.heuristic import HeuristicPlanner
from repro.core.homogeneous import HomogeneousPlanner
from repro.core.kernels import (
    HierarchyEvaluator,
    agent_sched_throughput_many,
    server_sched_throughput_many,
    service_throughput_prefixes,
    supported_children_many,
)
from repro.core.baselines import balanced_deployment, chain_deployment, star_deployment
from repro.core.registry import (
    REGISTRY,
    BalancedOptions,
    ChainOptions,
    Deployment,
    ExhaustiveOptions,
    HeuristicOptions,
    HomogeneousOptions,
    PlannerOptions,
    PlannerRegistry,
    StarOptions,
    default_middle_agents,
    register_planner,
)
from repro.core.planner import plan_deployment

__all__ = [
    "REGISTRY",
    "Deployment",
    "PlannerOptions",
    "PlannerRegistry",
    "register_planner",
    "default_middle_agents",
    "HeuristicOptions",
    "HomogeneousOptions",
    "ExhaustiveOptions",
    "StarOptions",
    "BalancedOptions",
    "ChainOptions",
    "LevelSizes",
    "ModelParams",
    "Hierarchy",
    "Role",
    "agent_sched_throughput",
    "server_sched_throughput",
    "service_throughput",
    "hierarchy_throughput",
    "ThroughputReport",
    "HierarchyEvaluator",
    "agent_sched_throughput_many",
    "server_sched_throughput_many",
    "service_throughput_prefixes",
    "supported_children_many",
    "HeuristicPlanner",
    "HomogeneousPlanner",
    "star_deployment",
    "balanced_deployment",
    "chain_deployment",
    "plan_deployment",
]
