"""Baseline deployments — the "intuitive alternatives" of §5.3.

The paper compares its automatically-generated hierarchy against:

* a **star**: one node is the agent, every other node a server directly
  attached to it;
* a **balanced** two-level tree: one top agent over ``m`` middle agents,
  servers spread as evenly as possible (on the 200-node Orsay pool the
  authors used 1 + 14 agents with 14 servers each, one agent keeping 3);
* (for ablations) a **chain** of agents ending in servers, and complete
  d-ary trees via :func:`dary_deployment`, the building block of the
  homogeneous-optimal planner of [10].

Node placement is *positional*: baselines assign roles in pool order,
exactly like a human writing a deployment file without performance
modelling — which is the point of the comparison.  Pass a pool sorted by
power to emulate a slightly smarter human.
"""

from __future__ import annotations

from repro.core.hierarchy import Hierarchy, Role
from repro.errors import PlanningError
from repro.platforms.pool import NodePool

__all__ = [
    "star_deployment",
    "balanced_deployment",
    "chain_deployment",
    "dary_deployment",
]


def _require(pool: NodePool, minimum: int, what: str) -> None:
    if len(pool) < minimum:
        raise PlanningError(
            f"{what} needs at least {minimum} nodes, pool has {len(pool)}"
        )


def star_deployment(pool: NodePool) -> Hierarchy:
    """One agent (first pool node) with all remaining nodes as servers."""
    _require(pool, 2, "a star deployment")
    hierarchy = Hierarchy()
    agent = pool[0]
    hierarchy.set_root(agent.name, agent.power)
    for node in list(pool)[1:]:
        hierarchy.add_server(node.name, node.power, agent.name)
    return hierarchy


def balanced_deployment(pool: NodePool, middle_agents: int) -> Hierarchy:
    """A two-level tree: root agent, ``middle_agents`` agents, servers below.

    Servers are dealt round-robin across the middle agents, so counts
    differ by at most one (the paper's 14x14 deployment with one agent
    keeping only 3 servers is exactly this shape on 200 nodes).
    """
    if middle_agents < 1:
        raise PlanningError(
            f"balanced deployment needs >= 1 middle agent, got {middle_agents}"
        )
    # root + middles + at least 2 servers per middle agent (validity rule).
    _require(pool, 1 + middle_agents + 2 * middle_agents, "this balanced deployment")
    nodes = list(pool)
    hierarchy = Hierarchy()
    root = nodes[0]
    hierarchy.set_root(root.name, root.power)
    middles = nodes[1 : 1 + middle_agents]
    for node in middles:
        hierarchy.add_agent(node.name, node.power, root.name)
    servers = nodes[1 + middle_agents :]
    for index, node in enumerate(servers):
        parent = middles[index % middle_agents]
        hierarchy.add_server(node.name, node.power, parent.name)
    return hierarchy


def chain_deployment(pool: NodePool, agents: int) -> Hierarchy:
    """A chain of ``agents`` agents; all remaining nodes are servers.

    Each non-terminal agent has two children: the next agent in the chain
    and one server; the terminal agent takes all remaining servers.  This
    is the deepest valid hierarchy for a given agent count and serves as a
    worst-case baseline in ablation benchmarks.
    """
    if agents < 1:
        raise PlanningError(f"chain needs >= 1 agent, got {agents}")
    # Each non-terminal agent consumes 1 server; terminal agent needs >= 1
    # server (>= 2 if it is not the root).
    minimum = agents + (agents - 1) + (2 if agents > 1 else 1)
    _require(pool, minimum, f"a chain of {agents} agents")
    nodes = list(pool)
    hierarchy = Hierarchy()
    hierarchy.set_root(nodes[0].name, nodes[0].power)
    agent_nodes = nodes[:agents]
    server_nodes = nodes[agents:]
    for previous, current in zip(agent_nodes, agent_nodes[1:]):
        hierarchy.add_agent(current.name, current.power, previous.name)
    server_iter = iter(server_nodes)
    # One server per non-terminal agent keeps every inner agent at degree 2.
    for agent_node in agent_nodes[:-1]:
        node = next(server_iter)
        hierarchy.add_server(node.name, node.power, agent_node.name)
    for node in server_iter:
        hierarchy.add_server(node.name, node.power, agent_nodes[-1].name)
    return hierarchy


def dary_deployment(pool: NodePool, degree: int) -> Hierarchy:
    """Complete spanning d-ary tree over the whole pool (reference [10]).

    Nodes are placed in pool order, breadth-first: internal positions become
    agents, leaves become servers.  ``degree == len(pool) - 1`` is a star.

    ``degree == 1`` is special-cased: a spanning unary chain has the same
    steady-state throughput as a single agent-server pair (the min over
    identical agent rates) but violates the validity rule that non-root
    agents have >= 2 children, so the minimal 1-agent/1-server deployment
    is returned instead — matching the paper's Step 6/7 and its Table 4
    "degree 1" rows.

    For ``degree >= 2``, a partial last level can leave an inner agent with
    a lone child; such agents are repaired by lifting the child to the
    grandparent and demoting the agent to a server, preserving node count.
    """
    if degree < 1:
        raise PlanningError(f"degree must be >= 1, got {degree}")
    _require(pool, 2, "a d-ary deployment")
    if degree == 1:
        return star_deployment(pool.take(2))
    nodes = list(pool)
    n = len(nodes)
    # Breadth-first slot assignment: node i's parent is node (i-1)//degree;
    # a node is internal (an agent) iff it has at least one child.
    parent_index = [(i - 1) // degree for i in range(n)]
    has_children = [False] * n
    for i in range(1, n):
        has_children[parent_index[i]] = True
    hierarchy = Hierarchy.from_arrays(
        [node.name for node in nodes],
        [node.power for node in nodes],
        parent_index,
        [Role.AGENT if has_children[i] else Role.SERVER for i in range(n)],
    )
    # In a fresh complete d-ary tree every internal node except the last
    # has a full d children, so a lone-child agent exists iff the last
    # internal (index (n-2)//d) is a non-root holding exactly one child —
    # checking that arithmetically skips a whole-tree scan per candidate.
    last_internal = (n - 2) // degree
    if last_internal > 0 and n - 1 - degree * last_internal == 1:
        _repair_single_child_agents(hierarchy)
    return hierarchy


def _repair_single_child_agents(hierarchy: Hierarchy) -> None:
    """Fix non-root agents holding a single child.

    A partial last level can leave one inner agent with a lone child.  The
    child (with its subtree, if any) moves up to the grandparent and the
    agent is demoted to a server — preserving the node count while
    restoring validity.  Repeats until a fixed point is reached.
    """
    role = hierarchy._role
    children = hierarchy._children
    while True:
        root = hierarchy.root
        # Scan in BFS order (like the historical hierarchy.agents walk) so
        # repeated repairs pick the same agent first.
        target = next(
            (
                node
                for node in hierarchy
                if node != root
                and role[node] is Role.AGENT
                and len(children[node]) == 1
            ),
            None,
        )
        if target is None:
            return
        parent = hierarchy.parent(target)
        assert parent is not None
        hierarchy.reattach(children[target][0], parent)
        hierarchy.demote(target)
