"""Communication time models — Equations 1–4 of the paper.

The communication model assumes **homogeneous links** of bandwidth ``B`` and
the single-port serial resource model M(r,s,w): a node sends and receives
messages one at a time, so per-request communication time is simply total
bits divided by bandwidth.

Agent traffic (Eqs. 1–2) mixes levels: the message exchanged with the
*parent* travels on an agent-level link while the messages exchanged with
each of the ``d`` children travel on child-level links.  In the paper all
of an agent's children are modelled with a single (Sreq, Srep) pair; here
the caller chooses which :class:`~repro.core.params.LevelSizes` the children
use (agent-level when children are agents, server-level when they are
servers — the planner conservatively uses agent-level sizes, matching the
paper's Table 3 usage).
"""

from __future__ import annotations

from repro.core.params import LevelSizes, ModelParams
from repro.errors import ParameterError

__all__ = [
    "agent_receive_time",
    "agent_send_time",
    "server_receive_time",
    "server_send_time",
    "agent_comm_time",
    "server_comm_time",
]


def _check_degree(degree: int) -> None:
    if degree < 0:
        raise ParameterError(f"degree must be >= 0, got {degree}")


def agent_receive_time(
    params: ModelParams,
    degree: int,
    child_sizes: LevelSizes | None = None,
) -> float:
    """Eq. 1 — seconds an agent spends receiving per request.

    One request of size ``Sreq`` arrives from the parent and ``degree``
    replies of size ``Srep`` arrive from the children.
    """
    _check_degree(degree)
    sizes = params.agent_sizes if child_sizes is None else child_sizes
    return (params.agent_sizes.sreq + degree * sizes.srep) / params.bandwidth


def agent_send_time(
    params: ModelParams,
    degree: int,
    child_sizes: LevelSizes | None = None,
) -> float:
    """Eq. 2 — seconds an agent spends sending per request.

    The request is forwarded to each of the ``degree`` children and one
    merged reply of size ``Srep`` is returned to the parent.
    """
    _check_degree(degree)
    sizes = params.agent_sizes if child_sizes is None else child_sizes
    return (degree * sizes.sreq + params.agent_sizes.srep) / params.bandwidth


def server_receive_time(params: ModelParams) -> float:
    """Eq. 3 — seconds a server spends receiving one scheduling request."""
    return params.server_sizes.sreq / params.bandwidth


def server_send_time(params: ModelParams) -> float:
    """Eq. 4 — seconds a server spends sending one prediction reply."""
    return params.server_sizes.srep / params.bandwidth


def agent_comm_time(
    params: ModelParams,
    degree: int,
    child_sizes: LevelSizes | None = None,
) -> float:
    """Total per-request communication seconds for an agent (Eq. 1 + Eq. 2)."""
    return agent_receive_time(params, degree, child_sizes) + agent_send_time(
        params, degree, child_sizes
    )


def server_comm_time(params: ModelParams) -> float:
    """Total per-request scheduling-phase communication seconds for a server."""
    return server_receive_time(params) + server_send_time(params)
