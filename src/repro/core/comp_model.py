"""Computation time models — Equations 5–10 of the paper.

Two kinds of computation occur per request:

* **Agents** process the incoming request (``Wreq``) and merge/select among
  the replies of their ``d`` children (``Wrep(d) = Wfix + Wsel*d``) — Eq. 5.
* **Servers** produce a performance *prediction* for every request during
  the scheduling phase (``Wpre``) and execute the application (``Wapp``)
  for the fraction of requests dispatched to them — Eqs. 6–10.

Equation 10 is the heart of the service model: when the set ``S`` of servers
completes ``N`` requests in a window, each server i predicts all ``N`` and
serves ``N_i`` with ``sum_i N_i = N``; the steady-state split makes every
server finish simultaneously, yielding a per-request service time of::

    (1 + sum_i Wpre_i / Wapp_i) / (sum_i w_i / Wapp_i)

The sums run over the *servers* (the paper's sum bound "N" is a typo).
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.core.params import ModelParams
from repro.errors import ParameterError

__all__ = [
    "agent_comp_time",
    "server_comp_time",
    "server_share",
]


def agent_comp_time(params: ModelParams, power: float, degree: int) -> float:
    """Eq. 5 — seconds of computation an agent spends per request.

    Parameters
    ----------
    power:
        The agent node's computing power ``w`` in MFlop/s.
    degree:
        Number of children ``d`` of the agent.
    """
    if power <= 0.0:
        raise ParameterError(f"power must be > 0, got {power}")
    if degree < 0:
        raise ParameterError(f"degree must be >= 0, got {degree}")
    return (params.wreq + params.wrep(degree)) / power


def _validate_servers(
    powers: Sequence[float], app_works: Sequence[float]
) -> None:
    if len(powers) == 0:
        raise ParameterError("server set must not be empty")
    if len(powers) != len(app_works):
        raise ParameterError(
            f"got {len(powers)} powers but {len(app_works)} app works"
        )
    for w in powers:
        if w <= 0.0:
            raise ParameterError(f"server power must be > 0, got {w}")
    for wapp in app_works:
        if wapp <= 0.0:
            raise ParameterError(f"Wapp must be > 0, got {wapp}")


def server_comp_time(
    params: ModelParams,
    powers: Sequence[float],
    app_works: Sequence[float],
) -> float:
    """Eq. 10 — aggregate seconds of server computation per completed request.

    Parameters
    ----------
    powers:
        Computing power ``w_i`` of each server (MFlop/s).
    app_works:
        Application work ``Wapp_i`` of each server (MFlop).  Per-server
        values allow heterogeneous service implementations; the paper's
        experiments use a single DGEMM size for all servers.
    """
    _validate_servers(powers, app_works)
    prediction_load = sum(params.wpre / wapp for wapp in app_works)
    service_rate = sum(w / wapp for w, wapp in zip(powers, app_works))
    return (1.0 + prediction_load) / service_rate


def server_share(
    params: ModelParams,
    powers: Sequence[float],
    app_works: Sequence[float],
) -> list[float]:
    """Eq. 8 — steady-state fraction ``N_i / N`` of requests served by each server.

    Derived from Eqs. 6–9: with ``T`` the common completion time per
    request batch, ``N_i = (T*w_i - Wpre_i*N) / Wapp_i``.  Dividing by ``N``
    and substituting Eq. 10's ``T/N`` gives the per-server share.  Shares
    are clipped at zero: a server too slow to finish its prediction work
    within the steady-state window serves nothing (the paper's model
    implicitly assumes all shares are positive).

    Returns
    -------
    list[float]
        Fractions summing to 1 (after clipping and renormalization).
    """
    _validate_servers(powers, app_works)
    t_over_n = server_comp_time(params, powers, app_works)
    shares = [
        max(0.0, (t_over_n * w - params.wpre) / wapp)
        for w, wapp in zip(powers, app_works)
    ]
    total = sum(shares)
    if total <= 0.0:
        # Degenerate: prediction work swamps every server; split evenly.
        return [1.0 / len(shares)] * len(shares)
    return [s / total for s in shares]
