"""The heterogeneous deployment heuristic — Algorithm 1 of the paper.

The heuristic builds a hierarchy from a pool of nodes sorted by scheduling
power (``sort_nodes``).  Its driving quantities are the paper's

* ``calc_sch_pow(node, d)`` — the scheduling rate of a node acting as an
  agent with ``d`` children (strictly decreasing in ``d``), and
* ``calc_hier_ser_pow(servers)`` — the service rate of a server set
  (Eq. 15), increasing as servers are added.

Algorithm 1 alternates between adding servers ("while scheduling power
exceeds service power") and adding scheduling capacity (converting servers
to agents with ``shift_nodes``, each new agent taking children up to the
number it *supports*), stopping when demand is met, nodes run out, or
throughput starts decreasing.  The loop therefore converges to a balance
point: a scheduling rate ``t`` such that, giving every agent as many
children as it supports at rate ``t``, the servers filling those child
slots deliver a service power equal to ``t``.

This module implements two strategies:

``fixed_point`` (default)
    Solves for the balance point directly.  For each candidate agent count
    ``A`` (the ``A`` fastest nodes become agents), a binary search finds
    the scheduling target ``t`` where the service power of the servers
    that fit into the agents' supported child slots crosses ``t``; the
    best ``A`` wins and the hierarchy is materialized by capacity-filling.
    This is the deterministic fixed point the paper's interleaved loops
    approach, and it inherits the paper's boundary behaviour exactly: one
    agent + one server for tiny request grains (Step 6), a spanning star
    when service power never catches scheduling power.

``incremental``
    A literal greedy reading of the pseudo-code: grow one node at a time,
    each step choosing between attaching a server and promoting the
    strongest server to an agent, with best-snapshot rollback.  Kept for
    ablation (benchmarks compare both).

Interpretation choices are catalogued in DESIGN.md §3.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from functools import lru_cache

from repro.core.hierarchy import Hierarchy, NodeId
from repro.core.kernels import HierarchyEvaluator, NodeArrays
from repro.core.params import ModelParams
from repro.core.throughput import (
    ThroughputReport,
    agent_sched_throughput,
    service_throughput,
)
from repro.errors import PlanningError
from repro.platforms.node import Node
from repro.platforms.pool import NodePool

__all__ = [
    "calc_sch_pow",
    "calc_hier_ser_pow",
    "sort_nodes",
    "supported_children",
    "PlanStep",
    "HeuristicPlan",
    "HeuristicPlanner",
]

_REL_TOL = 1e-9
STRATEGIES = ("fixed_point", "incremental")


def calc_sch_pow(params: ModelParams, power: float, children: int) -> float:
    """Scheduling power of a node acting as an agent with ``children`` children.

    Paper procedure ``calc_sch_pow`` (Table 1); identical to
    :func:`repro.core.throughput.agent_sched_throughput`.
    """
    return agent_sched_throughput(params, power, children)


def calc_hier_ser_pow(
    params: ModelParams, server_powers: list[float], app_work: float
) -> float:
    """Service power of a hierarchy whose servers have ``server_powers``.

    Paper procedure ``calc_hier_ser_pow`` (Table 1): the rate at which the
    server set completes application requests when load is split in the
    steady-state proportions (Eq. 15).
    """
    return service_throughput(
        params, server_powers, [app_work] * len(server_powers)
    )


@lru_cache(maxsize=256)
def _sort_nodes_cached(
    node_key: tuple[tuple[str, float, float, float], ...],
    params: ModelParams,
) -> tuple[Node, ...]:
    """Memoized body of :func:`sort_nodes`, keyed by full node identity."""
    nodes = tuple(
        Node(power=power, name=name, base_power=base, background_load=load)
        for name, power, base, load in node_key
    )
    children = max(1, len(nodes) - 1)
    return tuple(
        sorted(
            nodes,
            key=lambda n: (calc_sch_pow(params, n.power, children), n.name),
            reverse=True,
        )
    )


def sort_nodes(pool: NodePool, params: ModelParams) -> list[Node]:
    """Paper procedure ``sort_nodes``: rank nodes by agent suitability.

    Nodes are ordered by descending ``calc_sch_pow`` with ``n_nodes - 1``
    children (Steps 1–2 of Algorithm 1); with a common parameter set this
    coincides with descending computing power, ties broken by name for
    determinism.  The ranking is memoized per (pool contents, params) so
    repeated planner probes of one pool sort only once.
    """
    node_key = tuple(
        (n.name, n.power, n.base_power, n.background_load) for n in pool
    )
    return list(_sort_nodes_cached(node_key, params))


def supported_children(
    params: ModelParams, power: float, target_rate: float
) -> int:
    """Largest degree at which a node still schedules at ``target_rate``.

    The agent rate is ``1 / (a + b*d)`` with

    * ``a = (Wreq + Wfix)/w + (Sreq + Srep)/B`` (degree-independent), and
    * ``b = Wsel/w + (Srep + Sreq)/B`` (per-child cost),

    so the supported child count is ``floor((1/target - a) / b)``.  Returns
    0 when the node cannot even sustain one child at the target rate.
    """
    if target_rate <= 0.0:
        raise PlanningError(f"target_rate must be > 0, got {target_rate}")
    fixed = params.agent_fixed_work / power + params.agent_comm_base
    per_child = params.wsel / power + params.agent_child_comm
    budget = 1.0 / target_rate - fixed
    if budget < per_child:
        return 0
    return int(math.floor(budget / per_child + _REL_TOL))


@dataclass(frozen=True)
class PlanStep:
    """One growth step of the incremental strategy, for tracing/ablation."""

    action: str  # "root", "server", "promote", "stop"
    node: NodeId | None
    parent: NodeId | None
    throughput: float
    detail: str = ""


@dataclass(frozen=True)
class HeuristicPlan:
    """Result of a heuristic planning run."""

    hierarchy: Hierarchy
    report: ThroughputReport
    strategy: str = "fixed_point"
    steps: tuple[PlanStep, ...] = field(repr=False, default=())
    demand: float | None = None

    @property
    def throughput(self) -> float:
        return self.report.throughput

    @property
    def nodes_used(self) -> int:
        return len(self.hierarchy)

    @property
    def root_degree(self) -> int:
        """Degree of the root agent (the "Heur. Deg." column of Table 4)."""
        return self.hierarchy.degree(self.hierarchy.root)

    def describe(self) -> str:
        shape = self.hierarchy.shape_signature()
        demand = "unbounded" if self.demand is None else f"{self.demand:g} req/s"
        return (
            f"HeuristicPlan[{self.strategy}]: rho={self.throughput:.2f} req/s "
            f"({self.report.bottleneck}-bound), nodes={shape[0]} "
            f"(agents={shape[1]}, servers={shape[2]}, height={shape[3]}), "
            f"demand={demand}"
        )


class HeuristicPlanner:
    """Automatic deployment planner for heterogeneous pools (Algorithm 1).

    Parameters
    ----------
    params:
        Calibrated model parameters (Table 3 defaults).
    strategy:
        ``"fixed_point"`` (default) or ``"incremental"`` — see the module
        docstring.
    patience:
        Incremental strategy only: consecutive non-improving growth steps
        tolerated before stopping (``1`` reproduces the paper's literal
        stop-at-first-decrease).
    allow_promotion:
        Incremental strategy only: with ``False`` the planner never runs
        ``shift_nodes`` and can only grow a star — an ablation isolating
        the value of multi-level hierarchies.
    agent_selection:
        Fixed-point strategy only.  ``"fastest"`` (default) takes the top
        of the sorted node list as agents, exactly as Algorithm 1's
        ``sort_nodes`` prescribes.  ``"windowed"`` additionally tries
        windows of *slower* nodes as the agent tier: when the workload is
        service-bound, spending the fastest nodes on scheduling wastes
        them, and the paper's policy can lose unboundedly on adversarial
        pools (e.g. one very fast node plus one slow one).  This is an
        extension beyond the paper, benchmarked in the ablation suite.
    """

    def __init__(
        self,
        params: ModelParams,
        strategy: str = "fixed_point",
        patience: int = 4,
        allow_promotion: bool = True,
        agent_selection: str = "fastest",
    ):
        if strategy not in STRATEGIES:
            raise PlanningError(
                f"unknown strategy {strategy!r}; expected one of {STRATEGIES}"
            )
        if patience < 1:
            raise PlanningError(f"patience must be >= 1, got {patience}")
        if agent_selection not in ("fastest", "windowed"):
            raise PlanningError(
                f"unknown agent_selection {agent_selection!r}; "
                "expected 'fastest' or 'windowed'"
            )
        self.params = params
        self.strategy = strategy
        self.patience = patience
        self.allow_promotion = allow_promotion
        self.agent_selection = agent_selection
        # Per-planner memoized evaluator: rates survive across plan() calls
        # (they depend only on params) and across incremental growth steps.
        self._evaluator = HierarchyEvaluator(params)

    # ------------------------------------------------------------------ #
    # public API

    def plan(
        self,
        pool: NodePool,
        app_work: float,
        demand: float | None = None,
    ) -> HeuristicPlan:
        """Build a deployment for ``pool`` running an ``app_work`` service.

        Parameters
        ----------
        app_work:
            Application work ``Wapp`` in MFlop.
        demand:
            Client demand in requests/s; growth stops at the cheapest
            deployment meeting it.  ``None`` maximizes throughput.

        Raises
        ------
        PlanningError
            If the pool has fewer than two nodes.
        """
        if len(pool) < 2:
            raise PlanningError(
                f"planning needs >= 2 nodes, pool has {len(pool)}"
            )
        if app_work <= 0.0:
            raise PlanningError(f"app_work must be > 0, got {app_work}")
        if demand is not None and demand <= 0.0:
            raise PlanningError(f"demand must be > 0, got {demand}")
        ranked = sort_nodes(pool, self.params)

        early = self._early_exit(ranked, app_work, demand)
        if early is not None:
            return early
        if self.strategy == "fixed_point":
            return self._plan_fixed_point(ranked, app_work, demand)
        return self._plan_incremental(ranked, app_work, demand)

    # ------------------------------------------------------------------ #
    # Steps 3-7: the degenerate 1-agent/1-server case

    def _early_exit(
        self, ranked: list[Node], app_work: float, demand: float | None
    ) -> HeuristicPlan | None:
        params = self.params
        root, first = ranked[0], ranked[1]
        vir_max_sch_pow = calc_sch_pow(params, root.power, 1)
        vir_max_ser_pow = calc_hier_ser_pow(params, [first.power], app_work)
        min_ser_cv = (
            vir_max_ser_pow if demand is None else min(vir_max_ser_pow, demand)
        )
        if vir_max_sch_pow >= min_ser_cv:
            return None
        hierarchy = Hierarchy()
        hierarchy.set_root(root.name, root.power)
        hierarchy.add_server(first.name, first.power, root.name)
        report = self._evaluator.evaluate(hierarchy, app_work, validate=False)
        step = PlanStep(
            "stop", None, None, report.throughput,
            "scheduling-bound at degree 1: 1 agent + 1 server",
        )
        return HeuristicPlan(
            hierarchy=hierarchy,
            report=report,
            strategy=self.strategy,
            steps=(step,),
            demand=demand,
        )

    # ------------------------------------------------------------------ #
    # fixed-point strategy

    def _agent_windows(self, n: int, n_agents: int) -> list[int]:
        """Starting offsets of the agent window within the sorted nodes.

        The paper's policy is offset 0 (the fastest nodes become agents).
        The ``windowed`` extension also tries pushing the agent tier down
        the ranking, freeing the fastest nodes to serve.
        """
        if self.agent_selection == "fastest":
            return [0]
        last = n - n_agents
        raw = {0, last, last // 4, last // 2, (3 * last) // 4, 1, 2}
        return sorted(o for o in raw if 0 <= o <= last)

    def _plan_fixed_point(
        self, ranked: list[Node], app_work: float, demand: float | None
    ) -> HeuristicPlan:
        n = len(ranked)
        # Per-node model constants, computed once and sliced per probe.
        arrays = NodeArrays.for_nodes(self.params, ranked)
        # Entries: (rho, used, n_agents, offset, target)
        best: tuple[float, int, int, int, float] | None = None
        cheapest: tuple[float, int, int, int, float] | None = None
        max_agents = max(1, n // 2)
        for n_agents in range(1, max_agents + 1):
            for offset in self._agent_windows(n, n_agents):
                solved = self._solve_for_agents(
                    arrays, offset, n_agents, app_work, demand
                )
                if solved is None:
                    continue
                rho, n_servers, target = solved
                used = n_agents + n_servers
                entry = (rho, used, n_agents, offset, target)
                if best is None or (rho, -used) > (best[0], -best[1]):
                    best = entry
                if demand is not None and rho >= demand - _REL_TOL:
                    if cheapest is None or used < cheapest[1]:
                        cheapest = entry
        if best is None:
            raise PlanningError("no feasible agent/server split found")
        rho, used, n_agents, offset, target = (
            cheapest if cheapest is not None else best
        )
        agents = ranked[offset : offset + n_agents]
        candidates = ranked[:offset] + ranked[offset + n_agents :]
        hierarchy = self._materialize(
            agents, candidates[: used - n_agents], target
        )
        self._repair(hierarchy)
        hierarchy.validate(strict=True)
        report = self._evaluator.evaluate(hierarchy, app_work, validate=False)
        return HeuristicPlan(
            hierarchy=hierarchy,
            report=report,
            strategy="fixed_point",
            steps=(),
            demand=demand,
        )

    def _solve_for_agents(
        self,
        arrays: NodeArrays,
        offset: int,
        n_agents: int,
        app_work: float,
        demand: float | None,
    ) -> tuple[float, int, float] | None:
        """Best (rho, n_servers, target_rate) for a fixed agent tier.

        The agent tier is ``ranked[offset : offset + n_agents]``; every
        other ranked node is a server candidate.  Binary-searches the
        scheduling target ``t``: lowering ``t`` lets every agent support
        more children, admitting more servers and raising service power.
        The optimum is where service power crosses ``t`` (or a boundary:
        all nodes used / minimum feasible servers).  All per-node rates
        come from the precomputed ``arrays``, so one probe is a few
        vector ops per bisection step.
        """
        params = self.params
        n = arrays.n
        if n - n_agents < 1:
            return None
        # Validity floor on server count: total child slots A-1+k must give
        # the root >=1 and every non-root agent >=2 children.
        k_min = 1 if n_agents == 1 else n_agents
        k_cap = n - n_agents
        if k_cap < k_min:
            return None

        a_lo, a_hi = offset, offset + n_agents

        # Feasibility ceiling on t: every non-root agent must support >= 2
        # children, the root >= 1.
        t_hi = float(arrays.sched_deg1[a_lo])
        if n_agents > 1:
            t_hi = min(t_hi, arrays.min_sched_deg2(a_lo + 1, a_hi))
        if demand is not None:
            # No point scheduling faster than the demand.
            t_hi = min(t_hi, demand)

        if offset == 0:
            cand_sel: slice | list[int] = slice(n_agents, n)
        else:
            cand_sel = list(range(offset)) + list(range(a_hi, n))
        cand_powers, _, _, cand_server_rate = arrays.select(cand_sel)
        prefix_power = arrays.prefix_powers(cand_powers)

        comm = params.service_comm
        wpre = params.wpre

        def server_slots(t: float) -> int:
            slots = arrays.slot_total(a_lo, a_hi, t, n)
            return max(0, min(slots - (n_agents - 1), k_cap))

        def service_of(k: int) -> float:
            # Servers are the k fastest candidates; Eq. 15 with scalar Wapp.
            pred = k * wpre / app_work
            rate = prefix_power[k] / app_work
            return 1.0 / (comm + (1.0 + pred) / rate)

        def floor_of(k: int) -> float:
            return float(cand_server_rate[k - 1])

        def achievable(t: float) -> float | None:
            """rho when targeting scheduling rate t, or None if infeasible."""
            k = server_slots(t)
            if k < k_min:
                return None
            return min(t, service_of(k), floor_of(k))

        hi_value = achievable(t_hi)
        if hi_value is not None and hi_value >= t_hi - _REL_TOL:
            # Service already exceeds the fastest feasible scheduling rate:
            # shrink the server set to the cheapest one sustaining t_hi.
            k = server_slots(t_hi)
            k_best = self._min_servers(
                k_min, k, t_hi if demand is None else min(t_hi, demand),
                service_of, floor_of,
            )
            rho = min(t_hi, service_of(k_best), floor_of(k_best))
            return float(rho), k_best, t_hi

        # Otherwise binary-search the crossing service(k(t)) == t.
        t_lo = t_hi
        value = None
        for _ in range(200):
            t_lo /= 2.0
            value = achievable(t_lo)
            if value is not None and value >= t_lo - _REL_TOL:
                break
            if t_lo < 1e-12:
                return None
        assert value is not None
        lo, hi = t_lo, t_hi
        for _ in range(64):
            mid = 0.5 * (lo + hi)
            v = achievable(mid)
            if v is not None and v >= mid - _REL_TOL:
                lo = mid
            else:
                hi = mid
        k = server_slots(lo)
        rho = min(lo, service_of(k), floor_of(k))
        if demand is not None and rho > demand:
            k = self._min_servers(k_min, k, demand, service_of, floor_of)
            rho = min(lo, service_of(k), floor_of(k))
        return float(rho), k, lo

    @staticmethod
    def _min_servers(k_min, k_max, target, service_of, floor_of) -> int:
        """Smallest k in [k_min, k_max] with service(k) >= target, else k_max.

        The least-resources rule: once the target rate is met, extra
        servers are waste.  ``floor_of`` only improves as k shrinks (the
        slowest chosen server gets faster), so it needs no re-check.
        """
        lo, hi = k_min, k_max
        if service_of(hi) < target:
            return hi
        while lo < hi:
            mid = (lo + hi) // 2
            if service_of(mid) >= target:
                hi = mid
            else:
                lo = mid + 1
        return lo

    def _materialize(
        self,
        agents: list[Node],
        servers: list[Node],
        target: float,
    ) -> Hierarchy:
        """Build the tree: capacity-fill agents at the target rate.

        Agents attach breadth-first in power order (placement does not
        change model throughput); every non-root agent is guaranteed two
        children before leftover servers are dealt round-robin, mirroring
        Algorithm 1's inner while loop that fills each converted agent up
        to its supported child count.
        """
        params = self.params
        total = len(agents) + len(servers)
        capacity = {
            a.name: max(
                1 if i == 0 else 2,
                min(
                    supported_children(params, a.power, target),
                    total,
                ),
            )
            for i, a in enumerate(agents)
        }
        hierarchy = Hierarchy()
        hierarchy.set_root(agents[0].name, agents[0].power)
        free = {agents[0].name: capacity[agents[0].name]}
        # Attach agents under the earliest placed agent with a free slot.
        placed = [agents[0]]
        for agent in agents[1:]:
            parent = next(a for a in placed if free[a.name] > 0)
            hierarchy.add_agent(agent.name, agent.power, parent.name)
            free[parent.name] -= 1
            free[agent.name] = capacity[agent.name]
            placed.append(agent)
        # Guarantee two children per non-root agent first (validity), then
        # deal the rest round-robin across agents with spare capacity.
        pending = list(servers)
        for agent in placed[1:]:
            while hierarchy.degree(agent.name) < 2 and pending:
                node = pending.pop(0)
                hierarchy.add_server(node.name, node.power, agent.name)
                free[agent.name] -= 1
        cursor = 0
        while pending:
            order = [a for a in placed if free[a.name] > 0]
            if not order:
                # Capacity exhausted (can only happen through the >=2
                # guarantee overdrawing a slot); attach to the root.
                order = [placed[0]]
            target_agent = order[cursor % len(order)]
            node = pending.pop(0)
            hierarchy.add_server(node.name, node.power, target_agent.name)
            free[target_agent.name] -= 1
            cursor += 1
        return hierarchy

    # ------------------------------------------------------------------ #
    # incremental strategy (ablation)

    def _plan_incremental(
        self, ranked: list[Node], app_work: float, demand: float | None
    ) -> HeuristicPlan:
        hierarchy = Hierarchy()
        root, first = ranked[0], ranked[1]
        hierarchy.set_root(root.name, root.power)
        hierarchy.add_server(first.name, first.power, root.name)
        rho = self._rho(hierarchy, app_work)
        steps = [
            PlanStep("root", root.name, None, rho, "seed root agent"),
            PlanStep("server", first.name, root.name, rho, "seed server"),
        ]
        best = (rho, len(hierarchy), hierarchy.copy())
        if demand is not None and rho >= demand:
            steps.append(PlanStep("stop", None, None, rho, "demand met by seed"))
            return self._finalize(hierarchy, app_work, steps, demand)

        stale = 0
        for node in ranked[2:]:
            move = self._best_move(hierarchy, node, app_work)
            if move is None:
                break
            action, parent, new_rho = move
            if action == "server":
                hierarchy.add_server(node.name, node.power, parent)
            else:
                hierarchy.promote(parent)
                hierarchy.add_server(node.name, node.power, parent)
            steps.append(PlanStep(action, node.name, parent, new_rho))
            rho = new_rho
            if rho > best[0] * (1.0 + _REL_TOL):
                best = (rho, len(hierarchy), hierarchy.copy())
                stale = 0
            else:
                stale += 1
            if demand is not None and rho >= demand:
                best = (rho, len(hierarchy), hierarchy.copy())
                steps.append(PlanStep("stop", None, None, rho, "demand met"))
                break
            if stale >= self.patience:
                steps.append(
                    PlanStep(
                        "stop", None, None, rho,
                        f"no improvement for {stale} steps; rolling back",
                    )
                )
                break
        return self._finalize(best[2], app_work, steps, demand)

    def _rho(self, hierarchy: Hierarchy, app_work: float) -> float:
        return self._evaluator.evaluate(hierarchy, app_work).throughput

    def _best_move(
        self, hierarchy: Hierarchy, node: Node, app_work: float
    ) -> tuple[str, NodeId, float] | None:
        """Evaluate attaching ``node`` as a server vs. promoting under it."""
        params = self.params
        candidates: list[tuple[float, int, str, NodeId]] = []

        # Move (a): attach under the agent with the most scheduling
        # headroom — it keeps the hierarchy's min agent rate maximal among
        # all attach choices.
        agents = hierarchy.agents
        target = max(
            agents,
            key=lambda a: (
                self._evaluator.agent_rate(
                    hierarchy.power(a), hierarchy.degree(a) + 1
                ),
                str(a),
            ),
        )
        trial = hierarchy.copy()
        trial.add_server(node.name, node.power, target)
        candidates.append((self._rho(trial, app_work), 0, "server", target))

        # Move (b): promote the strongest server able to support >= 2
        # children at the current service level (shift_nodes), attaching
        # the new node beneath it.
        if self.allow_promotion and hierarchy.servers:
            service_now = self._evaluator.service_rate(
                [hierarchy.power(s) for s in hierarchy.servers],
                [app_work] * len(hierarchy.servers),
            )
            promotable = [
                s
                for s in hierarchy.servers
                if supported_children(params, hierarchy.power(s), service_now)
                >= 2
            ]
            if promotable:
                strongest = max(
                    promotable, key=lambda s: (hierarchy.power(s), str(s))
                )
                trial = hierarchy.copy()
                trial.promote(strongest)
                trial.add_server(node.name, node.power, strongest)
                candidates.append(
                    (self._rho(trial, app_work), 1, "promote", strongest)
                )

        if not candidates:
            return None
        rho, _, action, parent = max(candidates, key=lambda c: (c[0], -c[1]))
        return action, parent, rho

    def _finalize(
        self,
        hierarchy: Hierarchy,
        app_work: float,
        steps: list[PlanStep],
        demand: float | None,
    ) -> HeuristicPlan:
        """Repair single-child agents, validate, and package the result."""
        self._repair(hierarchy)
        hierarchy.validate(strict=True)
        report = self._evaluator.evaluate(hierarchy, app_work, validate=False)
        return HeuristicPlan(
            hierarchy=hierarchy,
            report=report,
            strategy="incremental",
            steps=tuple(steps),
            demand=demand,
        )

    @staticmethod
    def _repair(hierarchy: Hierarchy) -> None:
        """Demote non-root agents left with fewer than two children.

        Lone children are lifted to the grandparent and the agent rejoins
        the server pool — never decreasing throughput (one fewer
        constrained agent, one more server).
        """
        changed = True
        while changed:
            changed = False
            for agent in hierarchy.agents:
                if agent == hierarchy.root:
                    continue
                kids = hierarchy.children(agent)
                if len(kids) < 2:
                    parent = hierarchy.parent(agent)
                    assert parent is not None
                    for kid in kids:
                        hierarchy.reattach(kid, parent)
                    hierarchy.demote(agent)
                    changed = True
                    break
