"""Deployment hierarchy data structure.

A deployment (Section 1 of the paper) is a tree of middleware elements
mapped one-to-one onto compute nodes:

* exactly one **root agent** with one or more children;
* **non-root agents**, each with exactly one parent and — in a *final*
  deployment — at least two children;
* **servers** (SeDs), always leaves, each with an agent parent;
* agent and server roles are never co-hosted on one node.

:class:`Hierarchy` stores the tree as parent/children maps keyed by opaque
node identifiers, together with each node's computing power (MFlop/s),
which is all the throughput model needs.  Mutating operations keep the
structure a tree at all times; the stricter "non-root agents have >= 2
children" rule only applies to finished deployments and is checked by
:meth:`Hierarchy.validate`.

The adjacency-matrix export reproduces the paper's ``plot_hierarchy``
procedure and feeds the XML writer used by the (simulated) GoDIET launcher.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterator, Mapping
from enum import Enum

import numpy as np

from repro.errors import HierarchyError

__all__ = ["Role", "Hierarchy"]

NodeId = Hashable


class Role(str, Enum):
    """Middleware role hosted by a node."""

    AGENT = "agent"
    SERVER = "server"


class Hierarchy:
    """A mutable middleware deployment tree.

    Nodes are added with :meth:`set_root` / :meth:`add_server` /
    :meth:`add_agent`, and servers can be promoted in place with
    :meth:`promote` (the paper's ``shift_nodes`` step, which converts a
    server into an agent when the heuristic grows a new level).
    """

    def __init__(self) -> None:
        self._power: dict[NodeId, float] = {}
        self._role: dict[NodeId, Role] = {}
        self._parent: dict[NodeId, NodeId | None] = {}
        self._children: dict[NodeId, list[NodeId]] = {}
        self._root: NodeId | None = None

    # ------------------------------------------------------------------ #
    # construction

    def _check_new(self, node: NodeId, power: float) -> None:
        if node in self._power:
            raise HierarchyError(f"node {node!r} is already in the hierarchy")
        if power <= 0.0:
            raise HierarchyError(f"node {node!r} power must be > 0, got {power}")

    @classmethod
    def from_arrays(
        cls,
        names: list[NodeId],
        powers: list[float],
        parent_indices: list[int],
        roles: list[Role],
    ) -> "Hierarchy":
        """Bulk-construct a tree from parallel arrays (trusted input).

        ``parent_indices[i]`` is the index of node ``i``'s parent; entry 0
        is the root (its parent index is ignored).  Children are attached
        in index order, so the result is identical to the equivalent
        sequence of :meth:`set_root` / :meth:`add_agent` /
        :meth:`add_server` calls — but without per-node structural
        revalidation, which matters to planners that build thousands of
        candidate trees.  Callers must supply a sound tree: parents appear
        before children and carry :attr:`Role.AGENT`.
        """
        if not names:
            raise HierarchyError("from_arrays needs at least one node")
        if min(powers) <= 0.0:
            bad = next(
                (name, p) for name, p in zip(names, powers) if p <= 0.0
            )
            raise HierarchyError(
                f"node {bad[0]!r} power must be > 0, got {bad[1]}"
            )
        hierarchy = cls()
        power_map = hierarchy._power
        parent_map = hierarchy._parent
        children_map = hierarchy._children
        power_map.update(zip(names, map(float, powers)))
        if len(power_map) != len(names):
            raise HierarchyError("duplicate node names in from_arrays")
        hierarchy._role.update(zip(names, roles))
        for name in names:
            children_map[name] = []
        hierarchy._root = names[0]
        parent_map[names[0]] = None
        for i in range(1, len(names)):
            parent_name = names[parent_indices[i]]
            parent_map[names[i]] = parent_name
            children_map[parent_name].append(names[i])
        return hierarchy

    def set_root(self, node: NodeId, power: float) -> None:
        """Install ``node`` as the root agent of an empty hierarchy."""
        if self._root is not None:
            raise HierarchyError(f"hierarchy already has root {self._root!r}")
        self._check_new(node, power)
        self._power[node] = float(power)
        self._role[node] = Role.AGENT
        self._parent[node] = None
        self._children[node] = []
        self._root = node

    def _attach(self, node: NodeId, power: float, parent: NodeId, role: Role) -> None:
        self._check_new(node, power)
        if parent not in self._power:
            raise HierarchyError(f"parent {parent!r} is not in the hierarchy")
        if self._role[parent] is not Role.AGENT:
            raise HierarchyError(
                f"parent {parent!r} is a server; only agents may have children"
            )
        self._power[node] = float(power)
        self._role[node] = role
        self._parent[node] = parent
        self._children[node] = []
        self._children[parent].append(node)

    def add_server(self, node: NodeId, power: float, parent: NodeId) -> None:
        """Attach ``node`` as a server (leaf) child of agent ``parent``."""
        self._attach(node, power, parent, Role.SERVER)

    def add_agent(self, node: NodeId, power: float, parent: NodeId) -> None:
        """Attach ``node`` as a (for now childless) agent child of ``parent``."""
        self._attach(node, power, parent, Role.AGENT)

    def promote(self, node: NodeId) -> None:
        """Convert server ``node`` into an agent in place (``shift_nodes``)."""
        if node not in self._role:
            raise HierarchyError(f"node {node!r} is not in the hierarchy")
        if self._role[node] is not Role.SERVER:
            raise HierarchyError(f"node {node!r} is not a server")
        self._role[node] = Role.AGENT

    def demote(self, node: NodeId) -> None:
        """Convert a childless non-root agent back into a server."""
        if node not in self._role:
            raise HierarchyError(f"node {node!r} is not in the hierarchy")
        if self._role[node] is not Role.AGENT:
            raise HierarchyError(f"node {node!r} is not an agent")
        if node == self._root:
            raise HierarchyError("cannot demote the root agent")
        if self._children[node]:
            raise HierarchyError(f"agent {node!r} still has children")
        self._role[node] = Role.SERVER

    def reattach(self, node: NodeId, new_parent: NodeId) -> None:
        """Move ``node`` (and its subtree) under ``new_parent``.

        ``new_parent`` must be an agent outside the subtree of ``node``.
        """
        if node not in self._role:
            raise HierarchyError(f"node {node!r} is not in the hierarchy")
        if new_parent not in self._role:
            raise HierarchyError(f"new parent {new_parent!r} is not in the hierarchy")
        if node == self._root:
            raise HierarchyError("cannot reattach the root")
        if self._role[new_parent] is not Role.AGENT:
            raise HierarchyError(f"new parent {new_parent!r} is not an agent")
        if new_parent in self.subtree(node):
            raise HierarchyError(
                f"cannot reattach {node!r} under its own descendant {new_parent!r}"
            )
        old_parent = self._parent[node]
        if old_parent == new_parent:
            return
        assert old_parent is not None
        self._children[old_parent].remove(node)
        self._children[new_parent].append(node)
        self._parent[node] = new_parent

    def remove_leaf(self, node: NodeId) -> None:
        """Remove a leaf node (server or childless agent) from the tree."""
        if node not in self._role:
            raise HierarchyError(f"node {node!r} is not in the hierarchy")
        if self._children[node]:
            raise HierarchyError(f"node {node!r} has children; remove them first")
        parent = self._parent[node]
        if parent is None:
            self._root = None
        else:
            self._children[parent].remove(node)
        del self._power[node]
        del self._role[node]
        del self._parent[node]
        del self._children[node]

    # ------------------------------------------------------------------ #
    # inspection

    @property
    def root(self) -> NodeId:
        """The root agent.  Raises if the hierarchy is empty."""
        if self._root is None:
            raise HierarchyError("hierarchy is empty")
        return self._root

    @property
    def is_empty(self) -> bool:
        return self._root is None

    def __len__(self) -> int:
        return len(self._power)

    def __contains__(self, node: NodeId) -> bool:
        return node in self._power

    def __iter__(self) -> Iterator[NodeId]:
        """Iterate over nodes in breadth-first order from the root."""
        if self._root is None:
            return
        queue: list[NodeId] = [self._root]
        index = 0
        while index < len(queue):
            node = queue[index]
            index += 1
            yield node
            queue.extend(self._children[node])

    @property
    def nodes(self) -> list[NodeId]:
        """All node ids in breadth-first order."""
        return list(self)

    @property
    def agents(self) -> list[NodeId]:
        """All agent ids in breadth-first order."""
        return [n for n in self if self._role[n] is Role.AGENT]

    @property
    def servers(self) -> list[NodeId]:
        """All server ids in breadth-first order."""
        return [n for n in self if self._role[n] is Role.SERVER]

    @property
    def agent_count(self) -> int:
        """Number of agents (no traversal)."""
        return sum(1 for role in self._role.values() if role is Role.AGENT)

    @property
    def server_count(self) -> int:
        """Number of servers (no traversal)."""
        return len(self._role) - self.agent_count

    @property
    def powers(self) -> Mapping[NodeId, float]:
        """Read-only view of node powers (MFlop/s)."""
        return dict(self._power)

    def power(self, node: NodeId) -> float:
        return self._power[node]

    def role(self, node: NodeId) -> Role:
        return self._role[node]

    def parent(self, node: NodeId) -> NodeId | None:
        return self._parent[node]

    def children(self, node: NodeId) -> tuple[NodeId, ...]:
        return tuple(self._children[node])

    def degree(self, node: NodeId) -> int:
        """Number of children of ``node`` (the model's ``d``)."""
        return len(self._children[node])

    def depth(self, node: NodeId) -> int:
        """Distance from the root (root has depth 0)."""
        depth = 0
        current: NodeId | None = node
        while True:
            current = self._parent[current]
            if current is None:
                return depth
            depth += 1

    @property
    def height(self) -> int:
        """Maximum node depth (a star has height 1)."""
        if self._root is None:
            return 0
        return max(self.depth(n) for n in self)

    def subtree(self, node: NodeId) -> list[NodeId]:
        """Nodes of the subtree rooted at ``node`` in BFS order."""
        queue = [node]
        index = 0
        while index < len(queue):
            queue.extend(self._children[queue[index]])
            index += 1
        return queue

    # ------------------------------------------------------------------ #
    # validation / export

    def validate(self, strict: bool = True) -> None:
        """Check the paper's structural constraints.

        With ``strict=True`` (a finished deployment) the check also enforces
        that the root has >= 1 child, every non-root agent has >= 2 children
        and at least one server exists.  With ``strict=False`` only tree
        consistency and role/leaf rules are verified, allowing the planner's
        intermediate states.
        """
        if self._root is None:
            raise HierarchyError("hierarchy is empty")
        seen = list(self)
        if len(seen) != len(self._power):
            raise HierarchyError("hierarchy contains unreachable nodes")
        for node in seen:
            role = self._role[node]
            if role is Role.SERVER and self._children[node]:
                raise HierarchyError(f"server {node!r} has children")
            parent = self._parent[node]
            if parent is not None and self._role[parent] is not Role.AGENT:
                raise HierarchyError(f"node {node!r} has a server parent")
        if not strict:
            return
        if not self._children[self._root]:
            raise HierarchyError("root agent has no children")
        if not self.servers:
            raise HierarchyError("deployment has no servers")
        for node in self.agents:
            if node != self._root and len(self._children[node]) < 2:
                raise HierarchyError(
                    f"non-root agent {node!r} has "
                    f"{len(self._children[node])} child(ren); needs >= 2"
                )

    def adjacency_matrix(self) -> tuple[np.ndarray, list[NodeId]]:
        """The paper's ``plot_hierarchy`` output.

        Returns
        -------
        (matrix, order):
            ``matrix[i, j] == 1`` iff ``order[i]`` is the parent of
            ``order[j]``; ``order`` lists nodes in BFS order.
        """
        order = self.nodes
        index = {node: i for i, node in enumerate(order)}
        matrix = np.zeros((len(order), len(order)), dtype=np.int8)
        for node in order:
            for child in self._children[node]:
                matrix[index[node], index[child]] = 1
        return matrix, order

    def to_networkx(self):
        """Export as a :class:`networkx.DiGraph` with role/power attributes."""
        import networkx as nx

        graph = nx.DiGraph()
        for node in self:
            graph.add_node(node, role=self._role[node].value, power=self._power[node])
        for node in self:
            for child in self._children[node]:
                graph.add_edge(node, child)
        return graph

    def to_dot(self, title: str = "deployment") -> str:
        """Export as a Graphviz DOT digraph.

        Agents render as boxes, servers as ellipses; labels carry the
        node name and its rated power.  Handy for eyeballing plans::

            Path("plan.dot").write_text(hierarchy.to_dot())
            # dot -Tpng plan.dot -o plan.png
        """
        lines = [f'digraph "{title}" {{', "  rankdir=TB;"]
        for node in self:
            shape = "box" if self._role[node] is Role.AGENT else "ellipse"
            lines.append(
                f'  "{node}" [shape={shape}, '
                f'label="{node}\\n{self._power[node]:g} MFlop/s"];'
            )
        for node in self:
            for child in self._children[node]:
                lines.append(f'  "{node}" -> "{child}";')
        lines.append("}")
        return "\n".join(lines)

    def copy(self) -> "Hierarchy":
        """Deep copy of the tree (node ids are shared, structure is not)."""
        clone = Hierarchy()
        clone._power = dict(self._power)
        clone._role = dict(self._role)
        clone._parent = dict(self._parent)
        clone._children = {n: list(c) for n, c in self._children.items()}
        clone._root = self._root
        return clone

    # ------------------------------------------------------------------ #
    # misc

    def describe(self) -> str:
        """Multi-line human-readable sketch of the tree."""
        if self._root is None:
            return "<empty hierarchy>"
        lines: list[str] = []

        def walk(node: NodeId, indent: int) -> None:
            role = self._role[node].value
            lines.append(
                f"{'  ' * indent}{role} {node!r} "
                f"(w={self._power[node]:g}, d={len(self._children[node])})"
            )
            for child in self._children[node]:
                walk(child, indent + 1)

        walk(self._root, 0)
        return "\n".join(lines)

    def shape_signature(self) -> tuple[int, int, int, int]:
        """Compact shape: (n_nodes, n_agents, n_servers, height)."""
        return (len(self), len(self.agents), len(self.servers), self.height)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        n, a, s, h = (
            self.shape_signature() if self._root is not None else (0, 0, 0, 0)
        )
        return f"Hierarchy(nodes={n}, agents={a}, servers={s}, height={h})"
