"""Optimal planner for homogeneous pools (reference [10] of the paper).

Chouhan, Dail, Caron and Vivien ("Automatic middleware deployment planning
on clusters", IJHPCA 2006) prove that on a *homogeneous* cluster a
**complete spanning d-ary tree** maximizes steady-state throughput, so the
planning problem reduces to a one-dimensional search over the degree ``d``.

:class:`HomogeneousPlanner` performs that search with this paper's
throughput model (Eq. 16), additionally searching over the number of nodes
actually used — the proof's "spanning" assumption only holds once using a
node helps; for tiny request grains the optimum is one agent and one server
(the paper's Table 4 reports optimal degree 1 for DGEMM 10x10 precisely
because of this).

The planner is exact for homogeneous pools and serves as the reference
("Opt. Deg." / "Homo. Deg." columns of Table 4) against which the
heterogeneous heuristic is scored.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.baselines import dary_deployment
from repro.core.hierarchy import Hierarchy
from repro.core.kernels import HierarchyEvaluator
from repro.core.params import ModelParams
from repro.core.throughput import ThroughputReport
from repro.errors import PlanningError
from repro.platforms.pool import NodePool

__all__ = ["HomogeneousPlanner", "HomogeneousPlan"]

_REL_TOL = 1e-12


@dataclass(frozen=True)
class HomogeneousPlan:
    """Result of a homogeneous-optimal planning run.

    Attributes
    ----------
    hierarchy:
        The selected complete d-ary deployment.
    report:
        Model throughput breakdown for the selected deployment.
    degree:
        The d-ary degree of the selected tree (root degree for the
        degenerate 1-agent/1-server case, i.e. 1).
    nodes_used:
        Number of pool nodes in the deployment.
    """

    hierarchy: Hierarchy
    report: ThroughputReport
    degree: int
    nodes_used: int

    @property
    def throughput(self) -> float:
        return self.report.throughput


class HomogeneousPlanner:
    """Exhaustive degree search over complete spanning d-ary trees.

    Parameters
    ----------
    params:
        Calibrated model parameters.
    spanning_only:
        If True, always use the whole pool (the strict [10] setting).  If
        False (default), also search over using only the top ``k`` nodes,
        which dominates for small request grains.
    """

    def __init__(self, params: ModelParams, spanning_only: bool = False):
        self.params = params
        self.spanning_only = spanning_only
        # The degree sweep re-prices the same (power, degree) pairs across
        # candidate trees; the memoized evaluator computes each rate once.
        self._evaluator = HierarchyEvaluator(params)

    def plan(
        self,
        pool: NodePool,
        app_work: float,
        demand: float | None = None,
    ) -> HomogeneousPlan:
        """Select the best complete d-ary deployment for ``pool``.

        Parameters
        ----------
        app_work:
            Application work ``Wapp`` in MFlop (one value — the pool is
            homogeneous and so is the workload).
        demand:
            Optional client demand in requests/s.  When given, the cheapest
            deployment meeting the demand is preferred over a faster one
            (the paper's least-resources tie-break generalized to demand
            satisfaction).

        Raises
        ------
        PlanningError
            If the pool has fewer than two nodes.
        """
        if len(pool) < 2:
            raise PlanningError(
                f"planning needs >= 2 nodes, pool has {len(pool)}"
            )
        scored = self._scored_candidates(pool, app_work)
        chosen = None
        if demand is not None:
            satisfying = [c for c in scored if c[0] >= demand]
            if satisfying:
                chosen = min(satisfying, key=lambda c: (c[1], c[2]))
        if chosen is None:
            chosen = max(scored, key=lambda c: (c[0], -c[1], -c[2]))
        _, nodes_used, degree, hierarchy = chosen
        # Only the winner needs the full Eq. 16 breakdown.
        report = self._evaluator.evaluate(hierarchy, app_work, validate=False)
        return HomogeneousPlan(
            hierarchy=hierarchy,
            report=report,
            degree=degree,
            nodes_used=nodes_used,
        )

    def best_degree(self, pool: NodePool, app_work: float) -> int:
        """The selected degree only (the "Homo. Deg." column of Table 4)."""
        return self.plan(pool, app_work).degree

    # ------------------------------------------------------------------ #

    def _scored_candidates(
        self, pool: NodePool, app_work: float
    ) -> list[tuple[float, int, int, Hierarchy]]:
        """(rho, nodes_used, realized degree, hierarchy) per candidate tree.

        The sweep scores every (size, degree) shape with the memoized
        evaluator's throughput-only walk; the winner is re-evaluated in
        full by :meth:`plan`.
        """
        sizes = (
            [len(pool)]
            if self.spanning_only
            else list(range(2, len(pool) + 1))
        )
        scored: list[tuple[float, int, int, Hierarchy]] = []
        seen_shapes: set[tuple[int, int]] = set()
        for size in sizes:
            sub = pool.take(size)
            # Degree 1 degenerates to the 2-node pair (see dary_deployment),
            # which is not spanning; exclude it in spanning-only mode.
            min_degree = 2 if (self.spanning_only and size > 2) else 1
            for degree in range(min_degree, size):
                if (size, degree) in seen_shapes:
                    continue
                seen_shapes.add((size, degree))
                hierarchy = dary_deployment(sub, degree)
                rho = self._evaluator.throughput(
                    hierarchy, app_work, validate=False
                )
                # Repair can collapse near-star trees (e.g. d = n-2) into an
                # actual star; report the realized root degree in that case
                # so "degree" always describes the built hierarchy.
                realized = (
                    hierarchy.degree(hierarchy.root)
                    if hierarchy.agent_count == 1
                    else degree
                )
                scored.append((rho, len(hierarchy), realized, hierarchy))
        return scored
