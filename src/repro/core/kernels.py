"""Batched throughput kernels and memoized hierarchy evaluation.

This is the performance layer under every planner.  The scalar model
functions in :mod:`repro.core.throughput` stay the readable single-node
reference (Eqs. 11–16); this module evaluates the same closed forms over
whole node pools in one call and memoizes the per-node quantities the
planners probe over and over:

* :func:`agent_sched_throughput_many` / :func:`server_sched_throughput_many`
  / :func:`supported_children_many` — array-oriented versions of the Eq. 14
  building blocks, NumPy-backed when available with a pure-Python fallback
  that produces bit-identical results (both paths execute the same IEEE-754
  operation sequence as the scalar functions);
* :func:`service_throughput_prefixes` — Eq. 15 for every prefix of a server
  ranking in one pass (the heuristic's ``service_of`` sweep);
* :class:`NodeArrays` — per-node model constants for a ranked node list,
  precomputed once per (nodes, params) pair and sliced by the fixed-point
  solver instead of re-deriving them per probe;
* :class:`HierarchyEvaluator` — a memoizing replacement for repeated
  :func:`~repro.core.throughput.hierarchy_throughput` calls: per-node rates
  are cached by ``(power, degree)``, service rates by server-power tuple, so
  evaluating a candidate hierarchy recomputes only what changed.

Every cached or vectorized quantity is defined by the *same* floating-point
expression as its scalar counterpart, so planners wired through this layer
return bit-identical deployments.
"""

from __future__ import annotations

import math
from collections.abc import Sequence
from typing import TYPE_CHECKING

from repro.core.hierarchy import Hierarchy, NodeId, Role
from repro.core.params import ModelParams
from repro.core.throughput import (
    ThroughputReport,
    resolve_app_work_list,
    service_throughput,
)
from repro.errors import ParameterError, PlanningError

if TYPE_CHECKING:  # pragma: no cover
    from repro.platforms.node import Node

try:  # NumPy is an install-time dependency, but the kernels degrade cleanly.
    import numpy as _np
except Exception:  # pragma: no cover - exercised via the _USE_NUMPY switch
    _np = None

__all__ = [
    "HAVE_NUMPY",
    "agent_sched_throughput_many",
    "server_sched_throughput_many",
    "supported_children_many",
    "service_throughput_prefixes",
    "NodeArrays",
    "HierarchyEvaluator",
]

HAVE_NUMPY = _np is not None

#: Module switch for the backend; tests flip this to prove the NumPy and
#: pure-Python paths agree bit-for-bit.
_USE_NUMPY = HAVE_NUMPY

_REL_TOL = 1e-9  # must match repro.core.heuristic._REL_TOL


def _numpy_active() -> bool:
    return _USE_NUMPY and _np is not None


def _check_powers(powers: Sequence[float]) -> None:
    for power in powers:
        if power <= 0.0:
            raise ParameterError(f"power must be > 0, got {power}")


# ---------------------------------------------------------------------- #
# batched Eq. 11-14 building blocks


def _agent_rate_constants(params: ModelParams, degree: int) -> tuple[float, float]:
    """(numerator MFlop, communication seconds) of the agent rate at ``degree``.

    Mirrors ``agent_comp_time`` + ``agent_comm_time`` exactly: the work term
    is ``Wreq + (Wfix + Wsel*d)`` and the communication term is Eq. 1 + Eq. 2
    evaluated with the agent-level sizes.
    """
    if degree < 1:
        raise ParameterError(f"an agent needs >= 1 child, got degree={degree}")
    work = params.wreq + params.wrep(degree)
    sizes = params.agent_sizes
    comm = (sizes.sreq + degree * sizes.srep) / params.bandwidth + (
        degree * sizes.sreq + sizes.srep
    ) / params.bandwidth
    return work, comm


def agent_sched_throughput_many(
    params: ModelParams,
    powers: Sequence[float],
    degrees: int | Sequence[int],
) -> list[float]:
    """Eq. 14 agent operand for a whole pool: one rate per (power, degree).

    ``degrees`` may be a single degree shared by every node or one degree
    per node.  Matches :func:`repro.core.throughput.agent_sched_throughput`
    bit-for-bit.
    """
    _check_powers(powers)
    if isinstance(degrees, int):
        work, comm = _agent_rate_constants(params, degrees)
        if _numpy_active():
            p = _np.asarray(powers, dtype=_np.float64)
            return (1.0 / (work / p + comm)).tolist()
        return [1.0 / (work / power + comm) for power in powers]
    if len(degrees) != len(powers):
        raise ParameterError(
            f"got {len(powers)} powers but {len(degrees)} degrees"
        )
    constants = {}
    for degree in degrees:
        if degree not in constants:
            constants[degree] = _agent_rate_constants(params, degree)
    return [
        1.0 / (constants[degree][0] / power + constants[degree][1])
        for power, degree in zip(powers, degrees)
    ]


def server_sched_throughput_many(
    params: ModelParams, powers: Sequence[float]
) -> list[float]:
    """Eq. 14 server operand for a whole pool.

    Matches :func:`repro.core.throughput.server_sched_throughput`
    bit-for-bit.
    """
    _check_powers(powers)
    comm = params.server_comm
    if _numpy_active():
        p = _np.asarray(powers, dtype=_np.float64)
        return (1.0 / (params.wpre / p + comm)).tolist()
    return [1.0 / (params.wpre / power + comm) for power in powers]


def supported_children_many(
    params: ModelParams,
    powers: Sequence[float],
    target_rate: float,
) -> list[int]:
    """Largest degree each node sustains at ``target_rate``, pool at a time.

    Matches :func:`repro.core.heuristic.supported_children` exactly.
    """
    if target_rate <= 0.0:
        # PlanningError, matching the scalar supported_children.
        raise PlanningError(f"target_rate must be > 0, got {target_rate}")
    _check_powers(powers)
    fixed_work = params.agent_fixed_work
    base_comm = params.agent_comm_base
    child_comm = params.agent_child_comm
    inverse = 1.0 / target_rate
    if _numpy_active():
        p = _np.asarray(powers, dtype=_np.float64)
        budget = inverse - (fixed_work / p + base_comm)
        per_child = params.wsel / p + child_comm
        slots = _np.floor(budget / per_child + _REL_TOL)
        slots = _np.where(budget < per_child, 0.0, slots)
        return [int(s) for s in slots]
    result = []
    for power in powers:
        budget = inverse - (fixed_work / power + base_comm)
        per_child = params.wsel / power + child_comm
        if budget < per_child:
            result.append(0)
        else:
            result.append(int(math.floor(budget / per_child + _REL_TOL)))
    return result


def service_throughput_prefixes(
    params: ModelParams, powers: Sequence[float], app_work: float
) -> list[float]:
    """Eq. 15 for every prefix ``powers[:k]`` of a server ranking, k=1..n.

    Uses the closed scalar-``Wapp`` form (``k`` identical prediction terms
    collapse to ``k * Wpre / Wapp``); the per-prefix values agree with
    :func:`repro.core.throughput.service_throughput` to ~1 ulp.
    """
    if app_work <= 0.0:
        raise ParameterError(f"app_work must be > 0, got {app_work}")
    _check_powers(powers)
    comm = params.service_comm
    wpre = params.wpre
    if _numpy_active():
        p = _np.asarray(powers, dtype=_np.float64)
        prefix = _np.cumsum(p)
        k = _np.arange(1, len(powers) + 1, dtype=_np.float64)
        pred = k * wpre / app_work
        rate = prefix / app_work
        return (1.0 / (comm + (1.0 + pred) / rate)).tolist()
    result = []
    total = 0.0
    for k, power in enumerate(powers, start=1):
        total += power
        pred = k * wpre / app_work
        rate = total / app_work
        result.append(1.0 / (comm + (1.0 + pred) / rate))
    return result


# ---------------------------------------------------------------------- #
# per-pool constant arrays for the fixed-point solver


class NodeArrays:
    """Per-node model constants for a ranked node list, computed once.

    The fixed-point heuristic probes hundreds of agent/server splits of the
    same ranking; every probe needs the same five per-node quantities.  This
    precomputes them as arrays (NumPy when available, lists otherwise) so a
    probe is slicing plus a handful of vector ops instead of ``O(n)``
    re-derivations per bisection step.

    Attributes
    ----------
    powers:
        Node computing powers, ranking order.
    sched_deg1 / sched_deg2:
        Agent scheduling rate at degree 1 / 2 (the ``t_hi`` feasibility
        bounds of the solver).
    fixed, per_child:
        The ``a`` and ``b`` of the supported-children closed form
        ``rate = 1 / (a + b*d)`` (see ``supported_children``).
    server_rate:
        Server scheduling rate (the Eq. 14 first operand).
    """

    #: Agent-tier size above which ``slot_total`` switches from the scalar
    #: early-exit loop to one vectorized pass (below it, per-call NumPy
    #: dispatch overhead exceeds the arithmetic it saves).
    VECTOR_TIER = 160

    __slots__ = (
        "params",
        "n",
        "powers",
        "sched_deg1",
        "sched_deg2",
        "fixed",
        "per_child",
        "server_rate",
        "_fixed_list",
        "_per_child_list",
        "_vectorized",
    )

    def __init__(self, params: ModelParams, powers: Sequence[float]):
        _check_powers(powers)
        self.params = params
        self.n = len(powers)
        self._vectorized = _numpy_active()
        work1, comm1 = _agent_rate_constants(params, 1)
        work2, comm2 = _agent_rate_constants(params, 2)
        fixed_work = params.agent_fixed_work
        base_comm = params.agent_comm_base
        child_comm = params.agent_child_comm
        server_comm = params.server_comm
        # Python lists are the authoritative store (plain floats, exactly
        # the scalar expressions); the NumPy views wrap the same values, so
        # both backends read identical bits.
        power_list = [float(p) for p in powers]
        self._fixed_list = [fixed_work / p + base_comm for p in power_list]
        self._per_child_list = [params.wsel / p + child_comm for p in power_list]
        sched_deg1 = [1.0 / (work1 / p + comm1) for p in power_list]
        sched_deg2 = [1.0 / (work2 / p + comm2) for p in power_list]
        server_rate = [1.0 / (params.wpre / p + server_comm) for p in power_list]
        if self._vectorized:
            self.powers = _np.asarray(power_list, dtype=_np.float64)
            self.sched_deg1 = _np.asarray(sched_deg1, dtype=_np.float64)
            self.sched_deg2 = _np.asarray(sched_deg2, dtype=_np.float64)
            self.fixed = _np.asarray(self._fixed_list, dtype=_np.float64)
            self.per_child = _np.asarray(self._per_child_list, dtype=_np.float64)
            self.server_rate = _np.asarray(server_rate, dtype=_np.float64)
        else:
            self.powers = power_list
            self.sched_deg1 = sched_deg1
            self.sched_deg2 = sched_deg2
            self.fixed = self._fixed_list
            self.per_child = self._per_child_list
            self.server_rate = server_rate

    @classmethod
    def for_nodes(cls, params: ModelParams, nodes: Sequence["Node"]) -> "NodeArrays":
        return cls(params, [node.power for node in nodes])

    # ------------------------------------------------------------------ #

    def select(self, indices: Sequence[int] | slice):
        """(powers, fixed, per_child, server_rate) restricted to ``indices``."""
        if self._vectorized and not isinstance(indices, slice):
            idx = _np.asarray(indices, dtype=_np.intp)
            return (
                self.powers[idx],
                self.fixed[idx],
                self.per_child[idx],
                self.server_rate[idx],
            )
        if isinstance(indices, slice):
            return (
                self.powers[indices],
                self.fixed[indices],
                self.per_child[indices],
                self.server_rate[indices],
            )
        return (
            [self.powers[i] for i in indices],
            [self.fixed[i] for i in indices],
            [self.per_child[i] for i in indices],
            [self.server_rate[i] for i in indices],
        )

    def min_sched_deg2(self, lo: int, hi: int) -> float:
        """``min(sched_deg2[lo:hi])`` (``inf`` on an empty range)."""
        if hi <= lo:
            return math.inf
        if self._vectorized:
            return float(_np.min(self.sched_deg2[lo:hi]))
        return min(self.sched_deg2[lo:hi])

    def slot_total(
        self, lo: int, hi: int, target_rate: float, clip: int
    ) -> int:
        """Total supported children over the agent tier ``[lo, hi)``.

        ``sum(min(supported_children(params, w, t), clip))`` over the tier,
        with each term defined exactly as the scalar function.  Once the
        running total exceeds ``clip`` the exact remainder is irrelevant to
        every caller (they clamp to the candidate budget), so the scalar
        path may return early; the vectorized path returns the full sum —
        both land on the same value after the caller's clamp.
        """
        inverse = 1.0 / target_rate
        fixed = self._fixed_list
        per_child = self._per_child_list
        total = 0
        # Peel the leading agents scalar-style: the ranking is
        # power-descending, so the strongest agents usually exhaust the
        # clip budget within a step or two — no vector dispatch needed.
        peel = hi if (hi - lo) < self.VECTOR_TIER or not self._vectorized else lo + 2
        i = lo
        while i < peel:
            budget = inverse - fixed[i]
            b = per_child[i]
            if budget < b:
                # The ranking is power-descending, so the per-node terms
                # are non-increasing: every later term is zero as well.
                return total
            # budget/b >= 1, so truncation is floor.
            slots = int(budget / b + _REL_TOL)
            if slots > clip:
                slots = clip
            total += slots
            if total > clip:
                return total
            i += 1
        if i == hi:
            return total
        budget = inverse - self.fixed[i:hi]
        per = self.per_child[i:hi]
        slots = _np.floor(budget / per + _REL_TOL)
        slots = _np.where(budget < per, 0.0, _np.minimum(slots, float(clip)))
        # Each term is an integer in [0, clip]; the float sum is exact.
        return total + int(float(_np.sum(slots)))

    def prefix_powers(self, powers) -> Sequence[float]:
        """``[0, p0, p0+p1, ...]`` running sums of a power selection."""
        if self._vectorized:
            prefix = _np.empty(len(powers) + 1, dtype=_np.float64)
            prefix[0] = 0.0
            _np.cumsum(powers, out=prefix[1:])
            return prefix
        prefix = [0.0]
        for power in powers:
            prefix.append(prefix[-1] + power)
        return prefix


# ---------------------------------------------------------------------- #
# memoizing hierarchy evaluation


class HierarchyEvaluator:
    """Caches per-node rates so repeated candidate evaluations are cheap.

    One evaluator serves one parameter set.  Planners that score many
    candidate hierarchies over the same pool (the homogeneous degree sweep,
    the incremental heuristic, the exhaustive reference) share agent rates
    keyed by ``(power, degree)``, server rates keyed by power, and service
    rates keyed by the server-power tuple — a candidate change re-prices
    only the nodes it touched.

    :meth:`evaluate` returns a :class:`ThroughputReport` identical (bit for
    bit) to cold :func:`~repro.core.throughput.hierarchy_throughput`.
    """

    #: Cap on each rate cache, cleared wholesale when full.  The service
    #: cache is keyed by whole server-power tuples, which the incremental
    #: heuristic's growing trials never repeat (O(n^2) floats per planned
    #: pool without a bound); the scalar-keyed caches only grow past this
    #: for planners reused across many continuous-power pools, but a
    #: long-lived process must not accumulate them forever either.
    SERVICE_CACHE_MAX = 4096
    RATE_CACHE_MAX = 65536

    __slots__ = (
        "params",
        "_agent_rates",
        "_server_rates",
        "_service_rates",
        "hits",
        "misses",
    )

    def __init__(self, params: ModelParams):
        self.params = params
        self._agent_rates: dict[tuple[float, int], float] = {}
        self._server_rates: dict[float, float] = {}
        self._service_rates: dict[tuple, float] = {}
        #: Cache lookups answered from a cache / recomputed — observability
        #: counters (``repro.obs`` feeds per-epoch hit rates from them).
        self.hits = 0
        self.misses = 0

    # -- cached scalar rates ------------------------------------------- #

    def agent_rate(self, power: float, degree: int) -> float:
        """Cached :func:`~repro.core.throughput.agent_sched_throughput`."""
        key = (power, degree)
        rate = self._agent_rates.get(key)
        if rate is None:
            self.misses += 1
            work, comm = _agent_rate_constants(self.params, degree)
            if power <= 0.0:
                raise ParameterError(f"power must be > 0, got {power}")
            rate = 1.0 / (work / power + comm)
            if len(self._agent_rates) >= self.RATE_CACHE_MAX:
                self._agent_rates.clear()
            self._agent_rates[key] = rate
        else:
            self.hits += 1
        return rate

    def server_rate(self, power: float) -> float:
        """Cached :func:`~repro.core.throughput.server_sched_throughput`."""
        rate = self._server_rates.get(power)
        if rate is None:
            self.misses += 1
            if power <= 0.0:
                raise ParameterError(f"power must be > 0, got {power}")
            rate = 1.0 / (self.params.wpre / power + self.params.server_comm)
            if len(self._server_rates) >= self.RATE_CACHE_MAX:
                self._server_rates.clear()
            self._server_rates[power] = rate
        else:
            self.hits += 1
        return rate

    def service_rate(
        self, powers: Sequence[float], app_works: Sequence[float]
    ) -> float:
        """Cached :func:`~repro.core.throughput.service_throughput`."""
        key = (tuple(powers), tuple(app_works))
        rate = self._service_rates.get(key)
        if rate is None:
            self.misses += 1
            rate = service_throughput(self.params, powers, app_works)
            if len(self._service_rates) >= self.SERVICE_CACHE_MAX:
                self._service_rates.clear()
            self._service_rates[key] = rate
        else:
            self.hits += 1
        return rate

    # -- whole-hierarchy evaluation ------------------------------------ #

    def _walk(
        self, hierarchy: Hierarchy
    ) -> tuple[dict[NodeId, float], NodeId, list[NodeId], list[float]]:
        """One BFS pass: (rates, limiting node, servers BFS-ordered, powers).

        Reads the hierarchy's internal maps directly — this is the hottest
        loop of every candidate-sweeping planner, and the attribute/BFS
        overhead of the public accessors triples its cost.
        """
        role_map = hierarchy._role
        power_map = hierarchy._power
        children_map = hierarchy._children
        agent_rates = self._agent_rates
        server_rates = self._server_rates
        rates: dict[NodeId, float] = {}
        server_nodes: list[NodeId] = []
        server_powers: list[float] = []
        queue: list[NodeId] = [hierarchy.root]
        index = 0
        hits = 0
        # Track the minimum on the fly; like min(), ties keep the first
        # BFS-encountered node.
        limiting = queue[0]
        limit_rate = math.inf
        while index < len(queue):
            node = queue[index]
            index += 1
            power = power_map[node]
            if role_map[node] is Role.AGENT:
                children = children_map[node]
                queue.extend(children)
                key = (power, len(children))
                rate = agent_rates.get(key)
                if rate is None:
                    rate = self.agent_rate(power, len(children))
                else:
                    hits += 1
            else:
                rate = server_rates.get(power)
                if rate is None:
                    rate = self.server_rate(power)
                else:
                    hits += 1
                server_nodes.append(node)
                server_powers.append(power)
            rates[node] = rate
            if rate < limit_rate:
                limit_rate = rate
                limiting = node
        self.hits += hits
        return rates, limiting, server_nodes, server_powers

    def sched_throughput(
        self, hierarchy: Hierarchy
    ) -> tuple[float, NodeId, dict[NodeId, float]]:
        """Eq. 14 over a hierarchy, using the rate caches."""
        rates, limiting, _, _ = self._walk(hierarchy)
        return rates[limiting], limiting, rates

    def evaluate(
        self,
        hierarchy: Hierarchy,
        app_work,
        validate: bool = True,
    ) -> ThroughputReport:
        """Eq. 16 — memoized equivalent of ``hierarchy_throughput``.

        ``validate=False`` skips the structural re-check for hierarchies a
        planner just built itself.
        """
        if validate:
            hierarchy.validate(strict=False)
        rates, limiting, servers, powers = self._walk(hierarchy)
        if not servers:
            raise ParameterError(
                "deployment has no servers; throughput undefined"
            )
        sched = rates[limiting]
        works = resolve_app_work_list(servers, app_work)
        service = self.service_rate(powers, works)
        if sched <= service:
            bottleneck = "scheduling"
            rho = sched
        else:
            bottleneck = "service"
            rho = service
        return ThroughputReport(
            throughput=rho,
            sched=sched,
            service=service,
            bottleneck=bottleneck,
            limiting_node=limiting,
            node_rates=rates,
        )

    def throughput(
        self,
        hierarchy: Hierarchy,
        app_work,
        validate: bool = True,
    ) -> float:
        """Eq. 16 ``rho`` only — the cheapest way to score a candidate.

        Identical to ``evaluate(...).throughput`` but skips the per-node
        rate report, which candidate-sweeping planners discard for every
        tree except the winner.
        """
        if validate:
            hierarchy.validate(strict=False)
        role_map = hierarchy._role
        power_map = hierarchy._power
        children_map = hierarchy._children
        agent_rates = self._agent_rates
        server_rates = self._server_rates
        server_nodes: list[NodeId] = []
        server_powers: list[float] = []
        queue: list[NodeId] = [hierarchy.root]
        index = 0
        hits = 0
        sched = math.inf
        while index < len(queue):
            node = queue[index]
            index += 1
            power = power_map[node]
            if role_map[node] is Role.AGENT:
                children = children_map[node]
                queue.extend(children)
                key = (power, len(children))
                rate = agent_rates.get(key)
                if rate is None:
                    rate = self.agent_rate(power, len(children))
                else:
                    hits += 1
            else:
                rate = server_rates.get(power)
                if rate is None:
                    rate = self.server_rate(power)
                else:
                    hits += 1
                server_nodes.append(node)
                server_powers.append(power)
            if rate < sched:
                sched = rate
        if not server_nodes:
            raise ParameterError(
                "deployment has no servers; throughput undefined"
            )
        works = resolve_app_work_list(server_nodes, app_work)
        service = self.service_rate(server_powers, works)
        self.hits += hits
        return sched if sched <= service else service

    def cache_info(self) -> dict[str, int]:
        """Cache sizes plus cumulative hit/miss counts (diagnostics for
        tests, benchmarks and the per-epoch cache-hit-rate metric)."""
        return {
            "agent_rates": len(self._agent_rates),
            "server_rates": len(self._server_rates),
            "service_rates": len(self._service_rates),
            "hits": self.hits,
            "misses": self.misses,
        }
