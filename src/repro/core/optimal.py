"""Exhaustive reference planners for small pools.

Finding the best hierarchy in general is NP-hard (the paper relates it to
optimal broadcast trees), but the steady-state throughput (Eq. 16) depends
only on

* which nodes act as agents and with what degree, and
* which nodes act as servers,

never on *where* in the tree an agent attaches.  The search space for an
exact optimum on ``n`` nodes is therefore "role assignments x degree
multisets", which is enumerable for small ``n``.  This module provides
that exact reference — used by the Table 4 benchmark and by property tests
that bound how far the heuristic can fall from optimal.

Validity recap: every agent needs ``degree >= 1``; *non-root* agents need
``degree >= 2``; servers are leaves.  Hence a valid degree multiset over
the agents sums to ``used_nodes - 1`` and contains at most one part equal
to 1 (which must belong to the root).
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product

from repro.core.hierarchy import Hierarchy
from repro.core.kernels import HierarchyEvaluator
from repro.core.params import ModelParams
from repro.core.throughput import ThroughputReport
from repro.errors import PlanningError
from repro.platforms.pool import NodePool

__all__ = ["ExhaustivePlan", "exhaustive_plan", "build_from_roles"]

#: Exhaustive search is exponential; refuse pools larger than this.
MAX_EXHAUSTIVE_NODES = 10


@dataclass(frozen=True)
class ExhaustivePlan:
    """Provably-optimal deployment for a (small) pool."""

    hierarchy: Hierarchy
    report: ThroughputReport
    nodes_used: int

    @property
    def throughput(self) -> float:
        return self.report.throughput


def _degree_multisets(total: int, parts: int) -> list[tuple[int, ...]]:
    """Descending degree multisets for ``parts`` agents summing to ``total``.

    Each part is >= 2 except that the final (smallest) part may be 1 — the
    root's degree.  Returned tuples are sorted descending.
    """
    results: list[tuple[int, ...]] = []

    def recurse(remaining: int, parts_left: int, maximum: int, acc: list[int]) -> None:
        if parts_left == 0:
            if remaining == 0:
                results.append(tuple(acc))
            return
        if parts_left == 1:
            # Smallest part: may be 1.
            if 1 <= remaining <= maximum:
                results.append(tuple(acc + [remaining]))
            return
        # Non-final parts are >= 2; keep the sequence non-increasing and
        # reserve at least 2*(parts_left-2) + 1 for the rest.
        reserve = 2 * (parts_left - 2) + 1
        for part in range(min(maximum, remaining - reserve), 1, -1):
            recurse(remaining - part, parts_left - 1, part, acc + [part])

    if parts >= 1 and total >= 1:
        recurse(total, parts, total, [])
    return results


def build_from_roles(
    pool: NodePool,
    agent_degrees: dict[str, int],
    server_names: list[str],
) -> Hierarchy:
    """Construct a concrete hierarchy realizing a role/degree assignment.

    If any agent has degree 1 it must be unique and becomes the root
    (validity requires non-root agents to have >= 2 children); otherwise
    the highest-power agent is the root.  Remaining agents attach greedily
    to any agent with a free child slot (placement does not affect
    throughput, see module docstring), then servers fill remaining slots.
    """
    if not agent_degrees:
        raise PlanningError("at least one agent is required")
    if not server_names:
        raise PlanningError("at least one server is required")
    total_slots = sum(agent_degrees.values())
    if total_slots != len(agent_degrees) - 1 + len(server_names):
        raise PlanningError(
            f"degree sum {total_slots} does not place "
            f"{len(agent_degrees) - 1} agents + {len(server_names)} servers"
        )
    singles = [a for a, d in agent_degrees.items() if d == 1]
    if len(singles) > 1:
        raise PlanningError(f"only the root may have degree 1, got {singles}")
    by_power = sorted(
        agent_degrees, key=lambda name: (pool[name].power, name), reverse=True
    )
    root = singles[0] if singles else by_power[0]
    others = [a for a in by_power if a != root]
    hierarchy = Hierarchy()
    hierarchy.set_root(root, pool[root].power)
    free: dict[str, int] = {root: agent_degrees[root]}
    for agent in others:
        parent = next((a for a in free if free[a] > 0), None)
        if parent is None:
            raise PlanningError("degree assignment leaves an agent unplaceable")
        hierarchy.add_agent(agent, pool[agent].power, parent)
        free[parent] -= 1
        free[agent] = agent_degrees[agent]
    for server in server_names:
        parent = next((a for a in free if free[a] > 0), None)
        if parent is None:
            raise PlanningError("degree assignment leaves a server unplaceable")
        hierarchy.add_server(server, pool[server].power, parent)
        free[parent] -= 1
    return hierarchy


def _pair_degrees_to_agents(
    pool: NodePool, agent_names: list[str], degrees: tuple[int, ...]
) -> dict[str, int]:
    """Assign a descending degree multiset to agents, fastest-first.

    Agent scheduling rate decreases with degree, so pairing the largest
    degree with the fastest agent maximizes the min agent rate (a classic
    rearrangement argument).  When the multiset ends in a 1, that degree
    goes to the *slowest* agent, which then serves as root.
    """
    ordered_agents = sorted(
        agent_names, key=lambda a: (pool[a].power, a), reverse=True
    )
    return dict(zip(ordered_agents, degrees))


def exhaustive_plan(
    pool: NodePool,
    params: ModelParams,
    app_work: float,
    demand: float | None = None,
) -> ExhaustivePlan:
    """Exact optimum over every valid deployment drawn from ``pool``.

    Enumerates every role assignment (unused / agent / server per node) and
    every valid degree multiset, evaluating Eq. 16 analytically.  With
    ``demand`` given, the cheapest deployment meeting the demand wins;
    otherwise the highest-throughput one (ties -> fewer nodes).

    Raises
    ------
    PlanningError
        If the pool exceeds :data:`MAX_EXHAUSTIVE_NODES` nodes or has no
        valid deployment (fewer than 2 nodes).
    """
    n = len(pool)
    if n > MAX_EXHAUSTIVE_NODES:
        raise PlanningError(
            f"exhaustive search limited to {MAX_EXHAUSTIVE_NODES} nodes, "
            f"pool has {n}"
        )
    if n < 2:
        raise PlanningError(f"planning needs >= 2 nodes, pool has {n}")

    names = pool.names
    best: tuple[float, int, dict[str, int], list[str]] | None = None
    satisfying: tuple[float, int, dict[str, int], list[str]] | None = None
    # The enumeration revisits the same (power, degree) pairs and server
    # sets constantly; the memoized evaluator prices each exactly once.
    evaluator = HierarchyEvaluator(params)

    for roles in product((0, 1, 2), repeat=n):  # 0 unused, 1 agent, 2 server
        agent_names = [names[i] for i in range(n) if roles[i] == 1]
        server_names = [names[i] for i in range(n) if roles[i] == 2]
        if not agent_names or not server_names:
            continue
        used = len(agent_names) + len(server_names)
        server_powers = [pool[s].power for s in server_names]
        service = evaluator.service_rate(
            server_powers, [app_work] * len(server_powers)
        )
        server_floor = min(
            evaluator.server_rate(p) for p in server_powers
        )
        for degrees in _degree_multisets(used - 1, len(agent_names)):
            assignment = _pair_degrees_to_agents(pool, agent_names, degrees)
            sched = min(
                evaluator.agent_rate(pool[a].power, d)
                for a, d in assignment.items()
            )
            rho = min(sched, server_floor, service)
            entry = (rho, used, assignment, server_names)
            if best is None or (rho, -used) > (best[0], -best[1]):
                best = entry
            if demand is not None and rho >= demand:
                if satisfying is None or used < satisfying[1]:
                    satisfying = entry

    if best is None:
        raise PlanningError("no valid deployment exists for this pool")
    rho, used, assignment, server_names = (
        satisfying if satisfying is not None else best
    )
    hierarchy = build_from_roles(pool, assignment, server_names)
    hierarchy.validate(strict=True)
    report = evaluator.evaluate(hierarchy, app_work, validate=False)
    return ExhaustivePlan(hierarchy=hierarchy, report=report, nodes_used=used)
