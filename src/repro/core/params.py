"""Model parameters for the middleware performance model.

The paper calibrates its model against DIET 2.0 deployed on the Lyon site of
Grid'5000 and reports the values in **Table 3**:

=========  ==========  ============================  ==========  ==========  ==========
element    Wreq         Wrep                          Wpre        Srep        Sreq
           (MFlop)      (MFlop)                       (MFlop)     (Mb)        (Mb)
=========  ==========  ============================  ==========  ==========  ==========
Agent      1.7e-1       4.0e-3 + 5.4e-3 * d           --          5.4e-3      5.3e-3
Server     --           --                            6.4e-3      6.4e-5      5.3e-5
=========  ==========  ============================  ==========  ==========  ==========

Message sizes are *level specific*: traffic on agent-to-agent (and
client-to-agent) links is roughly two orders of magnitude larger than
agent-to-server traffic, so :class:`ModelParams` carries one
:class:`LevelSizes` per level and each model equation uses the sizes of the
link level it describes.

Bandwidth is not reported in Table 3; the experiments ran on a switched
gigabit cluster, so the default is 1000 Mb/s.  All parameters are plain
floats in the units of :mod:`repro.units` and are validated on construction.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from functools import cached_property

from repro.errors import ParameterError

__all__ = ["LevelSizes", "ModelParams", "DEFAULT_PARAMS"]


@dataclass(frozen=True)
class LevelSizes:
    """Request/reply message sizes (Mb) for one level of the hierarchy."""

    sreq: float
    srep: float

    def __post_init__(self) -> None:
        if self.sreq <= 0.0:
            raise ParameterError(f"sreq must be > 0, got {self.sreq}")
        if self.srep <= 0.0:
            raise ParameterError(f"srep must be > 0, got {self.srep}")

    @property
    def round_trip(self) -> float:
        """Total bits exchanged for one request/reply pair, in Mb."""
        return self.sreq + self.srep


@dataclass(frozen=True)
class ModelParams:
    """Complete calibrated parameter set for the throughput model.

    Attributes
    ----------
    wreq:
        MFlop an agent spends processing one incoming request (Eq. 5).
    wfix, wsel:
        Fixed and per-child MFlop of the agent reply-merge step:
        ``Wrep(d) = wfix + wsel * d``.
    wpre:
        MFlop a server spends producing a performance prediction during the
        scheduling phase.
    agent_sizes:
        Message sizes on client-agent and agent-agent links.
    server_sizes:
        Message sizes on agent-server links (scheduling phase).
    service_sizes:
        Message sizes on the client-server link during the service phase.
        Table 3 does not report these separately; the paper's model reuses
        the server-level sizes, which is the default here.
    bandwidth:
        Homogeneous link bandwidth ``B`` in Mb/s.
    """

    wreq: float = 1.7e-1
    wfix: float = 4.0e-3
    wsel: float = 5.4e-3
    wpre: float = 6.4e-3
    agent_sizes: LevelSizes = field(
        default_factory=lambda: LevelSizes(sreq=5.3e-3, srep=5.4e-3)
    )
    server_sizes: LevelSizes = field(
        default_factory=lambda: LevelSizes(sreq=5.3e-5, srep=6.4e-5)
    )
    service_sizes: LevelSizes | None = None
    bandwidth: float = 1000.0

    def __post_init__(self) -> None:
        for name in ("wreq", "wfix", "wsel", "wpre"):
            value = getattr(self, name)
            if value < 0.0:
                raise ParameterError(f"{name} must be >= 0, got {value}")
        if self.bandwidth <= 0.0:
            raise ParameterError(f"bandwidth must be > 0, got {self.bandwidth}")
        if self.service_sizes is None:
            # Frozen dataclass: bypass the frozen guard for the default fill-in.
            object.__setattr__(self, "service_sizes", self.server_sizes)

    def wrep(self, degree: int) -> float:
        """Agent reply-processing work ``Wrep(d) = Wfix + Wsel * d`` (MFlop)."""
        if degree < 0:
            raise ParameterError(f"degree must be >= 0, got {degree}")
        return self.wfix + self.wsel * degree

    # ------------------------------------------------------------------ #
    # Derived constants, precomputed once per parameter set.  These are the
    # per-request quantities every planner probe needs; hoisting them here
    # keeps the hot loops free of repeated divisions.  Each expression
    # mirrors the op-for-op float sequence of the scalar model functions so
    # substituting a cached constant never changes a result bit.

    @cached_property
    def agent_fixed_work(self) -> float:
        """``Wreq + Wfix`` — the degree-independent agent work (MFlop)."""
        return self.wreq + self.wfix

    @cached_property
    def agent_comm_base(self) -> float:
        """Degree-0 agent communication seconds (Eqs. 1–2 with ``d = 0``)."""
        return (
            self.agent_sizes.sreq / self.bandwidth
            + self.agent_sizes.srep / self.bandwidth
        )

    @cached_property
    def agent_child_comm(self) -> float:
        """Per-child agent communication seconds (one Sreq + Srep pair)."""
        return self.agent_sizes.round_trip / self.bandwidth

    @cached_property
    def server_comm(self) -> float:
        """Per-request server scheduling communication seconds (Eqs. 3–4)."""
        return (
            self.server_sizes.sreq / self.bandwidth
            + self.server_sizes.srep / self.bandwidth
        )

    @cached_property
    def service_comm(self) -> float:
        """Per-request client-server communication seconds (service phase)."""
        return self.service_sizes.round_trip / self.bandwidth

    def replace(self, **changes: object) -> "ModelParams":
        """Return a copy with the given fields replaced."""
        return dataclasses.replace(self, **changes)

    def with_bandwidth(self, bandwidth: float) -> "ModelParams":
        """Return a copy with a different link bandwidth."""
        return self.replace(bandwidth=bandwidth)


#: Parameter values of Table 3 with the default gigabit interconnect.
DEFAULT_PARAMS = ModelParams()
