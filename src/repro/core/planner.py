"""High-level planning facade — **deprecated** in favour of the typed API.

:func:`plan_deployment` remains as a thin back-compat shim over the
planner registry: it builds a :class:`repro.api.PlanRequest` from its
untyped ``**options`` grab-bag and dispatches through
:data:`repro.core.registry.REGISTRY`, emitting a
:class:`DeprecationWarning`.  New code should use::

    from repro import PlanningSession

    deployment = PlanningSession().plan(pool=pool, app_work=wapp)

which reaches every registered planner (including the extensions and any
third-party ones) with eagerly-validated, typed options.

:class:`Deployment` and the balanced-tree default now live in
:mod:`repro.core.registry`; they are re-exported here unchanged.
"""

from __future__ import annotations

import warnings

from repro.core.params import ModelParams
from repro.core.registry import REGISTRY, Deployment
from repro.platforms.pool import NodePool

__all__ = ["Deployment", "plan_deployment", "PLANNING_METHODS"]

#: The paper's six planning methods (back-compat constant).  The live
#: list — including extensions and third-party planners — is
#: ``repro.core.registry.REGISTRY.available()``.
PLANNING_METHODS = (
    "heuristic",
    "homogeneous",
    "exhaustive",
    "star",
    "balanced",
    "chain",
)


def plan_deployment(
    pool: NodePool,
    app_work: float,
    demand: float | None = None,
    params: ModelParams | None = None,
    method: str = "heuristic",
    **options: object,
) -> Deployment:
    """Plan a middleware deployment on ``pool`` (deprecated facade).

    Equivalent to ``PlanningSession().plan(PlanRequest(...))`` with the
    keyword ``options`` coerced into the planner's typed option
    dataclass.  Kept for backward compatibility; emits a
    :class:`DeprecationWarning`.

    Parameters
    ----------
    pool:
        Available compute nodes (rated powers in MFlop/s).
    app_work:
        Application work ``Wapp`` per request, MFlop.
    demand:
        Optional client demand (requests/s); planners that support it stop
        at the cheapest satisfying deployment.
    params:
        Model parameters; defaults to the paper's Table 3 calibration.
    method:
        A planner name from ``REGISTRY.available()``.
    options:
        Method-specific options: ``strategy`` / ``patience`` /
        ``allow_promotion`` / ``agent_selection`` (heuristic),
        ``spanning_only`` (homogeneous), ``middle_agents`` (balanced),
        ``agents`` (chain).

    Returns
    -------
    Deployment
        Validated deployment and its Eq. 16 throughput report.
    """
    warnings.warn(
        "plan_deployment() is deprecated; use repro.PlanningSession / "
        "repro.PlanRequest with typed planner options instead",
        DeprecationWarning,
        stacklevel=2,
    )
    from repro.api import PlanRequest

    request = PlanRequest(
        pool=pool,
        app_work=app_work,
        demand=demand,
        params=params,
        method=method,
        options=dict(options) if options else None,
    )
    return REGISTRY.plan(request)
