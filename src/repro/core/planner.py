"""High-level planning façade.

:func:`plan_deployment` is the single entry point most users need: give it
a node pool, a workload, and optionally a client demand, and it returns a
validated deployment with its model throughput report.  The ``method``
argument selects between the paper's heuristic (default), the
homogeneous-optimal planner, the exhaustive reference (small pools only)
and the intuitive baselines.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.baselines import (
    balanced_deployment,
    chain_deployment,
    star_deployment,
)
from repro.core.heuristic import HeuristicPlanner
from repro.core.hierarchy import Hierarchy
from repro.core.homogeneous import HomogeneousPlanner
from repro.core.optimal import exhaustive_plan
from repro.core.params import DEFAULT_PARAMS, ModelParams
from repro.core.throughput import ThroughputReport, hierarchy_throughput
from repro.errors import PlanningError
from repro.platforms.pool import NodePool

__all__ = ["Deployment", "plan_deployment", "PLANNING_METHODS"]

PLANNING_METHODS = (
    "heuristic",
    "homogeneous",
    "exhaustive",
    "star",
    "balanced",
    "chain",
)


@dataclass(frozen=True)
class Deployment:
    """A planned deployment: the tree plus its predicted performance."""

    hierarchy: Hierarchy
    report: ThroughputReport
    method: str
    app_work: float
    params: ModelParams

    @property
    def throughput(self) -> float:
        """Model-predicted completed-request throughput, requests/s."""
        return self.report.throughput

    @property
    def nodes_used(self) -> int:
        return len(self.hierarchy)

    def describe(self) -> str:
        shape = self.hierarchy.shape_signature()
        return (
            f"Deployment[{self.method}]: rho={self.throughput:.2f} req/s "
            f"({self.report.bottleneck}-bound), nodes={shape[0]} "
            f"(agents={shape[1]}, servers={shape[2]}, height={shape[3]})"
        )


def plan_deployment(
    pool: NodePool,
    app_work: float,
    demand: float | None = None,
    params: ModelParams | None = None,
    method: str = "heuristic",
    **options: object,
) -> Deployment:
    """Plan a middleware deployment on ``pool``.

    Parameters
    ----------
    pool:
        Available compute nodes (rated powers in MFlop/s).
    app_work:
        Application work ``Wapp`` per request, MFlop.
    demand:
        Optional client demand (requests/s); planners that support it stop
        at the cheapest satisfying deployment.
    params:
        Model parameters; defaults to the paper's Table 3 calibration.
    method:
        One of :data:`PLANNING_METHODS`.
    options:
        Method-specific options: ``patience`` / ``allow_promotion``
        (heuristic), ``spanning_only`` (homogeneous), ``middle_agents``
        (balanced), ``agents`` (chain).

    Returns
    -------
    Deployment
        Validated deployment and its Eq. 16 throughput report.
    """
    params = DEFAULT_PARAMS if params is None else params
    if method == "heuristic":
        planner = HeuristicPlanner(
            params,
            strategy=str(options.pop("strategy", "fixed_point")),
            patience=int(options.pop("patience", 4)),
            allow_promotion=bool(options.pop("allow_promotion", True)),
            agent_selection=str(options.pop("agent_selection", "fastest")),
        )
        _reject_extra(options)
        result = planner.plan(pool, app_work, demand=demand)
        hierarchy, report = result.hierarchy, result.report
    elif method == "homogeneous":
        planner = HomogeneousPlanner(
            params, spanning_only=bool(options.pop("spanning_only", False))
        )
        _reject_extra(options)
        result = planner.plan(pool, app_work, demand=demand)
        hierarchy, report = result.hierarchy, result.report
    elif method == "exhaustive":
        _reject_extra(options)
        result = exhaustive_plan(pool, params, app_work, demand=demand)
        hierarchy, report = result.hierarchy, result.report
    elif method == "star":
        _reject_extra(options)
        hierarchy = star_deployment(pool)
        report = hierarchy_throughput(hierarchy, params, app_work)
    elif method == "balanced":
        middle = int(options.pop("middle_agents", _default_middle(pool)))
        _reject_extra(options)
        hierarchy = balanced_deployment(pool, middle)
        report = hierarchy_throughput(hierarchy, params, app_work)
    elif method == "chain":
        agents = int(options.pop("agents", 2))
        _reject_extra(options)
        hierarchy = chain_deployment(pool, agents)
        report = hierarchy_throughput(hierarchy, params, app_work)
    else:
        raise PlanningError(
            f"unknown method {method!r}; expected one of {PLANNING_METHODS}"
        )
    hierarchy.validate(strict=True)
    return Deployment(
        hierarchy=hierarchy,
        report=report,
        method=method,
        app_work=app_work,
        params=params,
    )


def _default_middle(pool: NodePool) -> int:
    """Balanced-tree default: ~sqrt sizing, the paper's 14-for-200 shape."""
    import math

    return max(1, int(math.sqrt(max(0, len(pool) - 1))))


def _reject_extra(options: dict[str, object]) -> None:
    if options:
        raise PlanningError(f"unknown planner options: {sorted(options)}")
