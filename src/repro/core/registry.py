"""Planner registry — the pluggable planning API.

Every planning algorithm in the library (the paper's heuristic, the
homogeneous-optimal planner, the exhaustive reference, the intuitive
baselines, and the extensions) is exposed through one interface:

* :class:`Planner` — the protocol a planner implements: a ``name``, a
  ``capabilities`` set, a typed ``options_type``, and
  ``plan(request) -> Deployment``;
* :class:`PlannerRegistry` — name-indexed planner collection with
  :meth:`~PlannerRegistry.register`, :meth:`~PlannerRegistry.get`,
  :meth:`~PlannerRegistry.available` and a one-stop
  :meth:`~PlannerRegistry.plan` that resolves options and validates the
  result;
* :func:`register_planner` — decorator registering a planner class into
  a registry (the module-level :data:`REGISTRY` by default).

Registering a third-party planner is a one-file change::

    from dataclasses import dataclass
    from repro.core.registry import (
        CAP_AUTOMATIC, Deployment, PlannerOptions, register_planner,
    )

    @dataclass(frozen=True)
    class OracleOptions(PlannerOptions):
        hints: int = 3

    @register_planner
    class OraclePlanner:
        name = "oracle"
        capabilities = frozenset({CAP_AUTOMATIC})
        options_type = OracleOptions

        def plan(self, request):  # request is a repro.api.PlanRequest
            hierarchy = ...  # build a Hierarchy from request.pool
            return Deployment(
                hierarchy=hierarchy,
                report=hierarchy_throughput(
                    hierarchy, request.params, request.app_work
                ),
                method=self.name,
                app_work=request.app_work,
                params=request.params,
            )

The new planner immediately shows up in ``PlannerRegistry.available()``,
``repro-deploy plan --method`` and ``repro-deploy planners`` — no facade
edits required.

Option dataclasses validate **eagerly**: constructing
``HeuristicOptions(strategy="bogus")`` raises a :class:`PlanningError`
naming the valid strategies, before any planning work starts.
"""

from __future__ import annotations

import dataclasses
import importlib
import math
import typing
from collections.abc import Mapping
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Protocol, runtime_checkable

from repro.core.baselines import (
    balanced_deployment,
    chain_deployment,
    star_deployment,
)
from repro.core.heuristic import STRATEGIES, HeuristicPlanner
from repro.core.hierarchy import Hierarchy
from repro.core.homogeneous import HomogeneousPlanner
from repro.core.optimal import exhaustive_plan
from repro.core.params import DEFAULT_PARAMS, ModelParams
from repro.core.throughput import ThroughputReport, hierarchy_throughput
from repro.errors import PlanningError
from repro.platforms.pool import NodePool

if TYPE_CHECKING:  # pragma: no cover
    from repro.api import PlanRequest

__all__ = [
    "CAP_AUTOMATIC",
    "CAP_BASELINE",
    "CAP_DEMAND",
    "CAP_EXACT",
    "CAP_EXTENSION",
    "CAP_TRANSFORM",
    "Deployment",
    "Planner",
    "build_deployment",
    "PlannerOptions",
    "PlannerRegistry",
    "REGISTRY",
    "register_planner",
    "default_middle_agents",
    "HeuristicOptions",
    "HomogeneousOptions",
    "ExhaustiveOptions",
    "StarOptions",
    "BalancedOptions",
    "ChainOptions",
]

# Capability flags — coarse, queryable facts about a planner.
CAP_AUTOMATIC = "automatic"  # searches/models rather than a fixed shape
CAP_BASELINE = "baseline"    # positional "intuitive alternative" (§5.3)
CAP_DEMAND = "demand"        # honours PlanRequest.demand
CAP_EXACT = "exact"          # provably optimal in its domain
CAP_EXTENSION = "extension"  # beyond the paper (future-work items)
CAP_TRANSFORM = "transform"  # transforms another planner's deployment


def default_middle_agents(pool: NodePool) -> int:
    """Balanced-tree default: ~sqrt sizing, the paper's 14-for-200 shape.

    The single source of truth for the balanced baseline's middle-agent
    count: ``max(1, floor(sqrt(n - 1)))`` gives 14 middle agents on the
    paper's 200-node Orsay pool.
    """
    return max(1, int(math.sqrt(max(0, len(pool) - 1))))


@dataclass(frozen=True)
class Deployment:
    """A planned deployment: the tree plus its predicted performance."""

    hierarchy: Hierarchy
    report: ThroughputReport
    method: str
    app_work: float
    params: ModelParams
    #: Planner-specific results (e.g. the hetcomm model's throughput, the
    #: multiapp server assignments) that do not fit the common schema.
    extras: Mapping[str, object] = field(default_factory=dict, repr=False)

    @property
    def throughput(self) -> float:
        """Model-predicted completed-request throughput, requests/s."""
        return self.report.throughput

    @property
    def nodes_used(self) -> int:
        return len(self.hierarchy)

    def describe(self) -> str:
        shape = self.hierarchy.shape_signature()
        return (
            f"Deployment[{self.method}]: rho={self.throughput:.2f} req/s "
            f"({self.report.bottleneck}-bound), nodes={shape[0]} "
            f"(agents={shape[1]}, servers={shape[2]}, height={shape[3]})"
        )


# ---------------------------------------------------------------------- #
# typed planner options


@dataclass(frozen=True)
class PlannerOptions:
    """Base class for per-planner option dataclasses.

    Subclasses declare typed fields with defaults and validate them in
    ``__post_init__``; :meth:`coerce` builds an instance from a loose
    string-valued mapping (the CLI's ``--opt key=value`` flags), rejecting
    unknown keys with a message that lists the valid ones.
    """

    @classmethod
    def coerce(cls, mapping: Mapping[str, object]) -> "PlannerOptions":
        """Build options from a mapping, converting strings to field types."""
        fields = {f.name: f for f in dataclasses.fields(cls)}
        unknown = sorted(set(mapping) - set(fields))
        if unknown:
            raise PlanningError(
                f"unknown planner options: {unknown}; "
                f"{cls.__name__} accepts {sorted(fields) or 'no options'}"
            )
        # Resolve annotations to real types so conversion works whether or
        # not the defining module uses `from __future__ import annotations`.
        try:
            hints = typing.get_type_hints(cls)
        except Exception:
            hints = {name: f.type for name, f in fields.items()}
        kwargs = {
            key: _convert_option(
                cls.__name__, key, hints.get(key, fields[key].type), value
            )
            for key, value in mapping.items()
        }
        return cls(**kwargs)

    def summary(self) -> str:
        """``key=value`` rendering of the non-default fields."""
        parts = []
        for f in dataclasses.fields(self):
            value = getattr(self, f.name)
            default = (
                f.default
                if f.default is not dataclasses.MISSING
                else (
                    f.default_factory()  # type: ignore[misc]
                    if f.default_factory is not dataclasses.MISSING
                    else dataclasses.MISSING
                )
            )
            if value != default:
                parts.append(f"{f.name}={value!r}")
        return ", ".join(parts)


def _convert_option(
    owner: str, name: str, hint: object, value: object
) -> object:
    """Convert a CLI-style string to the declared field type."""
    if not isinstance(value, str):
        return value
    declared = hint.__name__ if isinstance(hint, type) else str(hint)
    try:
        if "tuple[int" in declared:
            return tuple(int(p) for p in value.split(",") if p.strip())
        if "tuple[float" in declared:
            return tuple(float(p) for p in value.split(",") if p.strip())
        if declared.startswith("bool"):
            lowered = value.strip().lower()
            if lowered in ("1", "true", "yes", "on"):
                return True
            if lowered in ("0", "false", "no", "off"):
                return False
            raise ValueError(f"not a boolean: {value!r}")
        if declared.startswith("int"):
            return int(value)
        if declared.startswith("float"):
            return float(value)
        return value
    except ValueError as exc:
        raise PlanningError(
            f"{owner}.{name}: cannot parse {value!r} as {declared}"
        ) from exc


@dataclass(frozen=True)
class HeuristicOptions(PlannerOptions):
    """Options of the paper's heterogeneous heuristic (Algorithm 1)."""

    strategy: str = "fixed_point"
    patience: int = 4
    allow_promotion: bool = True
    agent_selection: str = "fastest"

    def __post_init__(self) -> None:
        if self.strategy not in STRATEGIES:
            raise PlanningError(
                f"unknown strategy {self.strategy!r}; "
                f"expected one of {STRATEGIES}"
            )
        if self.patience < 1:
            raise PlanningError(
                f"patience must be >= 1, got {self.patience}"
            )
        if self.agent_selection not in ("fastest", "windowed"):
            raise PlanningError(
                f"unknown agent_selection {self.agent_selection!r}; "
                "expected 'fastest' or 'windowed'"
            )


@dataclass(frozen=True)
class HomogeneousOptions(PlannerOptions):
    """Options of the complete-spanning-d-ary-tree planner ([10])."""

    spanning_only: bool = False


@dataclass(frozen=True)
class ExhaustiveOptions(PlannerOptions):
    """The exhaustive reference takes no options (small pools only)."""


@dataclass(frozen=True)
class StarOptions(PlannerOptions):
    """The star baseline takes no options (first pool node is the agent)."""


@dataclass(frozen=True)
class BalancedOptions(PlannerOptions):
    """Options of the balanced two-level baseline.

    ``middle_agents=None`` (the default) sizes the middle tier with
    :func:`default_middle_agents`.
    """

    middle_agents: int | None = None

    def __post_init__(self) -> None:
        if self.middle_agents is not None and self.middle_agents < 1:
            raise PlanningError(
                "balanced deployment needs >= 1 middle agent, "
                f"got {self.middle_agents}"
            )


@dataclass(frozen=True)
class ChainOptions(PlannerOptions):
    """Options of the agent-chain baseline."""

    agents: int = 2

    def __post_init__(self) -> None:
        if self.agents < 1:
            raise PlanningError(
                f"chain deployment needs >= 1 agent, got {self.agents}"
            )


# ---------------------------------------------------------------------- #
# the planner protocol and the registry


@runtime_checkable
class Planner(Protocol):
    """What a pluggable planner provides."""

    name: str
    capabilities: frozenset[str]
    options_type: type[PlannerOptions]

    def plan(self, request: "PlanRequest") -> Deployment:
        """Plan a deployment for ``request`` (options already resolved)."""
        ...  # pragma: no cover


class PlannerRegistry:
    """Name-indexed collection of planners.

    Parameters
    ----------
    autoload:
        Module names imported lazily on first lookup, so that planners
        registered at import time (the extensions) become visible without
        an explicit import at every call site.
    """

    def __init__(self, autoload: tuple[str, ...] = ()):
        self._planners: dict[str, Planner] = {}
        self._autoload = tuple(autoload)
        self._loaded = not self._autoload

    def _ensure_loaded(self) -> None:
        if self._loaded:
            return
        self._loaded = True
        for module in self._autoload:
            importlib.import_module(module)

    def register(self, planner: Planner, replace: bool = False) -> Planner:
        """Add ``planner``; duplicate names raise unless ``replace``."""
        for attribute in ("name", "capabilities", "options_type", "plan"):
            if not hasattr(planner, attribute):
                raise PlanningError(
                    f"planner {planner!r} does not satisfy the Planner "
                    f"protocol: missing {attribute!r}"
                )
        name = planner.name
        if not name or not isinstance(name, str):
            raise PlanningError(f"planner name must be a non-empty string, got {name!r}")
        if name in self._planners and not replace:
            raise PlanningError(
                f"planner {name!r} is already registered; "
                "pass replace=True to override it"
            )
        self._planners[name] = planner
        return planner

    def get(self, name: str) -> Planner:
        """The planner registered under ``name``.

        Raises
        ------
        PlanningError
            For unknown names; the message lists :meth:`available`.
        """
        self._ensure_loaded()
        try:
            return self._planners[name]
        except KeyError:
            raise PlanningError(
                f"unknown planner {name!r}; "
                f"available planners: {', '.join(self.available())}"
            ) from None

    def available(self) -> tuple[str, ...]:
        """Registered planner names, sorted."""
        self._ensure_loaded()
        return tuple(sorted(self._planners))

    def __contains__(self, name: object) -> bool:
        self._ensure_loaded()
        return name in self._planners

    def __iter__(self):
        self._ensure_loaded()
        return iter(sorted(self._planners.values(), key=lambda p: p.name))

    def __len__(self) -> int:
        self._ensure_loaded()
        return len(self._planners)

    def resolve_options(
        self, name: str, options: object
    ) -> PlannerOptions:
        """Normalize ``options`` into the planner's typed dataclass."""
        planner = self.get(name)
        options_type = planner.options_type
        if options is None:
            return options_type()
        if isinstance(options, options_type):
            return options
        if isinstance(options, Mapping):
            return options_type.coerce(options)
        if isinstance(options, PlannerOptions):
            raise PlanningError(
                f"planner {name!r} takes {options_type.__name__}, "
                f"got {type(options).__name__}"
            )
        raise PlanningError(
            f"options for planner {name!r} must be a "
            f"{options_type.__name__} or a mapping, got {type(options).__name__}"
        )

    def plan(self, request: "PlanRequest") -> Deployment:
        """Dispatch ``request`` to its planner and validate the result."""
        planner = self.get(request.method)
        params = request.params if request.params is not None else DEFAULT_PARAMS
        options = self.resolve_options(request.method, request.options)
        if params is not request.params or options is not request.options:
            request = dataclasses.replace(
                request, params=params, options=options
            )
        deployment = planner.plan(request)
        deployment.hierarchy.validate(strict=True)
        return deployment


#: The default registry.  Core planners register below at import time;
#: the extension planners register when :mod:`repro.extensions` loads
#: (triggered lazily on first lookup).
REGISTRY = PlannerRegistry(autoload=("repro.extensions",))


def register_planner(cls=None, *, registry: PlannerRegistry | None = None,
                     replace: bool = False):
    """Class decorator: instantiate and register a planner.

    Usable bare (``@register_planner``) or parameterized
    (``@register_planner(registry=my_registry, replace=True)``).
    """

    def wrap(klass):
        (registry if registry is not None else REGISTRY).register(
            klass(), replace=replace
        )
        return klass

    return wrap if cls is None else wrap(cls)


# ---------------------------------------------------------------------- #
# built-in planners


def build_deployment(
    request: "PlanRequest",
    method: str,
    hierarchy: Hierarchy,
    report: ThroughputReport | None = None,
    extras: Mapping[str, object] | None = None,
) -> Deployment:
    """Wrap a planned ``hierarchy`` into a :class:`Deployment`.

    The shared construction helper for planner implementations: fills in
    the Eq. 16 report when none is given and carries planner-specific
    ``extras`` through.  Used by the built-in planners and the extension
    adapters alike.
    """
    if report is None:
        report = hierarchy_throughput(
            hierarchy, request.params, request.app_work
        )
    return Deployment(
        hierarchy=hierarchy,
        report=report,
        method=method,
        app_work=request.app_work,
        params=request.params,
        extras=dict(extras) if extras else {},
    )


@register_planner
class HeuristicRegistryPlanner:
    """Algorithm 1 — the paper's heterogeneous deployment heuristic."""

    name = "heuristic"
    capabilities = frozenset({CAP_AUTOMATIC, CAP_DEMAND})
    options_type = HeuristicOptions

    def plan(self, request: "PlanRequest") -> Deployment:
        opts = request.options
        planner = HeuristicPlanner(
            request.params,
            strategy=opts.strategy,
            patience=opts.patience,
            allow_promotion=opts.allow_promotion,
            agent_selection=opts.agent_selection,
        )
        result = planner.plan(
            request.pool, request.app_work, demand=request.demand
        )
        return build_deployment(request, self.name, result.hierarchy, result.report)


@register_planner
class HomogeneousRegistryPlanner:
    """Optimal complete-spanning-d-ary trees for homogeneous pools ([10])."""

    name = "homogeneous"
    capabilities = frozenset({CAP_AUTOMATIC, CAP_DEMAND})
    options_type = HomogeneousOptions

    def plan(self, request: "PlanRequest") -> Deployment:
        planner = HomogeneousPlanner(
            request.params, spanning_only=request.options.spanning_only
        )
        result = planner.plan(
            request.pool, request.app_work, demand=request.demand
        )
        return build_deployment(request, self.name, result.hierarchy, result.report)


@register_planner
class ExhaustiveRegistryPlanner:
    """Exact optimum by enumeration (small pools only).

    Pools above :data:`repro.core.optimal.MAX_EXHAUSTIVE_NODES` nodes are
    rejected by the underlying search.
    """

    name = "exhaustive"
    capabilities = frozenset({CAP_AUTOMATIC, CAP_DEMAND, CAP_EXACT})
    options_type = ExhaustiveOptions

    def plan(self, request: "PlanRequest") -> Deployment:
        result = exhaustive_plan(
            request.pool, request.params, request.app_work,
            demand=request.demand,
        )
        return build_deployment(request, self.name, result.hierarchy, result.report)


@register_planner
class StarRegistryPlanner:
    """Star baseline: one agent, every other node a server (§5.3)."""

    name = "star"
    capabilities = frozenset({CAP_BASELINE})
    options_type = StarOptions

    def plan(self, request: "PlanRequest") -> Deployment:
        return build_deployment(
            request, self.name, star_deployment(request.pool)
        )


@register_planner
class BalancedRegistryPlanner:
    """Balanced two-level baseline (the paper's 1 + 14 x 14 shape)."""

    name = "balanced"
    capabilities = frozenset({CAP_BASELINE})
    options_type = BalancedOptions

    def plan(self, request: "PlanRequest") -> Deployment:
        middle = request.options.middle_agents
        if middle is None:
            middle = default_middle_agents(request.pool)
        return build_deployment(
            request, self.name, balanced_deployment(request.pool, middle)
        )


@register_planner
class ChainRegistryPlanner:
    """Agent-chain baseline (ablation shape)."""

    name = "chain"
    capabilities = frozenset({CAP_BASELINE})
    options_type = ChainOptions

    def plan(self, request: "PlanRequest") -> Deployment:
        return build_deployment(
            request, self.name,
            chain_deployment(request.pool, request.options.agents),
        )
