"""Steady-state throughput model — Equations 11–16 of the paper.

The completed-request throughput of a deployment is the minimum of

* the **scheduling throughput** ``rho_sched`` (Eq. 14): the slowest per-node
  rate at which the scheduling phase can flow through the hierarchy — for
  every agent the inverse of its per-request compute + communication time,
  and for every server the inverse of its prediction + communication time;
* the **service throughput** ``rho_service`` (Eq. 15): the aggregate rate at
  which the server pool can execute the application, accounting for the
  prediction work every server performs on *every* request.

These closed forms assume the M(r,s,w) single-port serial model: a node's
per-request send, receive and compute times simply add.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import dataclass

from repro.core import comm_model, comp_model
from repro.core.hierarchy import Hierarchy, NodeId, Role
from repro.core.params import ModelParams
from repro.errors import ParameterError

__all__ = [
    "agent_sched_throughput",
    "server_sched_throughput",
    "service_throughput",
    "sched_throughput",
    "hierarchy_throughput",
    "ThroughputReport",
    "resolve_app_work",
    "resolve_app_work_list",
]


def agent_sched_throughput(params: ModelParams, power: float, degree: int) -> float:
    """Per-agent scheduling rate (second operand of Eq. 14), requests/s.

    This is the paper's ``calc_sch_pow``: the rate at which one agent of
    power ``power`` with ``degree`` children can process scheduling traffic.
    It is strictly decreasing in ``degree``.
    """
    if degree < 1:
        raise ParameterError(f"an agent needs >= 1 child, got degree={degree}")
    total_time = comp_model.agent_comp_time(
        params, power, degree
    ) + comm_model.agent_comm_time(params, degree)
    return 1.0 / total_time


def server_sched_throughput(params: ModelParams, power: float) -> float:
    """Per-server prediction rate (first operand of Eq. 14), requests/s."""
    if power <= 0.0:
        raise ParameterError(f"power must be > 0, got {power}")
    total_time = params.wpre / power + comm_model.server_comm_time(params)
    return 1.0 / total_time


def service_throughput(
    params: ModelParams,
    powers: Sequence[float],
    app_works: Sequence[float],
) -> float:
    """Eq. 15 — service-phase throughput of a server pool, requests/s.

    This is the paper's ``calc_hier_ser_pow``: the rate at which the pool
    completes application executions when load is split in the steady-state
    proportions of Eq. 8, including the per-request client communication.
    """
    comp = comp_model.server_comp_time(params, powers, app_works)
    comm = params.service_sizes.round_trip / params.bandwidth
    return 1.0 / (comm + comp)


def resolve_app_work_list(
    servers: Sequence[NodeId],
    app_work: float | Mapping[NodeId, float],
) -> list[float]:
    """Expand a scalar or per-server mapping of ``Wapp`` over ``servers``."""
    if isinstance(app_work, Mapping):
        missing = [s for s in servers if s not in app_work]
        if missing:
            raise ParameterError(f"app_work missing for servers: {missing!r}")
        return [float(app_work[s]) for s in servers]
    work = float(app_work)
    if work <= 0.0:
        raise ParameterError(f"app_work must be > 0, got {work}")
    return [work] * len(servers)


def resolve_app_work(
    hierarchy: Hierarchy,
    app_work: float | Mapping[NodeId, float],
) -> list[float]:
    """Expand a scalar or per-server mapping of ``Wapp`` into a list.

    The list is ordered like ``hierarchy.servers``.
    """
    return resolve_app_work_list(hierarchy.servers, app_work)


@dataclass(frozen=True)
class ThroughputReport:
    """Full throughput breakdown for a deployment.

    Attributes
    ----------
    throughput:
        Completed-request throughput ``rho`` (Eq. 16), requests/s.
    sched:
        Scheduling throughput ``rho_sched`` (Eq. 14).
    service:
        Service throughput ``rho_service`` (Eq. 15).
    bottleneck:
        ``"scheduling"`` or ``"service"`` — which phase limits ``rho``.
    limiting_node:
        The node realizing the scheduling minimum (even when service-bound,
        this reports the tightest scheduling element).
    node_rates:
        Per-node scheduling rate, requests/s.
    """

    throughput: float
    sched: float
    service: float
    bottleneck: str
    limiting_node: NodeId
    node_rates: Mapping[NodeId, float]

    @property
    def is_scheduling_bound(self) -> bool:
        return self.bottleneck == "scheduling"

    @property
    def is_service_bound(self) -> bool:
        return self.bottleneck == "service"


def sched_throughput(
    hierarchy: Hierarchy, params: ModelParams
) -> tuple[float, NodeId, dict[NodeId, float]]:
    """Eq. 14 over a hierarchy: (min rate, limiting node, per-node rates)."""
    rates: dict[NodeId, float] = {}
    for node in hierarchy:
        if hierarchy.role(node) is Role.AGENT:
            rates[node] = agent_sched_throughput(
                params, hierarchy.power(node), hierarchy.degree(node)
            )
        else:
            rates[node] = server_sched_throughput(params, hierarchy.power(node))
    limiting = min(rates, key=lambda n: rates[n])
    return rates[limiting], limiting, rates


def hierarchy_throughput(
    hierarchy: Hierarchy,
    params: ModelParams,
    app_work: float | Mapping[NodeId, float],
) -> ThroughputReport:
    """Eq. 16 — completed-request throughput of a deployment.

    Parameters
    ----------
    hierarchy:
        The deployment tree (validated non-strictly; intermediate planner
        states are allowed as long as they are structurally sound).
    app_work:
        ``Wapp`` in MFlop, either one value for all servers or a per-server
        mapping.
    """
    hierarchy.validate(strict=False)
    if not hierarchy.servers:
        raise ParameterError("deployment has no servers; throughput undefined")
    sched, limiting, rates = sched_throughput(hierarchy, params)
    powers = [hierarchy.power(s) for s in hierarchy.servers]
    works = resolve_app_work(hierarchy, app_work)
    service = service_throughput(params, powers, works)
    if sched <= service:
        bottleneck = "scheduling"
        rho = sched
    else:
        bottleneck = "service"
        rho = service
    return ThroughputReport(
        throughput=rho,
        sched=sched,
        service=service,
        bottleneck=bottleneck,
        limiting_node=limiting,
        node_rates=rates,
    )
