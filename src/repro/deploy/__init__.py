"""Deployment plan serialization, validation and launching.

The paper's tool chain writes the planned hierarchy to an XML file
(``write_xml`` in Table 1) which GoDIET [5] consumes to launch the real
platform.  This package mirrors that chain for the simulated platform:

* :mod:`repro.deploy.plan` — the serializable deployment plan;
* :mod:`repro.deploy.xml_io` — GoDIET-style XML writer/reader;
* :mod:`repro.deploy.validation` — structural and resource checks;
* :mod:`repro.deploy.godiet` — the launcher that turns a plan into a
  running :class:`~repro.middleware.system.MiddlewareSystem`;
* :mod:`repro.deploy.migration` — subtree-granular migration plans
  between two deployments (the live-redeploy diff engine).
"""

from repro.deploy.plan import DeploymentPlan
from repro.deploy.xml_io import hierarchy_to_xml, hierarchy_from_xml, plan_to_xml, plan_from_xml
from repro.deploy.validation import check_plan, ValidationIssue
from repro.deploy.godiet import GoDIET, DeployedPlatform
from repro.deploy.migration import (
    MigrationPlan,
    MigrationRegion,
    MigrationStep,
    hierarchies_equal,
    plan_migration,
)

__all__ = [
    "DeploymentPlan",
    "MigrationPlan",
    "MigrationRegion",
    "MigrationStep",
    "hierarchies_equal",
    "plan_migration",
    "hierarchy_to_xml",
    "hierarchy_from_xml",
    "plan_to_xml",
    "plan_from_xml",
    "check_plan",
    "ValidationIssue",
    "GoDIET",
    "DeployedPlatform",
]
