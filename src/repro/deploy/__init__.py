"""Deployment plan serialization, validation and launching.

The paper's tool chain writes the planned hierarchy to an XML file
(``write_xml`` in Table 1) which GoDIET [5] consumes to launch the real
platform.  This package mirrors that chain for the simulated platform:

* :mod:`repro.deploy.plan` — the serializable deployment plan;
* :mod:`repro.deploy.xml_io` — GoDIET-style XML writer/reader;
* :mod:`repro.deploy.validation` — structural and resource checks;
* :mod:`repro.deploy.godiet` — the launcher that turns a plan into a
  running :class:`~repro.middleware.system.MiddlewareSystem`.
"""

from repro.deploy.plan import DeploymentPlan
from repro.deploy.xml_io import hierarchy_to_xml, hierarchy_from_xml, plan_to_xml, plan_from_xml
from repro.deploy.validation import check_plan, ValidationIssue
from repro.deploy.godiet import GoDIET, DeployedPlatform

__all__ = [
    "DeploymentPlan",
    "hierarchy_to_xml",
    "hierarchy_from_xml",
    "plan_to_xml",
    "plan_from_xml",
    "check_plan",
    "ValidationIssue",
    "GoDIET",
    "DeployedPlatform",
]
