"""GoDIET — the (simulated) deployment launcher.

GoDIET [5] reads a deployment XML file, launches the middleware elements
over ssh in hierarchical order (parents before children, agents before
servers), and reports when the platform is ready.  :class:`GoDIET`
reproduces that behaviour against the simulation substrate: it validates
the plan, instantiates the simulated elements, and optionally models the
staged launch latency so experiments can account for deployment time.

Typical use::

    godiet = GoDIET(params=plan.params)
    platform = godiet.launch(plan)
    # drive platform.system with clients, then:
    rate = platform.system.completions.rate(t0, t1)
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.deploy.plan import DeploymentPlan
from repro.deploy.validation import check_plan
from repro.errors import DeploymentError
from repro.middleware.system import MiddlewareSystem
from repro.platforms.pool import NodePool
from repro.sim.engine import Simulator
from repro.sim.trace import TraceRecorder

__all__ = ["GoDIET", "DeployedPlatform"]


@dataclass
class DeployedPlatform:
    """A launched (simulated) platform.

    Attributes
    ----------
    sim:
        The event engine driving the platform.
    system:
        The running middleware.
    plan:
        The plan that was launched.
    ready_at:
        Simulation time at which every element finished launching; clients
        submitted before this observe launch-phase queueing just like
        early clients on a real deployment.
    """

    sim: Simulator
    system: MiddlewareSystem
    plan: DeploymentPlan
    ready_at: float


class GoDIET:
    """Launcher turning a :class:`DeploymentPlan` into a running platform.

    Parameters
    ----------
    launch_latency:
        Seconds modelled per element launch (ssh + process start on the
        real tool).  Elements launch sequentially in hierarchy (BFS)
        order, as GoDIET does; 0 (default) makes launching instantaneous.
    seed:
        Seed for the middleware's tie-breaking RNG.
    """

    def __init__(self, launch_latency: float = 0.0, seed: int = 0):
        if launch_latency < 0.0:
            raise DeploymentError(
                f"launch_latency must be >= 0, got {launch_latency}"
            )
        self.launch_latency = launch_latency
        self.seed = seed

    def launch(
        self,
        plan: DeploymentPlan,
        pool: NodePool | None = None,
        sim: Simulator | None = None,
        trace: TraceRecorder | None = None,
    ) -> DeployedPlatform:
        """Validate and launch ``plan``.

        Raises
        ------
        DeploymentError
            If validation reports any error-severity issue.
        """
        issues = check_plan(plan, pool=pool)
        errors = [issue for issue in issues if issue.is_error]
        if errors:
            summary = "; ".join(issue.message for issue in errors)
            raise DeploymentError(f"plan failed validation: {summary}")
        sim = sim if sim is not None else Simulator()
        system = MiddlewareSystem(
            sim,
            plan.hierarchy,
            plan.params,
            plan.app_work,
            trace=trace,
            seed=self.seed,
        )
        ready_at = sim.now + self.launch_latency * len(plan.hierarchy)
        return DeployedPlatform(
            sim=sim, system=system, plan=plan, ready_at=ready_at
        )
