"""Subtree-granular migration planning between two deployments.

The control plane used to realize every redeploy as stop-the-world:
tear the whole platform down, pay one global downtime window, rebuild.
This module supplies the structural half of the live alternative:
:func:`plan_migration` diffs an old and a new
:class:`~repro.core.hierarchy.Hierarchy` into a :class:`MigrationPlan` —
an ordered sequence of :class:`MigrationRegion` batches, each a drained
subtree plus the structural steps that transform it — so a runtime can
migrate one subtree at a time while the rest of the platform keeps
serving.

Step vocabulary (:class:`MigrationStep.op`):

``drain`` / ``resume``
    Region brackets: the listed subtree stops accepting new work /
    starts serving again.  No structural effect; these are what the
    downtime accounting hangs off.
``attach``
    A node joins the deployment under ``parent`` with ``role``/``power``.
``move``
    A surviving node (and its subtree) re-homes under ``parent``.
``detach``
    A node leaves the deployment (guaranteed to be a leaf by the time
    the step runs).
``promote`` / ``demote``
    A surviving node changes role (server ↔ agent) in place.

Ordering guarantees, by construction and verified by replay:

* within a region: drain, promotes, attaches (new-tree BFS order, so
  parents exist first), moves (new-tree depth order, with a
  park-at-root fallback for cyclic swaps), detaches (old-tree leaves
  first), demotes, resume;
* across regions: topologically sorted, so a move never targets a
  parent that a later region would only then attach or promote;
* a capacity-only growth (new servers under surviving agents) lands in
  a dedicated drain-free region — pure scale-ups cost zero downtime.

Regions also carry their cross-region dependencies explicitly
(:attr:`MigrationRegion.depends_on`), which is what makes the serial
order *relaxable*: :meth:`MigrationPlan.concurrent_schedule` groups the
regions into dependency **waves** — every region in a wave has all of
its providers in earlier waves and touches a node set disjoint from its
wave-mates — so a runtime may drain, reconfigure and resume all regions
of one wave simultaneously.  Applying the waves in order (regions
within a wave in *any* order) yields the same tree as the serial
:meth:`MigrationPlan.apply`, the equivalence the concurrent test
battery asserts.

Every plan is **verified**: :func:`plan_migration` replays the steps on
a copy of the source tree (:meth:`MigrationPlan.apply`) and falls back
to a single stop-the-world region (``kind="restart"``) whenever the
incremental recipe cannot reproduce the target exactly — changed roots,
changed node powers, or any diff the ordering rules cannot realize.
``apply`` is also the test suite's equivalence oracle: applying a plan
to the old tree must yield a tree identical to the target.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.hierarchy import Hierarchy, NodeId, Role
from repro.errors import DeploymentError

__all__ = [
    "MigrationStep",
    "MigrationRegion",
    "MigrationPlan",
    "plan_migration",
    "apply_steps",
    "hierarchies_equal",
]

#: Structural ops, in the relative order they run inside a region.
_STRUCTURAL_OPS = ("promote", "attach", "move", "detach", "demote")


@dataclass(frozen=True)
class MigrationStep:
    """One migration step; fields beyond ``op``/``node`` are op-specific."""

    op: str
    node: NodeId
    parent: NodeId | None = None  # attach / move target
    role: Role | None = None      # attach only
    power: float = 0.0            # attach only
    subtree: tuple[NodeId, ...] = ()  # drain / resume membership

    @property
    def is_structural(self) -> bool:
        return self.op in _STRUCTURAL_OPS

    def to_wire(self) -> dict:
        """JSON-safe dict form for the master/executor command protocol.

        Node ids are stringified (they are strings in practice — see
        :data:`~repro.core.hierarchy.NodeId`) and the :class:`Role`
        enum travels as its value; :meth:`from_wire` inverts exactly.
        """
        return {
            "op": self.op,
            "node": str(self.node),
            "parent": str(self.parent) if self.parent is not None else None,
            "role": self.role.value if self.role is not None else None,
            "power": self.power,
            "subtree": [str(node) for node in self.subtree],
        }

    @classmethod
    def from_wire(cls, wire: dict) -> "MigrationStep":
        return cls(
            op=wire["op"],
            node=wire["node"],
            parent=wire["parent"],
            role=Role(wire["role"]) if wire["role"] is not None else None,
            power=wire["power"],
            subtree=tuple(wire["subtree"]),
        )

    def describe(self) -> str:
        if self.op == "attach":
            return f"attach {self.node}({self.role.value}) under {self.parent}"
        if self.op == "move":
            return f"move {self.node} under {self.parent}"
        if self.op in ("drain", "resume"):
            return f"{self.op} {self.node} ({len(self.subtree)} nodes)"
        return f"{self.op} {self.node}"


@dataclass(frozen=True)
class MigrationRegion:
    """One migration batch: a drained subtree and its structural steps.

    ``root`` anchors the region in the *old* tree; the drain-free
    capacity-growth region uses the sentinel root ``"+"`` and an empty
    ``drained`` tuple, and the stop-the-world fallback uses ``"*"`` with
    every old node drained.

    ``depends_on`` lists the roots of the regions that must complete
    before this one may run: every move or attach target this region
    needs that another region only provides (by attaching or promoting
    it).  Regions with disjoint ``depends_on`` chains are independent —
    the raw material of :meth:`MigrationPlan.concurrent_schedule`.
    """

    root: NodeId
    drained: tuple[NodeId, ...]
    steps: tuple[MigrationStep, ...]
    depends_on: tuple[NodeId, ...] = ()

    @property
    def structural_steps(self) -> tuple[MigrationStep, ...]:
        return tuple(s for s in self.steps if s.is_structural)

    @property
    def touched(self) -> int:
        """Structural step count — the config-push unit of the cost model."""
        return len(self.structural_steps)

    @property
    def members(self) -> frozenset[NodeId]:
        """Every node this region owns: its drained subtree + its attaches.

        Move *targets* are read-only anchors, not members, so two
        regions may safely reference the same surviving parent; the
        concurrent test battery asserts that members of regions claimed
        concurrent never overlap.
        """
        owned = set(self.drained)
        owned.update(s.node for s in self.steps if s.op == "attach")
        return frozenset(owned)


@dataclass(frozen=True)
class MigrationPlan:
    """An ordered, verified recipe transforming one deployment into another.

    ``kind`` is ``"incremental"`` when the plan migrates subtree by
    subtree, ``"restart"`` when only a stop-the-world rebuild realizes
    the diff (root change, power change, or an unorderable move set),
    and ``"cold"`` when there is no source deployment at all.
    """

    kind: str
    regions: tuple[MigrationRegion, ...] = field(repr=False)
    source_nodes: int = 0
    target_nodes: int = 0

    @property
    def steps(self) -> tuple[MigrationStep, ...]:
        return tuple(s for region in self.regions for s in region.steps)

    @property
    def touched(self) -> int:
        return sum(region.touched for region in self.regions)

    @property
    def drained_total(self) -> int:
        return sum(len(region.drained) for region in self.regions)

    @property
    def is_noop(self) -> bool:
        return not self.regions

    @property
    def is_live(self) -> bool:
        """Whether this plan migrates incrementally (vs full restart)."""
        return self.kind == "incremental"

    def apply(self, old: Hierarchy | None) -> Hierarchy:
        """Replay the structural steps; returns the resulting tree.

        For an ``incremental``/``cold`` plan applied to its source, the
        result is identical to the target hierarchy — the equivalence
        the test suite asserts.  ``restart`` plans rebuild from empty.
        """
        if self.kind == "cold":
            tree = Hierarchy()
        elif old is None:
            raise DeploymentError(
                f"{self.kind} plan needs a source hierarchy"
            )
        else:
            tree = old.copy()
        apply_steps(tree, self.steps)
        return tree

    def concurrent_schedule(self) -> tuple[tuple[MigrationRegion, ...], ...]:
        """Group the regions into dependency waves for parallel draining.

        Wave ``k`` holds every region whose providers (transitively) sit
        in waves ``< k`` — the longest dependency chain ending at the
        region.  Regions of one wave touch disjoint node sets and may
        drain / reconfigure / resume simultaneously; waves run in
        order.  Applying the waves (regions within a wave in any order)
        reproduces :meth:`apply` exactly.  The plan's serial region
        order is a linear extension of this schedule, so a noop plan
        yields ``()`` and a restart plan one single-region wave.
        """
        if not self.regions:
            return ()
        level: dict[NodeId, int] = {}
        for region in self.regions:  # already topologically ordered
            deps = [level[root] + 1 for root in region.depends_on]
            level[region.root] = max(deps, default=0)
        waves: list[list[MigrationRegion]] = [
            [] for _ in range(max(level.values()) + 1)
        ]
        for region in self.regions:
            waves[level[region.root]].append(region)
        return tuple(tuple(wave) for wave in waves)

    def describe(self) -> str:
        if self.is_noop:
            return "MigrationPlan[noop]"
        regions = ", ".join(
            f"{region.root}:{region.touched} steps"
            f"/{len(region.drained)} drained"
            for region in self.regions
        )
        return (
            f"MigrationPlan[{self.kind}] {self.source_nodes}->"
            f"{self.target_nodes} nodes, {len(self.regions)} region(s) "
            f"({regions})"
        )


def apply_steps(tree: Hierarchy, steps) -> Hierarchy:
    """Replay migration steps on ``tree`` in place (and return it).

    The single structural interpreter behind :meth:`MigrationPlan.apply`
    and the schedule-equivalence tests: non-structural brackets are
    skipped, attaches on an empty tree seed the root.
    """
    for step in steps:
        if not step.is_structural:
            continue
        if step.op == "attach":
            if tree.is_empty and step.parent is None:
                tree.set_root(step.node, step.power)
            elif step.role is Role.AGENT:
                tree.add_agent(step.node, step.power, step.parent)
            else:
                tree.add_server(step.node, step.power, step.parent)
        elif step.op == "move":
            tree.reattach(step.node, step.parent)
        elif step.op == "detach":
            tree.remove_leaf(step.node)
        elif step.op == "promote":
            tree.promote(step.node)
        elif step.op == "demote":
            tree.demote(step.node)
    return tree


def hierarchies_equal(a: Hierarchy, b: Hierarchy) -> bool:
    """Structural identity: same nodes, parents, roles and powers."""
    nodes_a, nodes_b = set(a), set(b)
    if nodes_a != nodes_b:
        return False
    for node in nodes_a:
        if (
            a.parent(node) != b.parent(node)
            or a.role(node) is not b.role(node)
            or a.power(node) != b.power(node)
        ):
            return False
    return True


# ---------------------------------------------------------------------- #
# plan construction


def _restart_plan(old: Hierarchy | None, new: Hierarchy) -> MigrationPlan:
    """Stop-the-world fallback: drain all, rebuild the target from scratch."""
    steps: list[MigrationStep] = []
    old_nodes: tuple[NodeId, ...] = ()
    if old is not None and not old.is_empty:
        old_nodes = tuple(old)
        steps.append(MigrationStep("drain", "*", subtree=old_nodes))
        for node in sorted(old, key=lambda n: (-old.depth(n), str(n))):
            steps.append(MigrationStep("detach", node))
    new_nodes = list(new)
    steps.append(
        MigrationStep(
            "attach", new_nodes[0], parent=None, role=Role.AGENT,
            power=new.power(new_nodes[0]),
        )
    )
    for node in new_nodes[1:]:
        steps.append(
            MigrationStep(
                "attach", node, parent=new.parent(node),
                role=new.role(node), power=new.power(node),
            )
        )
    steps.append(MigrationStep("resume", "*", subtree=tuple(new_nodes)))
    region = MigrationRegion(root="*", drained=old_nodes, steps=tuple(steps))
    return MigrationPlan(
        kind="restart" if old is not None else "cold",
        regions=(region,),
        source_nodes=len(old) if old is not None else 0,
        target_nodes=len(new),
    )


def _order_moves(
    scratch: Hierarchy,
    moves: list[NodeId],
    new: Hierarchy,
    root: NodeId,
) -> list[MigrationStep] | None:
    """Emit the region's move steps in an order `reattach` accepts.

    Greedy by new-tree depth; a move whose target still sits inside the
    moving subtree is deferred, and a full pass of deferrals parks the
    first blocked node at the root (a legal move from anywhere) to break
    the cycle.  Applies each move to ``scratch`` so legality checks see
    the evolving tree.  Returns ``None`` if the set cannot be ordered.
    """
    pending = sorted(moves, key=lambda n: (new.depth(n), str(n)))
    steps: list[MigrationStep] = []
    budget = 2 * len(pending) + 2
    while pending and budget > 0:
        budget -= 1
        progressed = False
        still: list[NodeId] = []
        for node in pending:
            target = new.parent(node)
            if (
                target in scratch
                and scratch.role(target) is Role.AGENT
                and target not in scratch.subtree(node)
            ):
                scratch.reattach(node, target)
                steps.append(MigrationStep("move", node, parent=target))
                progressed = True
            else:
                still.append(node)
        pending = still
        if pending and not progressed:
            # Cyclic swap: evacuate the shallowest blocked node to the
            # root, which is never inside any proper subtree.
            node = pending[0]
            scratch.reattach(node, root)
            steps.append(MigrationStep("move", node, parent=root))
    return steps if not pending else None


def _incremental_plan(
    old: Hierarchy, new: Hierarchy
) -> MigrationPlan | None:
    """Build the subtree-granular plan, or None if the diff defeats it."""
    old_nodes, new_nodes = set(old), set(new)
    if old.root != new.root:
        return None
    common = old_nodes & new_nodes
    if any(old.power(node) != new.power(node) for node in common):
        # Same name, different rating: not a migration, a replacement.
        return None
    removed = old_nodes - new_nodes
    added = new_nodes - old_nodes
    moved = {
        node for node in common if old.parent(node) != new.parent(node)
    }
    promoted = {
        node
        for node in common
        if old.role(node) is Role.SERVER and new.role(node) is Role.AGENT
    }
    demoted = {
        node
        for node in common
        if old.role(node) is Role.AGENT and new.role(node) is Role.SERVER
    }
    touched = removed | moved | promoted | demoted
    if not touched and not added:
        return MigrationPlan(
            kind="incremental", regions=(),
            source_nodes=len(old), target_nodes=len(new),
        )

    # Drain regions: maximal touched subtrees of the old tree.
    old_index = {node: i for i, node in enumerate(old)}

    def region_root_of(node: NodeId) -> NodeId:
        anchor = node
        current: NodeId | None = node
        while current is not None:
            if current in touched:
                anchor = current
            current = old.parent(current)
        return anchor

    region_roots = sorted(
        {region_root_of(node) for node in touched},
        key=lambda n: old_index[n],
    )
    drained_by_root = {
        root: tuple(old.subtree(root)) for root in region_roots
    }
    region_of: dict[NodeId, NodeId] = {}
    for root, members in drained_by_root.items():
        for member in members:
            region_of[member] = root

    # Added nodes join the region of their new parent; chains of added
    # nodes resolve in new-tree BFS order.  A parent outside every
    # drained subtree means the attach disturbs nothing: it goes to the
    # drain-free growth region ("+").
    attach_order = [node for node in new if node in added]
    for node in attach_order:
        parent = new.parent(node)
        region_of[node] = region_of.get(parent, "+")

    grouped: dict[NodeId, dict[str, list[MigrationStep]]] = {
        root: {op: [] for op in _STRUCTURAL_OPS}
        for root in ["+", *region_roots]
    }
    for node in sorted(promoted, key=str):
        grouped[region_of[node]]["promote"].append(
            MigrationStep("promote", node)
        )
    for node in attach_order:
        grouped[region_of[node]]["attach"].append(
            MigrationStep(
                "attach", node, parent=new.parent(node),
                role=new.role(node), power=new.power(node),
            )
        )
    for node in sorted(
        removed, key=lambda n: (-old.depth(n), str(n))
    ):
        grouped[region_of[node]]["detach"].append(
            MigrationStep("detach", node)
        )
    for node in sorted(demoted, key=str):
        grouped[region_of[node]]["demote"].append(
            MigrationStep("demote", node)
        )
    moves_by_region: dict[NodeId, list[NodeId]] = {}
    for node in moved:
        moves_by_region.setdefault(region_of[node], []).append(node)

    # Region order: growth first (capacity before disruption), then a
    # topological order over "a step here needs a node another region
    # attaches or promotes first", ties broken by old-tree position.
    # The growth region's attaches count as providers too: a drained
    # region may move a subtree under a freshly grown agent, and a
    # schedule that relaxes the serial order needs that edge explicit.
    providers: dict[NodeId, NodeId] = {}
    for step in grouped["+"]["attach"]:
        providers[step.node] = "+"
    for root in region_roots:
        for step in grouped[root]["attach"]:
            providers[step.node] = root
        for step in grouped[root]["promote"]:
            providers[step.node] = root
    deps: dict[NodeId, set[NodeId]] = {root: set() for root in region_roots}
    for root in region_roots:
        needed: list[NodeId] = []
        for node in moves_by_region.get(root, ()):  # move targets
            needed.append(new.parent(node))
        for step in grouped[root]["attach"]:  # attach targets
            needed.append(step.parent)
        for target in needed:
            provider = providers.get(target)
            if provider is not None and provider != root:
                deps[root].add(provider)
    depends_on = {
        root: tuple(
            sorted(deps[root], key=lambda n: -1 if n == "+" else old_index[n])
        )
        for root in region_roots
    }
    ordered_roots: list[NodeId] = []
    # The growth region always runs first, so its edges are
    # pre-satisfied for the serial ordering below.
    remaining = {root: deps[root] - {"+"} for root in region_roots}
    while remaining:
        ready = sorted(
            (r for r, d in remaining.items() if not d),
            key=lambda n: old_index[n],
        )
        if not ready:
            return None  # cyclic cross-region dependency
        for root in ready:
            ordered_roots.append(root)
            del remaining[root]
        for d in remaining.values():
            d.difference_update(ready)

    # Assemble, applying each region to a scratch tree both to order the
    # moves and to verify the recipe is executable as emitted.
    scratch = old.copy()
    regions: list[MigrationRegion] = []
    growth = grouped["+"]["attach"]
    if growth:
        regions.append(
            MigrationRegion(root="+", drained=(), steps=tuple(growth))
        )
        for step in growth:
            if step.role is Role.AGENT:
                scratch.add_agent(step.node, step.power, step.parent)
            else:
                scratch.add_server(step.node, step.power, step.parent)
    try:
        for root in ordered_roots:
            ops = grouped[root]
            steps: list[MigrationStep] = [
                MigrationStep("drain", root, subtree=drained_by_root[root])
            ]
            steps.extend(ops["promote"])
            for step in ops["promote"]:
                scratch.promote(step.node)
            steps.extend(ops["attach"])
            for step in ops["attach"]:
                if step.role is Role.AGENT:
                    scratch.add_agent(step.node, step.power, step.parent)
                else:
                    scratch.add_server(step.node, step.power, step.parent)
            move_steps = _order_moves(
                scratch, moves_by_region.get(root, []), new, new.root
            )
            if move_steps is None:
                return None
            steps.extend(move_steps)
            steps.extend(ops["detach"])
            for step in ops["detach"]:
                scratch.remove_leaf(step.node)
            steps.extend(ops["demote"])
            for step in ops["demote"]:
                scratch.demote(step.node)
            survivors = tuple(
                node for node in drained_by_root[root] if node in new
            )
            anchor = root if root in new else survivors[0] if survivors else root
            steps.append(
                MigrationStep("resume", anchor, subtree=survivors)
            )
            regions.append(
                MigrationRegion(
                    root=root, drained=drained_by_root[root],
                    steps=tuple(steps), depends_on=depends_on[root],
                )
            )
    except Exception:
        return None
    if not hierarchies_equal(scratch, new):
        return None
    return MigrationPlan(
        kind="incremental",
        regions=tuple(regions),
        source_nodes=len(old),
        target_nodes=len(new),
    )


def plan_migration(old: Hierarchy | None, new: Hierarchy) -> MigrationPlan:
    """Diff ``old`` → ``new`` into a verified :class:`MigrationPlan`.

    Parameters
    ----------
    old:
        The running deployment, or ``None`` for a cold start.
    new:
        The target deployment (strictly valid).

    The incremental recipe is attempted first and verified by replaying
    it (:meth:`MigrationPlan.apply` equivalence); any diff it cannot
    realize — changed root, changed node power, unorderable moves —
    degrades to the stop-the-world ``restart`` plan, which is always
    correct.
    """
    new.validate(strict=True)
    if old is None or old.is_empty:
        return _restart_plan(None, new)
    plan = _incremental_plan(old, new)
    if plan is not None:
        return plan
    return _restart_plan(old, new)
