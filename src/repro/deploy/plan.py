"""The serializable deployment plan.

A :class:`DeploymentPlan` bundles everything a launcher needs: the
hierarchy (structure + node powers), the model parameters it was planned
under, the application work, and provenance metadata (planner method,
predicted throughput).  It is what ``write_xml`` serializes and what
GoDIET consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.hierarchy import Hierarchy
from repro.core.params import ModelParams
from repro.core.throughput import hierarchy_throughput
from repro.errors import DeploymentError

__all__ = ["DeploymentPlan"]


@dataclass(frozen=True)
class DeploymentPlan:
    """A planned deployment ready for launching or serialization.

    Attributes
    ----------
    hierarchy:
        The deployment tree (validated strictly on construction).
    params:
        Model parameters the plan was computed with.
    app_work:
        ``Wapp`` per request in MFlop.
    method:
        Planner that produced the plan (provenance).
    metadata:
        Free-form annotations (workload name, pool description, ...).
    """

    hierarchy: Hierarchy
    params: ModelParams
    app_work: float
    method: str = "unknown"
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.app_work <= 0.0:
            raise DeploymentError(
                f"app_work must be > 0, got {self.app_work}"
            )
        self.hierarchy.validate(strict=True)

    @property
    def predicted_throughput(self) -> float:
        """Model-predicted completed-request throughput (Eq. 16)."""
        return hierarchy_throughput(
            self.hierarchy, self.params, self.app_work
        ).throughput

    @property
    def nodes_used(self) -> int:
        return len(self.hierarchy)

    def describe(self) -> str:
        n, a, s, h = self.hierarchy.shape_signature()
        return (
            f"DeploymentPlan[{self.method}]: {n} nodes "
            f"({a} agents, {s} servers, height {h}), "
            f"Wapp={self.app_work:g} MFlop, "
            f"predicted rho={self.predicted_throughput:.2f} req/s"
        )
