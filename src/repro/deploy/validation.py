"""Pre-launch plan validation.

GoDIET refuses to launch inconsistent deployment files; :func:`check_plan`
is the simulated counterpart.  It returns a list of
:class:`ValidationIssue` (empty when the plan is launchable) rather than
raising on the first problem, so tooling can display a complete report.

Checks performed:

* structural validity of the hierarchy (tree shape, roles, child counts);
* every deployed node exists in the resource pool (when a pool is given)
  with a matching power rating;
* no node is deployed twice;
* model parameters and application work are usable;
* warnings for shapes the model predicts to be wasteful (an agent whose
  scheduling rate is far below the plan's service power).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.hierarchy import Hierarchy
from repro.core.throughput import (
    agent_sched_throughput,
    hierarchy_throughput,
)
from repro.deploy.plan import DeploymentPlan
from repro.errors import HierarchyError
from repro.platforms.pool import NodePool

__all__ = ["ValidationIssue", "check_plan"]

#: Relative tolerance when comparing plan powers against pool ratings.
_POWER_TOL = 1e-9


@dataclass(frozen=True)
class ValidationIssue:
    """One problem found in a deployment plan.

    Attributes
    ----------
    severity:
        ``"error"`` (plan cannot launch) or ``"warning"`` (launchable but
        suspicious).
    code:
        Stable machine-readable identifier.
    message:
        Human-readable description.
    node:
        The node concerned, when applicable.
    """

    severity: str
    code: str
    message: str
    node: str | None = None

    @property
    def is_error(self) -> bool:
        return self.severity == "error"


def check_plan(
    plan: DeploymentPlan,
    pool: NodePool | None = None,
) -> list[ValidationIssue]:
    """Validate ``plan``; optionally cross-check against a resource pool."""
    issues: list[ValidationIssue] = []
    hierarchy = plan.hierarchy

    try:
        hierarchy.validate(strict=True)
    except HierarchyError as exc:
        issues.append(
            ValidationIssue("error", "structure", str(exc))
        )
        return issues  # structural breakage makes further checks unreliable

    if pool is not None:
        issues.extend(_check_against_pool(hierarchy, pool))

    issues.extend(_check_performance(plan))
    return issues


def _check_against_pool(
    hierarchy: Hierarchy, pool: NodePool
) -> list[ValidationIssue]:
    issues: list[ValidationIssue] = []
    for node in hierarchy:
        name = str(node)
        if name not in pool:
            issues.append(
                ValidationIssue(
                    "error",
                    "unknown-node",
                    f"node {name!r} is not in the resource pool",
                    node=name,
                )
            )
            continue
        rated = pool[name].power
        planned = hierarchy.power(node)
        if abs(rated - planned) > _POWER_TOL * max(rated, planned):
            issues.append(
                ValidationIssue(
                    "error",
                    "power-mismatch",
                    f"node {name!r}: plan says {planned:g} MFlop/s but the "
                    f"pool rates it at {rated:g} MFlop/s",
                    node=name,
                )
            )
    return issues


def _check_performance(plan: DeploymentPlan) -> list[ValidationIssue]:
    """Model-level sanity warnings (the plan launches, but poorly)."""
    issues: list[ValidationIssue] = []
    hierarchy = plan.hierarchy
    report = hierarchy_throughput(hierarchy, plan.params, plan.app_work)
    for agent in hierarchy.agents:
        rate = agent_sched_throughput(
            plan.params, hierarchy.power(agent), max(1, hierarchy.degree(agent))
        )
        if rate < 0.5 * report.service:
            issues.append(
                ValidationIssue(
                    "warning",
                    "agent-bottleneck",
                    f"agent {agent!r} schedules at {rate:.1f} req/s, under "
                    f"half the plan's service power "
                    f"({report.service:.1f} req/s); it will throttle the "
                    "platform",
                    node=str(agent),
                )
            )
    if report.is_scheduling_bound and len(hierarchy.servers) > 1:
        slack = report.service / report.throughput
        if slack > 2.0:
            issues.append(
                ValidationIssue(
                    "warning",
                    "overprovisioned-servers",
                    f"service power is {slack:.1f}x the deliverable "
                    "throughput; the server tier is over-provisioned for "
                    "this hierarchy",
                )
            )
    return issues
