"""GoDIET-style XML serialization of deployment plans.

Algorithm 1's final step (``write_xml``) emits "an XML file ... given as
an input to deployment tool to deploy the hierarchical platform".  The
format here follows GoDIET's nested structure: a ``<resources>`` section
listing nodes and the link bandwidth, and a ``<hierarchy>`` section whose
nesting mirrors the tree::

    <diet_deployment method="heuristic" app_work="59.582">
      <model wreq="0.17" wfix="0.004" wsel="0.0054" wpre="0.0064"
             bandwidth="1000">
        <sizes level="agent" sreq="0.0053" srep="0.0054"/>
        <sizes level="server" sreq="5.3e-05" srep="6.4e-05"/>
        <sizes level="service" sreq="5.3e-05" srep="6.4e-05"/>
      </model>
      <resources>
        <node name="orsay-000" power="265.0"/>
        ...
      </resources>
      <hierarchy>
        <agent name="orsay-000">
          <server name="orsay-003"/>
          <agent name="orsay-001">
            <server name="orsay-004"/>
            <server name="orsay-005"/>
          </agent>
        </agent>
      </hierarchy>
    </diet_deployment>
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from xml.dom import minidom

from repro.core.hierarchy import Hierarchy, Role
from repro.core.params import LevelSizes, ModelParams
from repro.deploy.plan import DeploymentPlan
from repro.errors import DeploymentError

__all__ = [
    "hierarchy_to_xml",
    "hierarchy_from_xml",
    "plan_to_xml",
    "plan_from_xml",
]


def _hierarchy_element(hierarchy: Hierarchy) -> ET.Element:
    root_el = ET.Element("hierarchy")

    def emit(node, parent_el: ET.Element) -> None:
        tag = "agent" if hierarchy.role(node) is Role.AGENT else "server"
        el = ET.SubElement(parent_el, tag, name=str(node))
        for child in hierarchy.children(node):
            emit(child, el)

    emit(hierarchy.root, root_el)
    return root_el


def _resources_element(hierarchy: Hierarchy) -> ET.Element:
    resources = ET.Element("resources")
    for node in hierarchy:
        ET.SubElement(
            resources,
            "node",
            name=str(node),
            power=repr(hierarchy.power(node)),
        )
    return resources


def _model_element(params: ModelParams) -> ET.Element:
    model = ET.Element(
        "model",
        wreq=repr(params.wreq),
        wfix=repr(params.wfix),
        wsel=repr(params.wsel),
        wpre=repr(params.wpre),
        bandwidth=repr(params.bandwidth),
    )
    for level, sizes in (
        ("agent", params.agent_sizes),
        ("server", params.server_sizes),
        ("service", params.service_sizes),
    ):
        ET.SubElement(
            model, "sizes", level=level, sreq=repr(sizes.sreq), srep=repr(sizes.srep)
        )
    return model


def _pretty(element: ET.Element) -> str:
    raw = ET.tostring(element, encoding="unicode")
    return minidom.parseString(raw).toprettyxml(indent="  ")


def hierarchy_to_xml(hierarchy: Hierarchy) -> str:
    """Serialize a hierarchy (structure + powers) to an XML string."""
    root = ET.Element("diet_deployment")
    root.append(_resources_element(hierarchy))
    root.append(_hierarchy_element(hierarchy))
    return _pretty(root)


def plan_to_xml(plan: DeploymentPlan) -> str:
    """Serialize a full deployment plan (paper procedure ``write_xml``)."""
    root = ET.Element(
        "diet_deployment",
        method=plan.method,
        app_work=repr(plan.app_work),
    )
    for key, value in sorted(plan.metadata.items()):
        root.set(f"meta_{key}", str(value))
    root.append(_model_element(plan.params))
    root.append(_resources_element(plan.hierarchy))
    root.append(_hierarchy_element(plan.hierarchy))
    return _pretty(root)


def _parse_hierarchy(root_el: ET.Element, powers: dict[str, float]) -> Hierarchy:
    hierarchy_el = root_el.find("hierarchy")
    if hierarchy_el is None:
        raise DeploymentError("XML is missing a <hierarchy> section")
    tops = list(hierarchy_el)
    if len(tops) != 1 or tops[0].tag != "agent":
        raise DeploymentError("<hierarchy> must contain exactly one root <agent>")

    hierarchy = Hierarchy()

    def power_of(name: str) -> float:
        if name not in powers:
            raise DeploymentError(f"node {name!r} missing from <resources>")
        return powers[name]

    def build(el: ET.Element, parent: str | None) -> None:
        name = el.get("name")
        if not name:
            raise DeploymentError(f"<{el.tag}> element without a name")
        if el.tag == "agent":
            if parent is None:
                hierarchy.set_root(name, power_of(name))
            else:
                hierarchy.add_agent(name, power_of(name), parent)
            for child in el:
                if child.tag not in ("agent", "server"):
                    raise DeploymentError(
                        f"unexpected element <{child.tag}> under <agent>"
                    )
                build(child, name)
        else:
            if parent is None:
                raise DeploymentError("a <server> cannot be the hierarchy root")
            if len(el) != 0:
                raise DeploymentError(f"server {name!r} must be a leaf")
            hierarchy.add_server(name, power_of(name), parent)

    build(tops[0], None)
    return hierarchy


def _parse_resources(root_el: ET.Element) -> dict[str, float]:
    resources_el = root_el.find("resources")
    if resources_el is None:
        raise DeploymentError("XML is missing a <resources> section")
    powers: dict[str, float] = {}
    for node_el in resources_el.findall("node"):
        name = node_el.get("name")
        power = node_el.get("power")
        if name is None or power is None:
            raise DeploymentError("<node> needs both name and power")
        powers[name] = float(power)
    return powers


def _parse_model(root_el: ET.Element) -> ModelParams:
    model_el = root_el.find("model")
    if model_el is None:
        return ModelParams()
    sizes: dict[str, LevelSizes] = {}
    for sizes_el in model_el.findall("sizes"):
        level = sizes_el.get("level")
        sizes[level or ""] = LevelSizes(
            sreq=float(sizes_el.get("sreq", "0")),
            srep=float(sizes_el.get("srep", "0")),
        )
    return ModelParams(
        wreq=float(model_el.get("wreq", "0")),
        wfix=float(model_el.get("wfix", "0")),
        wsel=float(model_el.get("wsel", "0")),
        wpre=float(model_el.get("wpre", "0")),
        bandwidth=float(model_el.get("bandwidth", "1000")),
        agent_sizes=sizes.get("agent", ModelParams().agent_sizes),
        server_sizes=sizes.get("server", ModelParams().server_sizes),
        service_sizes=sizes.get("service"),
    )


def hierarchy_from_xml(text: str) -> Hierarchy:
    """Parse a hierarchy from the XML produced by :func:`hierarchy_to_xml`."""
    try:
        root_el = ET.fromstring(text)
    except ET.ParseError as exc:
        raise DeploymentError(f"malformed deployment XML: {exc}") from exc
    return _parse_hierarchy(root_el, _parse_resources(root_el))


def plan_from_xml(text: str) -> DeploymentPlan:
    """Parse a full deployment plan from :func:`plan_to_xml` output."""
    try:
        root_el = ET.fromstring(text)
    except ET.ParseError as exc:
        raise DeploymentError(f"malformed deployment XML: {exc}") from exc
    powers = _parse_resources(root_el)
    hierarchy = _parse_hierarchy(root_el, powers)
    params = _parse_model(root_el)
    app_work_attr = root_el.get("app_work")
    if app_work_attr is None:
        raise DeploymentError("plan XML is missing the app_work attribute")
    metadata = {
        key[len("meta_"):]: value
        for key, value in root_el.attrib.items()
        if key.startswith("meta_")
    }
    return DeploymentPlan(
        hierarchy=hierarchy,
        params=params,
        app_work=float(app_work_attr),
        method=root_el.get("method", "unknown"),
        metadata=metadata,
    )
