"""Exception hierarchy for the :mod:`repro` library.

Every error raised by the library derives from :class:`ReproError`, so callers
can catch a single base class.  Sub-classes partition the failure domains:
model parameterization, hierarchy structure, planning, deployment and
simulation.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ParameterError",
    "HierarchyError",
    "PlanningError",
    "DeploymentError",
    "SimulationError",
    "CalibrationError",
    "ControlError",
    "FaultError",
    "ProtocolError",
]


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ParameterError(ReproError, ValueError):
    """A model parameter is missing, non-positive, or inconsistent."""


class HierarchyError(ReproError, ValueError):
    """A deployment hierarchy violates the paper's structural constraints.

    The constraints (Section 1 of the paper): exactly one root agent; every
    server is a leaf with an agent parent; every non-root agent has exactly
    one parent and at least two children; nodes are not shared between the
    agent and server roles.
    """


class PlanningError(ReproError, RuntimeError):
    """The planner could not produce a valid deployment (e.g. < 2 nodes)."""


class DeploymentError(ReproError, RuntimeError):
    """A deployment plan could not be instantiated on the platform."""


class SimulationError(ReproError, RuntimeError):
    """The discrete-event simulation reached an inconsistent state."""


class CalibrationError(ReproError, RuntimeError):
    """A calibration campaign failed to produce a usable parameter fit."""


class ControlError(ReproError, RuntimeError):
    """The online control plane was misconfigured or reached a bad state.

    Raised for invalid workload traces, unknown control policies, and
    controller configurations that cannot run (e.g. a non-positive epoch).
    """


class FaultError(ControlError):
    """A fault schedule is malformed or cannot be injected.

    Subclasses :class:`ControlError` because fault schedules are control
    plane inputs, exactly like workload traces: callers that already
    handle trace misconfiguration handle fault misconfiguration too.
    """


class ProtocolError(ControlError):
    """A master/executor command exchange is malformed or inconsistent.

    Raised when a wire-form :class:`~repro.control.protocol
    .MigrationCommand` or :class:`~repro.control.protocol.RegionReport`
    fails validation (unknown version, missing fields), when an
    executor's acked digest disagrees with the master's replay, or when
    a :class:`~repro.control.registry.DeploymentRegistry` snapshot
    cannot be restored.  Subclasses :class:`ControlError`: the command
    protocol is the control plane's act stage.
    """
