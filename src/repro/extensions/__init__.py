"""Extensions beyond the paper.

The paper closes with two planned directions: handling **heterogeneous
communication** ("we plan to deal with heterogeneous communication in
future works") and packaging the planner as a tool (ADePT).  This package
implements the first:

* :mod:`repro.extensions.hetcomm` — per-node access-link bandwidths, the
  generalized throughput model, and a deployment planner for platforms
  whose links differ (e.g. a federation of clusters behind different
  uplinks).

It also implements the *iterative improvement* workflow of the authors'
prior work ([6], [7] in the paper's bibliography):

* :mod:`repro.extensions.redeploy` — analyze an existing deployment,
  identify its bottleneck with the throughput model, and remove it by
  adding/moving resources, iterating to a fixed point.

And the multi-application future-work item ("deploy several middlewares
and/or applications on grid"):

* :mod:`repro.extensions.multiapp` — one shared agent hierarchy hosting
  several applications with per-application demands and dedicated server
  tiers.

The windowed agent-selection policy — the other extension this
reproduction adds — lives directly in :mod:`repro.core.heuristic`
(``agent_selection="windowed"``) since it shares all of Algorithm 1's
machinery.

Every extension planner also registers itself with the planner registry
(:mod:`repro.core.registry`) when this package is imported, so
``hetcomm``, ``multiapp`` and ``redeploy`` are reachable by name through
:class:`repro.api.PlanningSession` and ``repro-deploy plan --method``
alongside the paper's planners.
"""

from repro.extensions.hetcomm import (
    HetCommOptions,
    HetCommPlatform,
    HetCommPlanner,
    het_agent_sched_throughput,
    het_server_sched_throughput,
    het_service_throughput,
)
from repro.extensions.multiapp import (
    Application,
    MultiAppOptions,
    MultiAppPlan,
    MultiAppPlanner,
)
from repro.extensions.redeploy import (
    ImprovementAction,
    ImprovementResult,
    RedeployOptions,
    improve_deployment,
)

__all__ = [
    "HetCommOptions",
    "HetCommPlatform",
    "HetCommPlanner",
    "het_agent_sched_throughput",
    "het_server_sched_throughput",
    "het_service_throughput",
    "ImprovementAction",
    "ImprovementResult",
    "RedeployOptions",
    "improve_deployment",
    "Application",
    "MultiAppOptions",
    "MultiAppPlan",
    "MultiAppPlanner",
]
