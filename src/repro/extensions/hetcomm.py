"""Heterogeneous communication — the paper's stated future work.

The paper's model assumes homogeneous links ("in case of cluster it is
not so far from the reality but the results will be different when we
consider communications between clusters.  We plan to deal with
heterogeneous communication in future works").  This module supplies that
generalization under the same single-port M(r,s,w) discipline:

**Model.**  Each node ``i`` owns an access link of bandwidth ``b_i``; a
message of size ``S`` costs ``S / b_i`` seconds *on node i's resource*
(each endpoint pays its own access time — the natural extension of the
paper's accounting, which already bills both endpoints separately).

* Agent ``i`` with degree ``d``:
  ``rate_i = 1 / ((Wreq + Wrep(d))/w_i + (Sreq + d*Srep)/b_i
  + (d*Sreq + Srep)/b_i)`` — Eq. 14's agent term with ``B -> b_i``.
* Server ``i``: per-request scheduling cost
  ``a_i = Wpre/w_i + (Sreq_s + Srep_s)/b_i`` and per-served cost
  ``s_i = Wapp_i/w_i + (Sreq_svc + Srep_svc)/b_i``.
* Steady state (generalizing Eqs. 6–10): server ``i`` is busy
  ``N*a_i + N_i*s_i = T`` per window; ``sum N_i = N`` gives

  ``T/N = (1 + sum_i a_i/s_i) / (sum_i 1/s_i)``

  and the hierarchy's service throughput is ``N/T``.  With all ``b_i``
  equal this reduces to Eq. 15 (the homogeneous comm term moves inside
  the per-server costs, which is where the single-port model says it
  belongs; for the tiny Table 3 message sizes the difference is ≪ 1%).

**Planner.**  :class:`HetCommPlanner` ports the fixed-point strategy of
:class:`~repro.core.heuristic.HeuristicPlanner`: rank nodes by their
degree-(n-1) agent rate, binary-search the scheduling target ``t`` per
agent count, fill capacity, repair, validate.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from collections.abc import Mapping, Sequence

from repro.core.hierarchy import Hierarchy
from repro.core.params import ModelParams
from repro.errors import ParameterError, PlanningError
from repro.platforms.node import Node
from repro.platforms.pool import NodePool

__all__ = [
    "HetCommPlatform",
    "HetCommPlanner",
    "HetCommPlan",
    "HetCommOptions",
    "het_agent_sched_throughput",
    "het_server_sched_throughput",
    "het_service_throughput",
    "het_hierarchy_throughput",
]

_REL_TOL = 1e-9


def het_agent_sched_throughput(
    params: ModelParams, power: float, bandwidth: float, degree: int
) -> float:
    """Agent scheduling rate with a per-node access link (req/s)."""
    if power <= 0.0 or bandwidth <= 0.0:
        raise ParameterError(
            f"power and bandwidth must be > 0, got ({power}, {bandwidth})"
        )
    if degree < 1:
        raise ParameterError(f"an agent needs >= 1 child, got {degree}")
    sizes = params.agent_sizes
    compute = (params.wreq + params.wrep(degree)) / power
    comm = (
        (sizes.sreq + degree * sizes.srep) / bandwidth
        + (degree * sizes.sreq + sizes.srep) / bandwidth
    )
    return 1.0 / (compute + comm)


def _server_costs(
    params: ModelParams,
    power: float,
    bandwidth: float,
    app_work: float,
) -> tuple[float, float]:
    """(a_i, s_i): per-request scheduling cost, per-served service cost."""
    a = params.wpre / power + params.server_sizes.round_trip / bandwidth
    s = app_work / power + params.service_sizes.round_trip / bandwidth
    return a, s


def het_server_sched_throughput(
    params: ModelParams, power: float, bandwidth: float
) -> float:
    """Server prediction rate with a per-node access link (req/s)."""
    if power <= 0.0 or bandwidth <= 0.0:
        raise ParameterError(
            f"power and bandwidth must be > 0, got ({power}, {bandwidth})"
        )
    a, _ = _server_costs(params, power, bandwidth, 1.0)
    return 1.0 / a


def het_service_throughput(
    params: ModelParams,
    powers: Sequence[float],
    bandwidths: Sequence[float],
    app_works: Sequence[float],
) -> float:
    """Service throughput of a server set with per-node links (req/s)."""
    if not powers or len(powers) != len(bandwidths) != len(app_works):
        if len(powers) != len(bandwidths) or len(powers) != len(app_works):
            raise ParameterError(
                "powers, bandwidths and app_works must align and be non-empty"
            )
    if not powers:
        raise ParameterError("server set must not be empty")
    sched_load = 0.0
    serve_rate = 0.0
    for power, bandwidth, wapp in zip(powers, bandwidths, app_works):
        if power <= 0.0 or bandwidth <= 0.0 or wapp <= 0.0:
            raise ParameterError(
                f"all server parameters must be > 0, got "
                f"({power}, {bandwidth}, {wapp})"
            )
        a, s = _server_costs(params, power, bandwidth, wapp)
        sched_load += a / s
        serve_rate += 1.0 / s
    return serve_rate / (1.0 + sched_load)


@dataclass(frozen=True)
class HetCommPlatform:
    """A node pool plus per-node access-link bandwidths (Mb/s)."""

    pool: NodePool
    bandwidths: Mapping[str, float]

    def __post_init__(self) -> None:
        missing = [n.name for n in self.pool if n.name not in self.bandwidths]
        if missing:
            raise ParameterError(f"bandwidth missing for nodes: {missing}")
        for name, bandwidth in self.bandwidths.items():
            if bandwidth <= 0.0:
                raise ParameterError(
                    f"bandwidth for {name!r} must be > 0, got {bandwidth}"
                )

    @classmethod
    def uniform(cls, pool: NodePool, bandwidth: float) -> "HetCommPlatform":
        """Degenerate case: every access link identical (paper's model)."""
        return cls(pool, {n.name: bandwidth for n in pool})

    @classmethod
    def clustered(
        cls,
        pool: NodePool,
        group_sizes: Sequence[int],
        group_bandwidths: Sequence[float],
    ) -> "HetCommPlatform":
        """Nodes grouped behind shared-class uplinks (a grid federation)."""
        if len(group_sizes) != len(group_bandwidths):
            raise ParameterError(
                f"{len(group_sizes)} sizes but {len(group_bandwidths)} bandwidths"
            )
        if sum(group_sizes) != len(pool):
            raise ParameterError(
                f"group sizes sum to {sum(group_sizes)} but pool has {len(pool)}"
            )
        bandwidths: dict[str, float] = {}
        index = 0
        for size, bandwidth in zip(group_sizes, group_bandwidths):
            for _ in range(size):
                bandwidths[pool[index].name] = bandwidth
                index += 1
        return cls(pool, bandwidths)

    def bandwidth_of(self, node: Node | str) -> float:
        name = node if isinstance(node, str) else node.name
        return self.bandwidths[name]


def het_hierarchy_throughput(
    hierarchy: Hierarchy,
    platform: HetCommPlatform,
    params: ModelParams,
    app_work: float,
) -> float:
    """Completed-request throughput of a deployment under the extended model."""
    from repro.core.hierarchy import Role

    hierarchy.validate(strict=False)
    rates = []
    server_powers: list[float] = []
    server_bandwidths: list[float] = []
    for node in hierarchy:
        name = str(node)
        bandwidth = platform.bandwidth_of(name)
        if hierarchy.role(node) is Role.AGENT:
            rates.append(
                het_agent_sched_throughput(
                    params, hierarchy.power(node), bandwidth,
                    hierarchy.degree(node),
                )
            )
        else:
            rates.append(
                het_server_sched_throughput(
                    params, hierarchy.power(node), bandwidth
                )
            )
            server_powers.append(hierarchy.power(node))
            server_bandwidths.append(bandwidth)
    if not server_powers:
        raise ParameterError("deployment has no servers; throughput undefined")
    service = het_service_throughput(
        params, server_powers, server_bandwidths,
        [app_work] * len(server_powers),
    )
    return min(min(rates), service)


@dataclass(frozen=True)
class HetCommPlan:
    """Result of a heterogeneous-communication planning run."""

    hierarchy: Hierarchy
    throughput: float

    @property
    def nodes_used(self) -> int:
        return len(self.hierarchy)


class HetCommPlanner:
    """Fixed-point deployment planner under per-node link bandwidths.

    The structure mirrors :class:`~repro.core.heuristic.HeuristicPlanner`'s
    default strategy; only the rate functions change.  Node ranking uses
    the agent rate at full fan-out, which now depends on *both* power and
    link speed — a fast node behind a slow uplink ranks low, exactly the
    effect the homogeneous model cannot see.
    """

    def __init__(self, params: ModelParams):
        self.params = params

    def plan(
        self,
        platform: HetCommPlatform,
        app_work: float,
        demand: float | None = None,
    ) -> HetCommPlan:
        if len(platform.pool) < 2:
            raise PlanningError(
                f"planning needs >= 2 nodes, pool has {len(platform.pool)}"
            )
        if app_work <= 0.0:
            raise PlanningError(f"app_work must be > 0, got {app_work}")
        params = self.params
        n = len(platform.pool)
        fanout = max(1, n - 1)
        ranked = sorted(
            platform.pool,
            key=lambda node: (
                het_agent_sched_throughput(
                    params, node.power, platform.bandwidth_of(node), fanout
                ),
                node.name,
            ),
            reverse=True,
        )

        best: tuple[float, int, int, float] | None = None
        cheapest: tuple[float, int, int, float] | None = None
        for n_agents in range(1, max(1, n // 2) + 1):
            solved = self._solve(platform, ranked, n_agents, app_work, demand)
            if solved is None:
                continue
            rho, n_servers, target = solved
            used = n_agents + n_servers
            entry = (rho, used, n_agents, target)
            if best is None or (rho, -used) > (best[0], -best[1]):
                best = entry
            if demand is not None and rho >= demand - _REL_TOL:
                if cheapest is None or used < cheapest[1]:
                    cheapest = entry
        if best is None:
            raise PlanningError("no feasible agent/server split found")
        rho, used, n_agents, target = cheapest if cheapest else best
        hierarchy = self._materialize(
            platform, ranked, n_agents, used - n_agents, target
        )
        hierarchy.validate(strict=True)
        return HetCommPlan(
            hierarchy=hierarchy,
            throughput=het_hierarchy_throughput(
                hierarchy, platform, params, app_work
            ),
        )

    # ------------------------------------------------------------------ #

    def _supported_children(
        self, node: Node, platform: HetCommPlatform, target: float
    ) -> int:
        params = self.params
        bandwidth = platform.bandwidth_of(node)
        sizes = params.agent_sizes
        fixed = (params.wreq + params.wfix) / node.power + sizes.round_trip / bandwidth
        per_child = params.wsel / node.power + sizes.round_trip / bandwidth
        budget = 1.0 / target - fixed
        if budget < per_child:
            return 0
        return int(math.floor(budget / per_child + _REL_TOL))

    def _solve(
        self,
        platform: HetCommPlatform,
        ranked: list[Node],
        n_agents: int,
        app_work: float,
        demand: float | None,
    ) -> tuple[float, int, float] | None:
        params = self.params
        agents = ranked[:n_agents]
        candidates = ranked[n_agents:]
        if not candidates:
            return None
        k_min = 1 if n_agents == 1 else n_agents
        k_cap = len(candidates)
        if k_cap < k_min:
            return None

        t_hi = het_agent_sched_throughput(
            params, agents[0].power, platform.bandwidth_of(agents[0]), 1
        )
        for agent in agents[1:]:
            t_hi = min(
                t_hi,
                het_agent_sched_throughput(
                    params, agent.power, platform.bandwidth_of(agent), 2
                ),
            )
        if demand is not None:
            t_hi = min(t_hi, demand)

        # Candidates ordered by serving capability (1/s_i descending).
        def serve_rate(node: Node) -> float:
            _, s = _server_costs(
                params, node.power, platform.bandwidth_of(node), app_work
            )
            return 1.0 / s

        ordered = sorted(candidates, key=lambda x: (serve_rate(x), x.name),
                         reverse=True)
        prefix_load = [0.0]
        prefix_rate = [0.0]
        prefix_floor = [float("inf")]
        for node in ordered:
            a, s = _server_costs(
                params, node.power, platform.bandwidth_of(node), app_work
            )
            prefix_load.append(prefix_load[-1] + a / s)
            prefix_rate.append(prefix_rate[-1] + 1.0 / s)
            prefix_floor.append(
                min(
                    prefix_floor[-1],
                    het_server_sched_throughput(
                        params, node.power, platform.bandwidth_of(node)
                    ),
                )
            )

        def slots(t: float) -> int:
            total = 0
            for agent in agents:
                total += min(
                    self._supported_children(agent, platform, t), len(ranked)
                )
                if total > len(ranked):
                    break
            return max(0, min(total - (n_agents - 1), k_cap))

        def achievable(t: float) -> float | None:
            k = slots(t)
            if k < k_min:
                return None
            service = prefix_rate[k] / (1.0 + prefix_load[k])
            return min(t, service, prefix_floor[k])

        def service_of(k: int) -> float:
            return prefix_rate[k] / (1.0 + prefix_load[k])

        def shrink(k: int, target: float) -> int:
            """Least-resources rule: smallest k meeting the target."""
            lo_k, hi_k = k_min, k
            if service_of(hi_k) < target:
                return hi_k
            while lo_k < hi_k:
                mid = (lo_k + hi_k) // 2
                if service_of(mid) >= target:
                    hi_k = mid
                else:
                    lo_k = mid + 1
            return lo_k

        value = achievable(t_hi)
        if value is not None and value >= t_hi - _REL_TOL:
            k = slots(t_hi)
            target = t_hi if demand is None else min(t_hi, demand)
            k = shrink(k, target)
            return min(t_hi, service_of(k), prefix_floor[k]), k, t_hi
        lo = t_hi
        for _ in range(200):
            lo /= 2.0
            value = achievable(lo)
            if value is not None and value >= lo - _REL_TOL:
                break
            if lo < 1e-12:
                return None
        hi = t_hi
        for _ in range(64):
            mid = 0.5 * (lo + hi)
            v = achievable(mid)
            if v is not None and v >= mid - _REL_TOL:
                lo = mid
            else:
                hi = mid
        k = slots(lo)
        if demand is not None and service_of(k) > demand:
            k = shrink(k, demand)
        return min(lo, service_of(k), prefix_floor[k]), k, lo

    def _materialize(
        self,
        platform: HetCommPlatform,
        ranked: list[Node],
        n_agents: int,
        n_servers: int,
        target: float,
    ) -> Hierarchy:
        params = self.params
        agents = ranked[:n_agents]
        candidates = ranked[n_agents:]

        def serve_rate(node: Node) -> float:
            _, s = _server_costs(
                params, node.power, platform.bandwidth_of(node), 1.0
            )
            return 1.0 / s

        servers = sorted(
            candidates, key=lambda x: (serve_rate(x), x.name), reverse=True
        )[:n_servers]
        capacity = {
            a.name: max(
                1 if i == 0 else 2,
                min(self._supported_children(a, platform, target), len(ranked)),
            )
            for i, a in enumerate(agents)
        }
        hierarchy = Hierarchy()
        hierarchy.set_root(agents[0].name, agents[0].power)
        free = {agents[0].name: capacity[agents[0].name]}
        placed = [agents[0]]
        for agent in agents[1:]:
            parent = next(a for a in placed if free[a.name] > 0)
            hierarchy.add_agent(agent.name, agent.power, parent.name)
            free[parent.name] -= 1
            free[agent.name] = capacity[agent.name]
            placed.append(agent)
        pending = list(servers)
        for agent in placed[1:]:
            while hierarchy.degree(agent.name) < 2 and pending:
                node = pending.pop(0)
                hierarchy.add_server(node.name, node.power, agent.name)
                free[agent.name] -= 1
        cursor = 0
        while pending:
            order = [a for a in placed if free[a.name] > 0] or [placed[0]]
            target_agent = order[cursor % len(order)]
            node = pending.pop(0)
            hierarchy.add_server(node.name, node.power, target_agent.name)
            free[target_agent.name] -= 1
            cursor += 1
        self._repair(hierarchy)
        return hierarchy

    @staticmethod
    def _repair(hierarchy: Hierarchy) -> None:
        changed = True
        while changed:
            changed = False
            for agent in hierarchy.agents:
                if agent == hierarchy.root:
                    continue
                kids = hierarchy.children(agent)
                if len(kids) < 2:
                    parent = hierarchy.parent(agent)
                    assert parent is not None
                    for kid in kids:
                        hierarchy.reattach(kid, parent)
                    hierarchy.demote(agent)
                    changed = True
                    break


# ---------------------------------------------------------------------- #
# registry integration


from repro.core.registry import (  # noqa: E402  (registration tail)
    CAP_AUTOMATIC,
    CAP_DEMAND,
    CAP_EXTENSION,
    PlannerOptions,
    build_deployment,
    register_planner,
)


@dataclass(frozen=True)
class HetCommOptions(PlannerOptions):
    """Options of the heterogeneous-communication planner.

    Exactly one platform description applies (checked eagerly):

    * ``bandwidths`` — explicit per-node access-link Mb/s;
    * ``group_sizes`` + ``group_bandwidths`` — clustered uplinks
      (a grid federation, :meth:`HetCommPlatform.clustered`);
    * ``bandwidth`` — one uniform link speed (the paper's degenerate
      case); also the fallback, using ``params.bandwidth``, when nothing
      is specified.
    """

    bandwidth: float | None = None
    bandwidths: Mapping[str, float] | None = None
    group_sizes: tuple[int, ...] | None = None
    group_bandwidths: tuple[float, ...] | None = None

    def __post_init__(self) -> None:
        grouped = self.group_sizes is not None or self.group_bandwidths is not None
        if grouped and (self.group_sizes is None or self.group_bandwidths is None):
            raise PlanningError(
                "hetcomm: group_sizes and group_bandwidths must be given together"
            )
        modes = sum(
            (self.bandwidth is not None, self.bandwidths is not None, grouped)
        )
        if modes > 1:
            raise PlanningError(
                "hetcomm: specify only one of bandwidth, bandwidths, or "
                "group_sizes/group_bandwidths"
            )
        if self.bandwidth is not None and self.bandwidth <= 0.0:
            raise PlanningError(
                f"hetcomm: bandwidth must be > 0, got {self.bandwidth}"
            )
        if self.bandwidths is not None and not isinstance(self.bandwidths, Mapping):
            raise PlanningError(
                "hetcomm: bandwidths must be a mapping of node name to Mb/s"
            )

    def build_platform(self, pool: NodePool, params: ModelParams) -> HetCommPlatform:
        """Materialize the platform this option set describes for ``pool``."""
        if self.bandwidths is not None:
            return HetCommPlatform(pool, dict(self.bandwidths))
        if self.group_sizes is not None:
            assert self.group_bandwidths is not None
            return HetCommPlatform.clustered(
                pool, self.group_sizes, self.group_bandwidths
            )
        uniform = self.bandwidth if self.bandwidth is not None else params.bandwidth
        return HetCommPlatform.uniform(pool, uniform)


@register_planner
class HetCommRegistryPlanner:
    """Deployment planning under per-node access-link bandwidths.

    The returned deployment's ``report`` is the paper's homogeneous-link
    Eq. 16 view (comparable across planners); the extended model's own
    throughput and the platform's link map ride in
    ``deployment.extras["het_throughput"]`` / ``extras["bandwidths"]``.
    """

    name = "hetcomm"
    capabilities = frozenset({CAP_AUTOMATIC, CAP_DEMAND, CAP_EXTENSION})
    options_type = HetCommOptions

    def plan(self, request):
        platform = request.options.build_platform(request.pool, request.params)
        planner = HetCommPlanner(request.params)
        result = planner.plan(
            platform, request.app_work, demand=request.demand
        )
        return build_deployment(
            request,
            self.name,
            result.hierarchy,
            extras={
                "het_throughput": result.throughput,
                "bandwidths": dict(platform.bandwidths),
            },
        )
