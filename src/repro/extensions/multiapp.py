"""Multi-application deployment — the paper's last future-work item.

    "Finally, we are interested to find a modelization to deploy several
    middlewares and/or applications on grid."

This module models one shared agent hierarchy scheduling **several
applications at once**.  Each application ``a`` has its own service work
``Wapp_a`` and client demand ``d_a`` (requests/s); servers are dedicated
to one application (the paper's no-sharing rule, §1), while agents carry
the *combined* request stream.

**Model.**  With per-application throughputs ``rho_a``:

* every agent of degree ``d`` must sustain the total rate
  ``sum_a rho_a`` (the scheduling phase is application-agnostic — every
  request traverses the whole hierarchy and every server predicts, as in
  the single-application model);
* application ``a``'s server set must deliver ``rho_a`` of service power
  under Eq. 15, where each of its servers additionally predicts for *all*
  applications' requests: the prediction load term scales with the total
  rate, so server ``i`` of application ``a`` satisfies
  ``rho_total * Wpre/w_i + rho_a_share_i * Wapp_a/w_i <= 1`` —
  aggregated exactly like Eqs. 6-10 with the prediction load multiplied
  by ``rho_total / rho_a``.

**Planner.**  Demands are fixed (capacity-planning use case): find the
cheapest deployment satisfying every application, or report the best
proportional scale-down if the pool cannot.  Greedy: allocate servers
application by application (most demanding first) from the fastest
remaining nodes, then size the shared agent tier at the total rate with
``supported_children`` capacity filling, reusing Algorithm 1's machinery.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.heuristic import supported_children
from repro.core.hierarchy import Hierarchy
from repro.core.params import ModelParams
from repro.core.throughput import (
    agent_sched_throughput,
    server_sched_throughput,
)
from repro.errors import ParameterError, PlanningError
from repro.platforms.node import Node
from repro.platforms.pool import NodePool

__all__ = [
    "Application",
    "MultiAppPlan",
    "MultiAppPlanner",
    "multiapp_service_ok",
]

_REL_TOL = 1e-9


@dataclass(frozen=True)
class Application:
    """One service to host: its work cost and its client demand."""

    name: str
    app_work: float
    demand: float

    def __post_init__(self) -> None:
        if not self.name:
            raise ParameterError("application needs a name")
        if self.app_work <= 0.0:
            raise ParameterError(
                f"{self.name}: app_work must be > 0, got {self.app_work}"
            )
        if self.demand <= 0.0:
            raise ParameterError(
                f"{self.name}: demand must be > 0, got {self.demand}"
            )


def multiapp_service_ok(
    params: ModelParams,
    server_powers: list[float],
    app_work: float,
    own_rate: float,
    total_rate: float,
) -> bool:
    """Can these servers serve ``own_rate`` while predicting ``total_rate``?

    Generalizes Eqs. 6-10: per unit time, server ``i`` spends
    ``total_rate * (Wpre/w_i + sched comm)`` on predictions (every request
    of every application reaches every server) plus its share of
    ``own_rate`` service executions.  Feasible iff the aggregate busy
    fraction fits, i.e. the service headroom left by prediction covers the
    demanded rate.
    """
    if not server_powers:
        return False
    if own_rate <= 0.0 or total_rate < own_rate:
        raise ParameterError(
            f"need 0 < own_rate <= total_rate, got ({own_rate}, {total_rate})"
        )
    sched_comm = params.server_sizes.round_trip / params.bandwidth
    service_comm = params.service_sizes.round_trip / params.bandwidth
    headroom = 0.0
    for power in server_powers:
        if power <= 0.0:
            raise ParameterError(f"server power must be > 0, got {power}")
        prediction_busy = total_rate * (params.wpre / power + sched_comm)
        if prediction_busy >= 1.0:
            continue  # this server is fully consumed by predictions
        per_request = app_work / power + service_comm
        headroom += (1.0 - prediction_busy) / per_request
    return headroom >= own_rate * (1.0 - _REL_TOL)


@dataclass(frozen=True)
class MultiAppPlan:
    """A shared hierarchy hosting several applications."""

    hierarchy: Hierarchy
    assignments: dict[str, tuple[str, ...]] = field(repr=False)
    rates: dict[str, float] = field(default_factory=dict)
    scale: float = 1.0

    @property
    def total_rate(self) -> float:
        return sum(self.rates.values())

    @property
    def fully_satisfied(self) -> bool:
        """True when every application's demand is met (scale == 1)."""
        return self.scale >= 1.0 - _REL_TOL

    def servers_of(self, app_name: str) -> tuple[str, ...]:
        return self.assignments[app_name]


class MultiAppPlanner:
    """Cheapest shared deployment hosting several applications.

    If the pool cannot satisfy the demands, the planner scales all
    demands down proportionally (binary search on the scale factor) and
    returns the best achievable deployment with ``plan.scale < 1``.
    """

    def __init__(self, params: ModelParams):
        self.params = params

    def plan(self, pool: NodePool, applications: list[Application]) -> MultiAppPlan:
        """Plan for ``applications`` on ``pool``.

        Raises
        ------
        PlanningError
            If no applications are given, names collide, or the pool is
            too small to host one server per application plus an agent.
        """
        if not applications:
            raise PlanningError("at least one application is required")
        names = [a.name for a in applications]
        if len(set(names)) != len(names):
            raise PlanningError(f"duplicate application names: {names}")
        if len(pool) < len(applications) + 1:
            raise PlanningError(
                f"pool of {len(pool)} cannot host {len(applications)} "
                "applications plus an agent tier"
            )
        attempt = self._try_scale(pool, applications, 1.0)
        if attempt is not None:
            return attempt
        # Binary-search the largest feasible proportional scale-down.
        lo, hi = 0.0, 1.0
        best: MultiAppPlan | None = None
        for _ in range(40):
            mid = 0.5 * (lo + hi)
            if mid <= 0.0:
                break
            candidate = self._try_scale(pool, applications, mid)
            if candidate is not None:
                best = candidate
                lo = mid
            else:
                hi = mid
        if best is None:
            raise PlanningError(
                "pool cannot host these applications at any demand scale"
            )
        return best

    # ------------------------------------------------------------------ #

    def _try_scale(
        self, pool: NodePool, applications: list[Application], scale: float
    ) -> MultiAppPlan | None:
        """Build the cheapest deployment meeting ``scale * demand``."""
        params = self.params
        rates = {a.name: a.demand * scale for a in applications}
        total_rate = sum(rates.values())
        ranked = sorted(pool, key=lambda n: (n.power, n.name), reverse=True)

        # Server tier: most demanding applications pick servers first,
        # from the *slowest* node that still works upward would fragment;
        # simplest sound rule: fastest-first per app, checked by the
        # multi-app feasibility test.
        assignments: dict[str, list[Node]] = {a.name: [] for a in applications}
        available = list(ranked)
        for app in sorted(
            applications, key=lambda a: a.app_work * rates[a.name], reverse=True
        ):
            chosen = assignments[app.name]
            while available:
                # Prediction-rate floor: a server too slow to predict at
                # the total rate can never join any server tier.
                node = available[0]
                if server_sched_throughput(params, node.power) < total_rate:
                    return None
                chosen.append(available.pop(0))
                if multiapp_service_ok(
                    params,
                    [n.power for n in chosen],
                    app.app_work,
                    rates[app.name],
                    total_rate,
                ):
                    break
            else:
                return None
            if not multiapp_service_ok(
                params,
                [n.power for n in chosen],
                app.app_work,
                rates[app.name],
                total_rate,
            ):
                return None

        # Agent tier: capacity-fill at the total rate from what remains.
        n_servers = sum(len(v) for v in assignments.values())
        agents: list[Node] = []
        capacity = 0
        while capacity < n_servers + max(0, len(agents) - 1):
            if not available:
                return None
            node = available.pop(0)
            if agent_sched_throughput(params, node.power, 1) < total_rate:
                return None  # even one child is too many for this node
            min_degree = 1 if not agents else 2
            supported = supported_children(params, node.power, total_rate)
            if supported < min_degree:
                return None
            agents.append(node)
            capacity = sum(
                supported_children(params, a.power, total_rate) for a in agents
            )

        hierarchy = self._materialize(agents, assignments, total_rate)
        try:
            hierarchy.validate(strict=True)
        except Exception:
            return None
        return MultiAppPlan(
            hierarchy=hierarchy,
            assignments={
                name: tuple(n.name for n in nodes)
                for name, nodes in assignments.items()
            },
            rates=rates,
            scale=scale,
        )

    def _materialize(
        self,
        agents: list[Node],
        assignments: dict[str, list[Node]],
        total_rate: float,
    ) -> Hierarchy:
        params = self.params
        hierarchy = Hierarchy()
        hierarchy.set_root(agents[0].name, agents[0].power)
        free = {
            agents[0].name: supported_children(
                params, agents[0].power, total_rate
            )
        }
        placed = [agents[0]]
        for agent in agents[1:]:
            parent = next(a for a in placed if free[a.name] > 0)
            hierarchy.add_agent(agent.name, agent.power, parent.name)
            free[parent.name] -= 1
            free[agent.name] = supported_children(
                params, agent.power, total_rate
            )
            placed.append(agent)
        pending = [node for nodes in assignments.values() for node in nodes]
        # Validity first: two children per non-root agent.
        for agent in placed[1:]:
            while hierarchy.degree(agent.name) < 2 and pending:
                node = pending.pop(0)
                hierarchy.add_server(node.name, node.power, agent.name)
                free[agent.name] -= 1
        cursor = 0
        while pending:
            order = [a for a in placed if free[a.name] > 0] or [placed[0]]
            agent = order[cursor % len(order)]
            node = pending.pop(0)
            hierarchy.add_server(node.name, node.power, agent.name)
            free[agent.name] -= 1
            cursor += 1
        # Over-allocated agents (fewer than two children) leave the
        # deployment entirely — unlike the single-application repair they
        # cannot be demoted to servers, because every server must belong
        # to an application's assignment.
        changed = True
        while changed:
            changed = False
            for agent in hierarchy.agents:
                if agent == hierarchy.root:
                    continue
                kids = hierarchy.children(agent)
                if len(kids) < 2:
                    parent = hierarchy.parent(agent)
                    assert parent is not None
                    for kid in kids:
                        hierarchy.reattach(kid, parent)
                    hierarchy.remove_leaf(agent)
                    changed = True
                    break
        return hierarchy


# ---------------------------------------------------------------------- #
# registry integration


from repro.core.registry import (  # noqa: E402  (registration tail)
    CAP_DEMAND,
    CAP_EXTENSION,
    PlannerOptions,
    build_deployment,
    register_planner,
)
from repro.core.throughput import hierarchy_throughput as _eq16_throughput


@dataclass(frozen=True)
class MultiAppOptions(PlannerOptions):
    """Options of the multi-application planner.

    ``applications`` is the workload portfolio to host.  When empty, the
    planner derives a single :class:`Application` from the request's
    ``app_work`` and ``demand`` (demand is then required).
    """

    applications: tuple[Application, ...] = ()

    def __post_init__(self) -> None:
        for app in self.applications:
            if not isinstance(app, Application):
                raise PlanningError(
                    "multiapp: applications must be Application instances, "
                    f"got {type(app).__name__}; build them with "
                    "Application(name, app_work, demand)"
                )


@register_planner
class MultiAppRegistryPlanner:
    """Shared hierarchy hosting several applications at fixed demands.

    The returned deployment's ``report`` evaluates Eq. 16 at the
    demand-weighted mean application work (a single-application view for
    cross-planner comparability); the per-application assignments, rates
    and the achieved demand scale ride in ``deployment.extras``.
    """

    name = "multiapp"
    capabilities = frozenset({CAP_DEMAND, CAP_EXTENSION})
    options_type = MultiAppOptions

    def plan(self, request):
        applications = request.options.applications
        if not applications:
            if request.demand is None:
                raise PlanningError(
                    "multiapp planner needs options="
                    "MultiAppOptions(applications=...) or a request demand "
                    "to derive a single application"
                )
            applications = (
                Application("app", request.app_work, request.demand),
            )
        planner = MultiAppPlanner(request.params)
        plan = planner.plan(request.pool, list(applications))
        total_demand = sum(a.demand for a in applications)
        mean_work = (
            sum(a.app_work * a.demand for a in applications) / total_demand
        )
        report = _eq16_throughput(plan.hierarchy, request.params, mean_work)
        return build_deployment(
            request,
            self.name,
            plan.hierarchy,
            report=report,
            extras={
                "assignments": dict(plan.assignments),
                "rates": dict(plan.rates),
                "scale": plan.scale,
                "fully_satisfied": plan.fully_satisfied,
            },
        )
