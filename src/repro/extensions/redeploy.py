"""Iterative deployment improvement — the paper's prior-work mechanism.

Before arriving at Algorithm 1, the authors' earlier approach ([6], [7]:
"Automatic deployment for hierarchical network enabled server") was
*iterative*: analyze an **existing** deployment with the throughput
model, identify the primary bottleneck, and remove it by adding resources
in the appropriate part of the hierarchy, repeating until no improvement
remains.  The paper positions Algorithm 1 as the from-scratch complement
of that tool; this module supplies the tool itself, so the library covers
both workflows:

* plan from scratch — :class:`repro.core.heuristic.HeuristicPlanner`;
* improve what is already running — :func:`improve_deployment`.

Moves, chosen by the model's bottleneck diagnosis:

``add-server``
    Service-bound: attach the strongest spare node as a server under the
    agent with the most scheduling headroom.
``split-agent``
    Scheduling-bound at an agent: promote the strongest spare to a new
    agent alongside it and hand over half of its children, halving the
    bottleneck agent's degree.
``promote-server``
    Scheduling-bound at an agent and no spare needed: promote the
    strongest server child (the paper's ``shift_nodes``) to a new agent
    and hand over half of its siblings.
``rebalance``
    Scheduling-bound at an agent but no spares left: move one child from
    the bottleneck agent to the existing agent with the most headroom.
``replace-server``
    Scheduling-bound at a *server* (its prediction floor): swap it for a
    stronger spare.

Moves that strictly raise throughput are always preferred.  When the
deployment sits on a *plateau* — scheduling and service power are equal,
so no single move helps although a split followed by an add would — the
loop accepts an "unblocking" move: one that keeps throughput intact while
strictly raising the hierarchy's scheduling power.  Unblocking moves
consume a spare or convert a server, so they are bounded and the loop
still terminates; throughput never regresses.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.hierarchy import Hierarchy, NodeId, Role
from repro.core.params import ModelParams
from repro.core.throughput import (
    agent_sched_throughput,
    hierarchy_throughput,
)
from repro.errors import PlanningError
from repro.platforms.node import Node

__all__ = ["ImprovementAction", "ImprovementResult", "improve_deployment"]

_REL_TOL = 1e-9


@dataclass(frozen=True)
class ImprovementAction:
    """One applied improvement step."""

    # add-server | split-agent | promote-server | rebalance | replace-server
    move: str
    node: str
    target: str
    throughput_before: float
    throughput_after: float

    @property
    def gain(self) -> float:
        return self.throughput_after - self.throughput_before


@dataclass(frozen=True)
class ImprovementResult:
    """Outcome of an improvement run."""

    hierarchy: Hierarchy
    actions: tuple[ImprovementAction, ...] = field(repr=False, default=())
    initial_throughput: float = 0.0
    final_throughput: float = 0.0
    spares_left: tuple[Node, ...] = field(repr=False, default=())

    @property
    def improvement_factor(self) -> float:
        if self.initial_throughput <= 0:
            return 1.0
        return self.final_throughput / self.initial_throughput


def _headroom_agent(
    hierarchy: Hierarchy, params: ModelParams, exclude: NodeId | None = None
) -> NodeId:
    """Agent whose post-attach scheduling rate would be the highest."""
    agents = [a for a in hierarchy.agents if a != exclude]
    if not agents:
        agents = hierarchy.agents
    return max(
        agents,
        key=lambda a: (
            agent_sched_throughput(
                params, hierarchy.power(a), hierarchy.degree(a) + 1
            ),
            str(a),
        ),
    )


def _evaluate(
    candidate: Hierarchy, params: ModelParams, app_work: float
) -> tuple[float, float] | None:
    """(throughput, sched power) of a candidate, or None if invalid."""
    try:
        candidate.validate(strict=True)
    except Exception:
        return None
    report = hierarchy_throughput(candidate, params, app_work)
    return report.throughput, report.sched


def _best_move(
    hierarchy: Hierarchy,
    spares: list[Node],
    params: ModelParams,
    app_work: float,
) -> tuple[Hierarchy, ImprovementAction, list[Node]] | None:
    report = hierarchy_throughput(hierarchy, params, app_work)
    rho = report.throughput
    sched_now = report.sched
    # Entries: (value, sched, unblocking, trial, action, remaining_spares).
    candidates: list[
        tuple[float, float, bool, Hierarchy, ImprovementAction, list[Node]]
    ] = []
    spare = max(spares, default=None)

    def consider(
        move: str,
        node: str,
        target: str,
        trial: Hierarchy,
        remaining: list[Node],
        unblocking: bool,
    ) -> None:
        result = _evaluate(trial, params, app_work)
        if result is None:
            return
        value, sched = result
        candidates.append(
            (
                value,
                sched,
                unblocking,
                trial,
                ImprovementAction(move, node, target, rho, value),
                remaining,
            )
        )

    # Move: add-server (service-bound, or as a generic option).
    if spare is not None:
        target = _headroom_agent(hierarchy, params)
        trial = hierarchy.copy()
        trial.add_server(spare.name, spare.power, target)
        remaining = [s for s in spares if s.name != spare.name]
        consider("add-server", spare.name, str(target), trial, remaining, False)

    # Scheduling-capacity moves target the *tightest agent* and are
    # considered whenever one exists — not only when the report says
    # scheduling-bound.  Near the regime boundary (sched ~ service) the
    # bottleneck label flips every step, but a split that raises sched
    # power is exactly what lets the next add-server pay off; the
    # acceptance rules below keep unhelpful candidates out.
    limiting = min(
        hierarchy.agents, key=lambda a: (report.node_rates[a], str(a))
    )
    children = list(hierarchy.children(limiting))
    # Move: split-agent — a spare becomes a sibling agent and takes
    # half the children.  Unblocking: raises sched power even when
    # service keeps rho flat.
    if spare is not None and len(children) >= 4:
        trial = hierarchy.copy()
        parent = trial.parent(limiting)
        anchor = parent if parent is not None else limiting
        trial.add_agent(spare.name, spare.power, anchor)
        for child in children[: len(children) // 2]:
            trial.reattach(child, spare.name)
        remaining = [s for s in spares if s.name != spare.name]
        consider(
            "split-agent", spare.name, str(limiting), trial, remaining, True
        )
    # Move: promote-server — shift_nodes without a spare: the
    # strongest server child becomes an agent over half its siblings.
    server_children = [
        c for c in children if hierarchy.role(c) is Role.SERVER
    ]
    if len(server_children) >= 5:
        promoted = max(
            server_children, key=lambda s: (hierarchy.power(s), str(s))
        )
        siblings = [c for c in children if c != promoted]
        trial = hierarchy.copy()
        trial.promote(promoted)
        for child in siblings[: len(siblings) // 2]:
            trial.reattach(child, promoted)
        consider(
            "promote-server", str(promoted), str(limiting), trial,
            list(spares), True,
        )
    # Move: rebalance — shift one child to the roomiest other agent.
    if len(children) >= 3 and len(hierarchy.agents) > 1:
        receiver = _headroom_agent(hierarchy, params, exclude=limiting)
        if receiver != limiting:
            moved = children[-1]
            if receiver not in hierarchy.subtree(moved):
                trial = hierarchy.copy()
                trial.reattach(moved, receiver)
                consider(
                    "rebalance", str(moved), str(receiver), trial,
                    list(spares), False,
                )

    floor_node = report.limiting_node
    if (
        report.is_scheduling_bound
        and hierarchy.role(floor_node) is Role.SERVER
        and spare is not None
        and spare.power > hierarchy.power(floor_node)
    ):
        # Move: replace-server — swap the floor server for a faster spare.
        trial = hierarchy.copy()
        parent = trial.parent(floor_node)
        assert parent is not None
        trial.remove_leaf(floor_node)
        trial.add_server(spare.name, spare.power, parent)
        remaining = [s for s in spares if s.name != spare.name]
        consider(
            "replace-server", spare.name, str(floor_node), trial, remaining,
            False,
        )

    if not candidates:
        return None
    # Strict throughput improvements first.
    improving = [c for c in candidates if c[0] > rho * (1.0 + _REL_TOL)]
    if improving:
        best = max(improving, key=lambda c: c[0])
        return best[3], best[4], best[5]
    # Plateau: accept an unblocking move that keeps rho and strictly
    # raises scheduling power, enabling the next add-server to pay off.
    unblockers = [
        c
        for c in candidates
        if c[2]
        and c[0] >= rho * (1.0 - _REL_TOL)
        and c[1] > sched_now * (1.0 + _REL_TOL)
    ]
    if unblockers:
        best = max(unblockers, key=lambda c: c[1])
        return best[3], best[4], best[5]
    return None


def improve_deployment(
    hierarchy: Hierarchy,
    spares: list[Node],
    params: ModelParams,
    app_work: float,
    max_iterations: int = 100,
) -> ImprovementResult:
    """Iteratively remove bottlenecks from an existing deployment.

    Parameters
    ----------
    hierarchy:
        The running deployment (strictly valid); not mutated.
    spares:
        Unused nodes available for growth.  Node names must not collide
        with deployed nodes.
    max_iterations:
        Safety bound on improvement steps.

    Returns
    -------
    ImprovementResult
        The improved hierarchy, the action log, before/after throughput
        and the spares that remain unused.

    Raises
    ------
    PlanningError
        On spare-name collisions or a non-positive ``app_work``.
    """
    if app_work <= 0.0:
        raise PlanningError(f"app_work must be > 0, got {app_work}")
    hierarchy.validate(strict=True)
    deployed = {str(n) for n in hierarchy}
    collisions = sorted(deployed & {s.name for s in spares})
    if collisions:
        raise PlanningError(f"spare names already deployed: {collisions}")

    current = hierarchy.copy()
    remaining = sorted(spares, key=lambda s: (s.power, s.name), reverse=True)
    initial = hierarchy_throughput(current, params, app_work).throughput
    actions: list[ImprovementAction] = []
    for _ in range(max_iterations):
        step = _best_move(current, remaining, params, app_work)
        if step is None:
            break
        current, action, remaining = step
        actions.append(action)
    final = hierarchy_throughput(current, params, app_work).throughput
    return ImprovementResult(
        hierarchy=current,
        actions=tuple(actions),
        initial_throughput=initial,
        final_throughput=final,
        spares_left=tuple(remaining),
    )


# ---------------------------------------------------------------------- #
# registry integration


from repro.core.registry import (  # noqa: E402  (registration tail)
    CAP_AUTOMATIC,
    CAP_EXTENSION,
    CAP_TRANSFORM,
    PlannerOptions,
    build_deployment,
    register_planner,
)


@dataclass(frozen=True)
class RedeployOptions(PlannerOptions):
    """Options of the plan-then-improve transform.

    The pool is split in deployment order: the first
    ``round(initial_fraction * n)`` nodes (at least 2) seed a base
    deployment planned with ``base_method``; the remainder become spares
    that :func:`improve_deployment` may consume.
    """

    initial_fraction: float = 0.5
    base_method: str = "heuristic"
    max_iterations: int = 100

    def __post_init__(self) -> None:
        if not (0.0 < self.initial_fraction <= 1.0):
            raise PlanningError(
                "redeploy: initial_fraction must be in (0, 1], "
                f"got {self.initial_fraction}"
            )
        if self.base_method == "redeploy":
            raise PlanningError(
                "redeploy: base_method cannot be 'redeploy' itself"
            )
        if self.max_iterations < 1:
            raise PlanningError(
                "redeploy: max_iterations must be >= 1, "
                f"got {self.max_iterations}"
            )


@register_planner
class RedeployRegistryPlanner:
    """Plan a base deployment, then iteratively remove its bottlenecks.

    Wraps the prior-work improvement loop as a planner: the paper's
    "improve what is already running" workflow becomes one more method
    behind the registry.  The action log and the before/after throughputs
    ride in ``deployment.extras``.
    """

    name = "redeploy"
    capabilities = frozenset({CAP_AUTOMATIC, CAP_EXTENSION, CAP_TRANSFORM})
    options_type = RedeployOptions

    def plan(self, request):
        from repro.core.registry import REGISTRY
        import dataclasses as _dc

        opts = request.options
        n = len(request.pool)
        if n < 2:
            raise PlanningError(
                f"planning needs >= 2 nodes, pool has {n}"
            )
        initial = min(n, max(2, round(opts.initial_fraction * n)))
        base_request = _dc.replace(
            request,
            pool=request.pool.take(initial),
            method=opts.base_method,
            options=None,
        )
        base = REGISTRY.plan(base_request)
        deployed = {str(node) for node in base.hierarchy}
        spares = [
            node for node in request.pool if node.name not in deployed
        ]
        result = improve_deployment(
            base.hierarchy,
            spares,
            request.params,
            request.app_work,
            max_iterations=opts.max_iterations,
        )
        return build_deployment(
            request,
            self.name,
            result.hierarchy,
            extras={
                "base_method": opts.base_method,
                "actions": result.actions,
                "initial_throughput": result.initial_throughput,
                "final_throughput": result.final_throughput,
                "improvement_factor": result.improvement_factor,
                "spares_left": result.spares_left,
            },
        )
