"""Fault injection: seeded failure schedules and their runtime injector.

See :mod:`repro.faults.schedule` for the data model (composable,
round-trippable fault timelines) and :mod:`repro.faults.injector` for
the runtime that replays a schedule against a live middleware system.
"""

from repro.faults.injector import FaultInjector, FaultRecord
from repro.faults.schedule import (
    FAULT_KINDS,
    SELECTORS,
    FaultEvent,
    FaultSchedule,
    crash,
    crash_storm,
    degrade,
    from_spec,
    heal,
    partition,
    subtree_storm,
)

__all__ = [
    "FAULT_KINDS",
    "SELECTORS",
    "FaultEvent",
    "FaultSchedule",
    "FaultInjector",
    "FaultRecord",
    "crash",
    "crash_storm",
    "degrade",
    "from_spec",
    "heal",
    "partition",
    "subtree_storm",
]
