"""Replaying a fault schedule against a running middleware system.

The injector is the thin imperative shim between pure schedule data and
the :class:`~repro.middleware.system.MiddlewareSystem` surgery calls.
The control loop asks it which events are due before a horizon, advances
the engine to each event's time, and applies them one by one; each
application yields a :class:`FaultRecord` that lands in the epoch's
timeline, so fault history is part of the deterministic run record.

Late-bound selectors (``busiest-child``, ``busiest-server``) resolve
here, against observed busy-seconds at injection time — deterministic,
because busy accounting is itself a pure function of the run.  A target
that is not deployed (already crashed, migrated away, or never planned)
is recorded as a skipped event rather than an error: schedules are
written against node *names*, and the control plane is free to have
moved the platform out from under them.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import FaultError
from repro.faults.schedule import FaultEvent, FaultSchedule

__all__ = ["FaultRecord", "FaultInjector"]


@dataclass(frozen=True)
class FaultRecord:
    """One applied (or skipped) fault event, as it actually landed."""

    #: Simulation time the event was applied.
    at: float
    #: Event kind (``crash``/``degrade``/``partition``/``heal``).
    kind: str
    #: Resolved target node (the original selector string if unresolved).
    target: str
    #: Node names the event actually touched (whole subtree for crashes
    #: and partitions; empty when skipped).
    nodes: tuple = field(default=())
    #: In-flight service conversations dead-lettered and resubmitted.
    dead_letters: int = 0
    #: Whether the event changed the system (False = recorded no-op).
    applied: bool = True
    #: Human-readable note (skip reason, degrade factor, ...).
    detail: str = ""


def _subtree_busy(element) -> float:
    """Summed busy seconds of an element and all its descendants."""
    total = 0.0
    stack = [element]
    while stack:
        node = stack.pop()
        total += node.resource.busy_seconds()
        stack.extend(getattr(node, "children", ()))
    return total


class FaultInjector:
    """Cursor over a :class:`FaultSchedule` plus the application logic."""

    def __init__(self, schedule: FaultSchedule):
        if not isinstance(schedule, FaultSchedule):
            raise FaultError(
                f"injector takes a FaultSchedule, got {type(schedule).__name__}"
            )
        self._events = tuple(schedule)
        self._cursor = 0

    @property
    def pending(self) -> int:
        """Events not yet handed out by :meth:`due`."""
        return len(self._events) - self._cursor

    def due(self, before: float) -> list[FaultEvent]:
        """Pop every unapplied event with ``at < before``, in order."""
        due: list[FaultEvent] = []
        while (
            self._cursor < len(self._events)
            and self._events[self._cursor].at < before
        ):
            due.append(self._events[self._cursor])
            self._cursor += 1
        return due

    # -------------------------------------------------------------- #

    def resolve(self, target: str, system) -> str | None:
        """Resolve ``target`` to a deployed node name, or None.

        Literal names resolve iff deployed.  Selectors pick the busiest
        candidate by accumulated busy seconds, breaking ties by the
        earliest candidate in a deterministic order (fan-out order for
        children, sorted name order for servers).
        """
        if target == "busiest-child":
            best_name, best_busy = None, -1.0
            for child in system.root.children:
                busy = _subtree_busy(child)
                if busy > best_busy:
                    best_name, best_busy = child.name, busy
            return best_name
        if target == "busiest-server":
            best_name, best_busy = None, -1.0
            for name in sorted(system.servers):
                busy = system.servers[name].resource.busy_seconds()
                if busy > best_busy:
                    best_name, best_busy = name, busy
            return best_name
        if target in system.agents or target in system.servers:
            return target
        return None

    def apply(self, event: FaultEvent, system) -> FaultRecord:
        """Apply one event to the running system; always returns a record.

        When the system carries an enabled observability handle, the
        record is also emitted as a ``fault`` trace event at its
        injection time.
        """
        record = self._apply(event, system)
        obs = getattr(system, "obs", None)
        if obs is not None and obs.enabled:
            obs.tracer.event(
                record.at, "fault", record.kind,
                target=record.target,
                applied=record.applied,
                nodes=len(record.nodes),
                dead_letters=record.dead_letters,
            )
        return record

    def _apply(self, event: FaultEvent, system) -> FaultRecord:
        """The surgery behind :meth:`apply`, sans instrumentation."""
        now = system.sim.now
        resolved = self.resolve(event.target, system)
        if resolved is None:
            return FaultRecord(
                at=now, kind=event.kind, target=event.target,
                applied=False, detail="target not deployed",
            )
        if resolved == system.root.name and event.kind in (
            "crash", "partition"
        ):
            # Killing the root is not a failure scenario the middleware
            # can survive by construction; treat it as a schedule bug.
            raise FaultError(
                f"fault schedule targets the root agent {resolved!r} "
                f"with {event.kind!r}; the root cannot fail"
            )
        if event.kind == "crash":
            if getattr(system, "detection", None) is not None:
                # Timeout-modelled detection: the crash is silent.  The
                # structural surgery (and its dead-letter accounting)
                # happens when the control plane confirms the failure.
                members = system.fail_silent(resolved)
                return FaultRecord(
                    at=now, kind="crash", target=resolved,
                    nodes=members, dead_letters=0,
                    detail=f"{len(members)} node(s) down silently",
                )
            if resolved in system.servers:
                members, dead = system.fail_server(resolved)
            else:
                members, dead = system.fail_subtree(resolved)
            return FaultRecord(
                at=now, kind="crash", target=resolved,
                nodes=members, dead_letters=dead,
                detail=f"{len(members)} node(s) down",
            )
        if event.kind == "degrade":
            system.degrade_node(resolved, event.factor)
            return FaultRecord(
                at=now, kind="degrade", target=resolved, nodes=(resolved,),
                detail=f"rate x{event.factor!r}",
            )
        if event.kind == "partition":
            members = system.partition(resolved)
            return FaultRecord(
                at=now, kind="partition", target=resolved, nodes=members,
                detail=f"{len(members)} node(s) dark",
            )
        # heal
        members = system.heal(resolved)
        if members is None:
            return FaultRecord(
                at=now, kind="heal", target=resolved,
                applied=False, detail="target not partitioned",
            )
        return FaultRecord(
            at=now, kind="heal", target=resolved, nodes=members,
            detail=f"{len(members)} node(s) reconnected",
        )
