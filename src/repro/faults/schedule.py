"""Fault schedules: pure, composable, seeded failure timelines.

A fault schedule plays the same role for failures that
:mod:`repro.control.traces` plays for demand: it is *data*, not
behaviour.  A schedule is an ordered tuple of :class:`FaultEvent`
records — node crashes, slow-node degradations, subtree partitions and
heals — that the control loop's injector replays against the running
:class:`~repro.middleware.system.MiddlewareSystem` at the recorded
simulation times.  Because schedules are plain data they compose with
``+``, round-trip through :func:`from_spec`, and keep every run a pure
function of ``(pool, trace, policy, params, seed, faults)``.

Targets are either literal node names (``s3``, ``a1``) or one of two
late-bound selectors resolved against the *running* system at injection
time:

* ``busiest-child`` — the root's child whose subtree has accumulated the
  most busy seconds (the paper-level "kill the hot region" scenario);
* ``busiest-server`` — the single server with the most busy seconds.

Seeded generators (:func:`crash_storm`, :func:`subtree_storm`)
materialize their randomness at construction time, so a generated
schedule serializes to — and parses back from — an explicit event list:
the round trip is exact even though the generator itself is random.

**Seeding contract.**  :func:`crash_storm` draws every crash time from
its own sub-stream keyed by ``(seed, target, draw index)`` — the draws
are *per-node independent*, so storms composed with ``+`` sample
disjoint streams whenever their targets differ (even under one shared
``seed``), and widening one storm's ``count`` never reshuffles
another's times.  :func:`subtree_storm` is the deliberate opposite: a
*correlated* (rack-scoped) generator whose draws all come from one
``random.Random(seed)`` stream, modelling whole-subtree bursts whose
members fail together rather than independently.
"""

from __future__ import annotations

import random
from collections.abc import Iterable

from repro.errors import FaultError

__all__ = [
    "FAULT_KINDS",
    "SELECTORS",
    "FaultEvent",
    "FaultSchedule",
    "crash",
    "degrade",
    "partition",
    "heal",
    "crash_storm",
    "subtree_storm",
    "from_spec",
]

#: The four fault kinds the middleware surgery supports.
FAULT_KINDS = ("crash", "degrade", "partition", "heal")

#: Late-bound target selectors, resolved against the running system.
SELECTORS = ("busiest-child", "busiest-server")


class FaultEvent:
    """One scheduled fault: ``kind`` applied to ``target`` at time ``at``.

    ``factor`` is meaningful only for ``degrade`` events: the node's
    resource rate is multiplied by it (``0.25`` = the node runs at a
    quarter speed), and ``factor=1.0`` restores nominal speed.
    """

    __slots__ = ("at", "kind", "target", "factor")

    def __init__(self, at: float, kind: str, target: str, factor: float = 1.0):
        if kind not in FAULT_KINDS:
            raise FaultError(
                f"unknown fault kind {kind!r}; expected one of {FAULT_KINDS}"
            )
        if at < 0.0:
            raise FaultError(f"fault time must be >= 0, got {at}")
        target = str(target).strip()
        if not target:
            raise FaultError("fault target must be a non-empty node name")
        if kind == "degrade":
            if factor <= 0.0:
                raise FaultError(
                    f"degrade factor must be > 0, got {factor} "
                    "(use crash to remove the node outright)"
                )
        elif factor != 1.0:
            raise FaultError(
                f"factor only applies to degrade events, not {kind!r}"
            )
        self.at = float(at)
        self.kind = kind
        self.target = target
        self.factor = float(factor)

    @property
    def spec(self) -> str:
        """The ``kind:key=value,...`` spelling :func:`from_spec` parses."""
        # repr() round-trips floats exactly, so seeded (irrational-looking)
        # event times survive spec serialization bit-for-bit.
        parts = [f"target={self.target}", f"at={self.at!r}"]
        if self.kind == "degrade":
            parts.append(f"factor={self.factor!r}")
        return f"{self.kind}:" + ",".join(parts)

    def _key(self) -> tuple:
        return (self.at, self.kind, self.target, self.factor)

    def __eq__(self, other) -> bool:
        if not isinstance(other, FaultEvent):
            return NotImplemented
        return self._key() == other._key()

    def __hash__(self) -> int:
        return hash(self._key())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        extra = f", factor={self.factor:g}" if self.kind == "degrade" else ""
        return f"FaultEvent({self.kind} {self.target!r} @ {self.at:g}{extra})"


class FaultSchedule:
    """An immutable, time-ordered sequence of :class:`FaultEvent`.

    Events are stably sorted by time, so composing two schedules with
    ``+`` interleaves them chronologically while same-time events keep
    their composition order (the injector applies them in sequence
    order, which keeps runs deterministic).
    """

    __slots__ = ("events",)

    def __init__(self, events: Iterable[FaultEvent] = ()):
        items = list(events)
        for event in items:
            if not isinstance(event, FaultEvent):
                raise FaultError(
                    f"fault schedule takes FaultEvent items, got {event!r}"
                )
        items.sort(key=lambda event: event.at)  # stable: ties keep order
        self.events = tuple(items)

    # -------------------------------------------------------------- #

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def __bool__(self) -> bool:
        return bool(self.events)

    def __eq__(self, other) -> bool:
        if not isinstance(other, FaultSchedule):
            return NotImplemented
        return self.events == other.events

    def __hash__(self) -> int:
        return hash(self.events)

    def __add__(self, other: "FaultSchedule") -> "FaultSchedule":
        if not isinstance(other, FaultSchedule):
            return NotImplemented
        return FaultSchedule(self.events + other.events)

    @property
    def spec(self) -> str:
        """``;``-joined event specs; ``from_spec(schedule.spec)`` round-trips."""
        return ";".join(event.spec for event in self.events)

    def describe(self) -> str:
        if not self.events:
            return "no faults"
        kinds: dict[str, int] = {}
        for event in self.events:
            kinds[event.kind] = kinds.get(event.kind, 0) + 1
        summary = ", ".join(
            f"{count} {kind}" for kind, count in sorted(kinds.items())
        )
        return f"{len(self.events)} fault(s): {summary}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FaultSchedule({self.describe()})"


# ------------------------------------------------------------------ #
# constructors


def crash(target: str, at: float) -> FaultSchedule:
    """Kill ``target`` (a server, or an agent and its whole subtree)."""
    return FaultSchedule([FaultEvent(at, "crash", target)])


def degrade(target: str, at: float, factor: float) -> FaultSchedule:
    """Multiply ``target``'s resource rate by ``factor`` (straggler)."""
    return FaultSchedule([FaultEvent(at, "degrade", target, factor=factor)])


def partition(target: str, at: float) -> FaultSchedule:
    """Cut the subtree rooted at ``target`` off the fan-out (healable)."""
    return FaultSchedule([FaultEvent(at, "partition", target)])


def heal(target: str, at: float) -> FaultSchedule:
    """Reconnect a previously partitioned subtree rooted at ``target``."""
    return FaultSchedule([FaultEvent(at, "heal", target)])


def _stream(seed: int, *scope) -> random.Random:
    """Deterministic sub-stream keyed by ``(seed, *scope)``.

    String seeding goes through CPython's version-2 init (SHA-512 over
    the bytes), which is stable across processes and platforms — unlike
    ``hash()`` of a tuple, which ``PYTHONHASHSEED`` salts.
    """
    key = ":".join((str(seed),) + tuple(str(part) for part in scope))
    return random.Random(key)


def crash_storm(
    count: int,
    start: float,
    end: float,
    seed: int = 0,
    target: str = "busiest-server",
) -> FaultSchedule:
    """``count`` crashes at seeded-uniform times in ``[start, end)``.

    **Seeding contract.**  Each crash time is drawn from its own
    sub-stream keyed by ``(seed, target, draw index)``, so the draws
    are per-node independent: two storms composed with ``+`` sample
    disjoint streams whenever their targets differ — even when they
    share one ``seed`` — and raising one storm's ``count`` only *adds*
    draws, it never reshuffles the times already generated (for this
    storm or any composed with it).

    Randomness is materialized here, so the resulting schedule is plain
    data: its :attr:`~FaultSchedule.spec` lists the concrete crash
    events and round-trips exactly through :func:`from_spec`.
    """
    if count < 1:
        raise FaultError(f"crash storm needs count >= 1, got {count}")
    if not start <= end:
        raise FaultError(
            f"crash storm window is empty: start={start} > end={end}"
        )
    times = sorted(
        _stream(seed, "crash-storm", target, index).uniform(start, end)
        for index in range(count)
    )
    return FaultSchedule(FaultEvent(at, "crash", target) for at in times)


def subtree_storm(
    targets: str | Iterable[str],
    count: int,
    start: float,
    end: float,
    seed: int = 0,
) -> FaultSchedule:
    """Correlated (rack-scoped) storm: ``count`` crashes over ``targets``.

    The deliberate opposite of :func:`crash_storm`'s independence
    contract: every draw — a crash time uniform in ``[start, end)``
    *and* the subtree root it hits — comes from **one**
    ``random.Random(seed)`` stream, so the per-target draws are
    correlated by construction (the storm models a rack or site whose
    members share fate, not independent node lotteries).  ``targets``
    is an iterable of subtree-root names, or one ``"a|b|c"``
    pipe-joined string (the spec spelling).

    Like every generator, randomness is materialized here: the schedule
    serializes to concrete crash events and
    ``from_spec(storm.spec)`` rebuilds it exactly.
    """
    if isinstance(targets, str):
        targets = tuple(part.strip() for part in targets.split("|"))
    targets = tuple(str(target).strip() for target in targets)
    if not targets or any(not target for target in targets):
        raise FaultError(
            "subtree storm needs a non-empty list of non-empty "
            f"target names, got {targets!r}"
        )
    if count < 1:
        raise FaultError(f"subtree storm needs count >= 1, got {count}")
    if not start <= end:
        raise FaultError(
            f"subtree storm window is empty: start={start} > end={end}"
        )
    rng = random.Random(seed)
    draws = sorted(
        (rng.uniform(start, end), rng.choice(targets)) for _ in range(count)
    )
    return FaultSchedule(
        FaultEvent(at, "crash", target) for at, target in draws
    )


# ------------------------------------------------------------------ #
# CLI spec parsing (mirrors repro.control.traces.from_spec)


_SPEC_FIELDS: dict[str, dict[str, type]] = {
    "crash": {"target": str, "at": float},
    "degrade": {"target": str, "at": float, "factor": float},
    "partition": {"target": str, "at": float},
    "heal": {"target": str, "at": float},
    "storm": {
        "count": int, "start": float, "end": float, "seed": int,
        "target": str,
    },
    "subtree_storm": {
        "count": int, "start": float, "end": float, "seed": int,
        "targets": str,
    },
}


def _parse_event(item: str) -> FaultSchedule:
    name, _, body = item.partition(":")
    name = name.strip().lower().replace("-", "_")
    if name not in _SPEC_FIELDS:
        raise FaultError(
            f"unknown fault kind {name!r}; expected one of "
            f"{sorted(_SPEC_FIELDS)}"
        )
    fields = _SPEC_FIELDS[name]
    kwargs: dict[str, object] = {}
    for part in body.split(","):
        if not part.strip():
            continue
        key, separator, value = part.partition("=")
        if not separator or not key.strip():
            raise FaultError(
                f"fault spec expects key=value items, got {part!r}"
            )
        # Accept dashed keys like every other key=value CLI surface.
        key = key.strip().replace("-", "_")
        if key not in fields:
            raise FaultError(
                f"unknown fault option {key!r} for {name!r}; "
                f"valid options: {sorted(fields)}"
            )
        try:
            kwargs[key] = fields[key](value.strip())
        except ValueError as exc:
            raise FaultError(
                f"fault option {key}={value.strip()!r} is not a valid "
                f"{fields[key].__name__}"
            ) from exc
    try:
        if name == "storm":
            return crash_storm(**kwargs)  # type: ignore[arg-type]
        if name == "subtree_storm":
            return subtree_storm(**kwargs)  # type: ignore[arg-type]
        builder = {
            "crash": crash, "degrade": degrade,
            "partition": partition, "heal": heal,
        }[name]
        return builder(**kwargs)  # type: ignore[operator]
    except TypeError as exc:
        raise FaultError(
            f"fault {name!r} is missing required options "
            f"(valid options: {sorted(fields)}): {exc}"
        ) from exc


def from_spec(spec: str) -> FaultSchedule:
    """Build a schedule from a compact ``;``-joined event string.

    The CLI's fault syntax::

        crash:target=s3,at=40
        crash:target=busiest-child,at=45
        degrade:target=s2,at=30,factor=0.25
        partition:target=a1,at=30;heal:target=a1,at=60
        storm:count=3,start=20,end=80,seed=7
        subtree-storm:targets=a1|a2|a3,count=2,start=20,end=80,seed=7

    Each item is ``kind:key=value,...``; items are joined by ``;`` and
    compose like ``+`` on schedules.  The storm generators materialize
    their seeded crash times immediately, so ``from_spec(schedule.spec)``
    rebuilds any schedule exactly — including generated ones.
    """
    schedule = FaultSchedule()
    saw_item = False
    for item in spec.split(";"):
        if not item.strip():
            continue
        saw_item = True
        schedule = schedule + _parse_event(item.strip())
    if not saw_item:
        raise FaultError(f"empty fault spec {spec!r}")
    return schedule
