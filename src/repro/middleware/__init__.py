"""Simulated DIET-like middleware.

This package is the discrete-event counterpart of the paper's deployed
system: a hierarchy of agents and servers (SeDs) executing the two-phase
request lifecycle of Figure 1 on M(r,s,w) serial resources.

* :mod:`repro.middleware.messages` — request bookkeeping;
* :mod:`repro.middleware.agent` — request fan-out, reply merge/selection;
* :mod:`repro.middleware.server` — prediction + application execution;
* :mod:`repro.middleware.client` — closed-loop unit-of-load clients (§5.1);
* :mod:`repro.middleware.detection` — timeout-modelled failure
  detection (watchdogs, retry/backoff, suspicion evidence);
* :mod:`repro.middleware.system` — assembles a deployment plan into a
  running simulated platform.
"""

from repro.middleware.detection import (
    DetectionError,
    DetectionParams,
    DetectionState,
    parse_detection,
)
from repro.middleware.messages import Request
from repro.middleware.system import MiddlewareSystem
from repro.middleware.client import ClosedLoopClient

__all__ = [
    "Request",
    "MiddlewareSystem",
    "ClosedLoopClient",
    "DetectionError",
    "DetectionParams",
    "DetectionState",
    "parse_detection",
]
