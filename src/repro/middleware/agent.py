"""Simulated agent element.

Per request (Figure 1 and Eqs. 1–2, 5 of the paper) an agent:

1. receives the request from its parent (``Sreq`` at agent level),
2. computes the request-processing work ``Wreq``,
3. forwards the request to each of its ``d`` children, serially (the
   single-port model) — agent-level ``Sreq`` to child agents,
   server-level ``Sreq`` to child servers,
4. receives ``d`` replies, each costing receive time on its resource,
5. computes the merge/selection work ``Wrep(d) = Wfix + Wsel*d``,
6. sends the merged reply (the best server seen) to its parent.

Selection keeps the child reply with the *earliest availability
estimate*, which reproduces DIET's pick-the-best-server behaviour and
makes the steady-state load split emerge from queue dynamics.
"""

from __future__ import annotations

import random

from repro.core.params import ModelParams
from repro.errors import SimulationError
from repro.sim.engine import Simulator
from repro.sim.resources import SerialResource
from repro.sim.trace import TraceRecorder

__all__ = ["AgentElement"]


class _PendingRequest:
    """Reply-merge state for one in-flight request at one agent.

    ``origin`` is the element the merged reply must go back to, captured
    when the request was *received* — not looked up at reply time — so a
    conversation survives the agent being re-homed mid-flight by a live
    migration.  ``None`` means the request came from the client layer.

    ``awaiting`` tracks which children have not yet *delivered* a reply
    (discarded as each reply's send lands, before the receive is
    billed): when a child crashes mid-round, the failure layer consults
    it to synthesize the exact set of replies that will never arrive.

    ``timed_out`` (detection mode only; ``None`` otherwise) holds the
    children this round gave up on after the retry ladder ran dry —
    their late replies, should they straggle in after all, must not be
    merged a second time.
    """

    __slots__ = (
        "remaining", "best_server", "best_estimate", "ties", "origin",
        "awaiting", "timed_out",
    )

    def __init__(
        self,
        remaining: int,
        origin: "AgentElement | None",
        awaiting: set | None = None,
    ):
        self.remaining = remaining
        self.best_server: str | None = None
        self.best_estimate = float("inf")
        self.ties = 0
        self.origin = origin
        self.awaiting: set = awaiting if awaiting is not None else set()
        self.timed_out: set | None = None


class AgentElement:
    """One deployed agent (root or inner)."""

    __slots__ = (
        "sim",
        "name",
        "power",
        "params",
        "bandwidth",
        "rng",
        "resource",
        "parent",
        "children",
        "client_sink",
        "trace",
        "requests_done",
        "_pending",
        "detection",
        "liveness",
        "reachable",
        "obs",
    )

    def __init__(
        self,
        sim: Simulator,
        name: str,
        power: float,
        params: ModelParams,
        trace: TraceRecorder | None = None,
        rng: "random.Random | None" = None,
        bandwidth: float | None = None,
        detection=None,
        liveness=None,
        obs=None,
    ):
        self.sim = sim
        self.name = name
        self.power = power
        self.params = params
        # Per-node access-link bandwidth (Mb/s); defaults to the uniform
        # model bandwidth.  Every transfer this node takes part in costs
        # size / self.bandwidth on this node's resource — the "each
        # endpoint pays its own link" rule of the hetcomm extension.
        self.bandwidth = params.bandwidth if bandwidth is None else bandwidth
        self.rng = rng if rng is not None else random.Random(0)
        self.resource = SerialResource(sim, name)
        self.parent = None  # None for the root; set by MiddlewareSystem
        self.children: list = []  # AgentElement | ServerElement
        # Root only: callable(request_id, server_name) delivering the
        # scheduling decision to the client layer; set by MiddlewareSystem.
        self.client_sink = None
        self.trace = trace
        self.requests_done = 0
        self._pending: dict[int, _PendingRequest] = {}
        # Detection mode (both None when failures are announced by the
        # oracle): `detection` is the system's DetectionParams, `liveness`
        # the shared DetectionState every watchdog reports into.
        self.detection = detection
        self.liveness = liveness
        # False while a network partition severs this element from its
        # parent; deliveries to an unreachable element vanish (the sender
        # cannot tell — that is the point of modelling detection).
        self.reachable = True
        # Observability handle; the shared null handle keeps disabled
        # watchdog instrumentation at one attribute check.
        if obs is None:
            from repro.obs.probe import NULL_OBS

            obs = NULL_OBS
        self.obs = obs

    # ------------------------------------------------------------------ #

    @property
    def degree(self) -> int:
        return len(self.children)

    @property
    def in_flight(self) -> int:
        """Requests received but not yet replied (drain-quiet signal)."""
        return len(self._pending)

    def receive_request(
        self, request_id: int, origin: "AgentElement | None" = None
    ) -> None:
        """Upstream (parent agent or client) finished sending to us.

        ``origin`` is the sender the eventual merged reply belongs to;
        the default ``None`` means the client layer (root agents only).
        """
        params = self.params
        recv_time = params.agent_sizes.sreq / self.bandwidth

        def after_recv() -> None:
            if self.trace is not None:
                self.trace.emit(
                    self.sim.now, "msg_recv", self.name,
                    request_id=request_id,
                    size_mb=params.agent_sizes.sreq, msg="sched_req",
                )
            duration = params.wreq / self.power

            def processed() -> None:
                if self.trace is not None:
                    self.trace.emit(
                        self.sim.now, "compute", self.name,
                        request_id=request_id,
                        duration=duration, what="request_processing",
                    )
                self._fan_out(request_id, origin)

            self.resource.submit(duration, "compute", processed)

        self.resource.submit(recv_time, "recv", after_recv)

    def _fan_out(
        self, request_id: int, origin: "AgentElement | None"
    ) -> None:
        """Forward the request to every child, serially (single port).

        The agent pays agent-level send time for every child (that is how
        Eq. 2 bills it); servers pay their own (much smaller) server-level
        receive time on arrival (Eq. 3).  The asymmetry mirrors the
        paper's per-element accounting in Table 3.

        A childless agent — only possible transiently, while a live
        migration has detached its last subtree — replies "no server"
        immediately; the client layer resubmits.
        """
        if self.detection is not None and request_id in self._pending:
            # A parent's retry re-delivered a request whose first copy
            # is still being merged here — the original round answers
            # for both, so the duplicate is dropped (the recv/compute
            # cost it already incurred is the price of retrying a slow
            # but live child).
            return
        pending = _PendingRequest(
            len(self.children), origin,
            awaiting={child.name for child in self.children},
        )
        if self.detection is not None:
            pending.timed_out = set()
        self._pending[request_id] = pending
        if not self.children:
            merge_work = self.params.wrep(0)
            self.resource.submit(
                merge_work / self.power, "compute",
                lambda: self._reply_up(request_id),
            )
            return
        params = self.params
        send_time = params.agent_sizes.sreq / self.bandwidth
        for child in self.children:
            if self.detection is not None:
                deliver = self._make_watched_delivery(child, request_id, 0)
            elif isinstance(child, AgentElement):
                deliver = self._make_agent_delivery(child, request_id)
            else:
                deliver = self._make_server_delivery(child, request_id)
            self.resource.submit(send_time, "send", deliver)

    def _make_agent_delivery(self, child: "AgentElement", request_id: int):
        return lambda: child.receive_request(request_id, self)

    def _make_server_delivery(self, child, request_id: int):
        return lambda: child.receive_schedule(request_id, self)

    # ------------------------------------------------------------------ #
    # Detection mode: watched deliveries and watchdogs.

    def _deliver_to_child(self, child, request_id: int) -> None:
        """Hand the request to the child — if the network still can.

        An unreachable child (severed by a partition) simply never sees
        the message; a crashed child's halted resource black-holes it.
        Either way the sender learns nothing until the watchdog fires.
        """
        if not child.reachable:
            return
        if isinstance(child, AgentElement):
            child.receive_request(request_id, self)
        else:
            child.receive_schedule(request_id, self)

    def _make_watched_delivery(self, child, request_id: int, attempt: int):
        def deliver() -> None:
            self._deliver_to_child(child, request_id)
            # Arm the watchdog whether or not the message got through —
            # the sender cannot know the difference.
            wait = self.detection.timeout * (self.detection.backoff**attempt)
            self.sim.schedule(
                wait, self._make_watchdog(child, request_id, attempt)
            )

        return deliver

    def _make_watchdog(self, child, request_id: int, attempt: int):
        def fired() -> None:
            if self.resource.is_halted:
                return  # a dead process has no timers
            pending = self._pending.get(request_id)
            if pending is None or child.name not in pending.awaiting:
                return  # answered (or the round resolved) in time
            if self.liveness is not None:
                self.liveness.note_timeout(child.name, self.sim.now)
            if attempt < self.detection.retries:
                if self.obs.enabled:
                    self.obs.tracer.event(
                        self.sim.now, "watchdog", "retry",
                        agent=self.name, child=child.name, attempt=attempt,
                    )
                send_time = self.params.agent_sizes.sreq / self.bandwidth
                self.resource.submit(
                    send_time, "send",
                    self._make_watched_delivery(child, request_id, attempt + 1),
                )
                return
            # Retry ladder exhausted: give up on this child for the
            # round and let the merge proceed over the survivors.
            if self.obs.enabled:
                self.obs.tracer.event(
                    self.sim.now, "watchdog", "gaveup",
                    agent=self.name, child=child.name,
                )
            pending.awaiting.discard(child.name)
            if pending.timed_out is not None:
                pending.timed_out.add(child.name)
            pending.remaining -= 1
            if pending.remaining == 0:
                merge_work = self.params.wrep(len(self.children))
                self.resource.submit(
                    merge_work / self.power, "compute",
                    self._make_reply_up(request_id),
                )

        return fired

    # ------------------------------------------------------------------ #

    def receive_reply(
        self,
        request_id: int,
        server_name: str | None,
        estimate: float,
        sender: str | None = None,
    ) -> None:
        """A child finished sending its reply: absorb it, maybe merge.

        ``sender`` is the *child element* that produced the reply (which
        for agent replies differs from ``server_name``, the best server
        somewhere below it); it is struck off the awaiting set up front,
        so the failure layer never synthesizes a reply that was already
        delivered.
        """
        params = self.params
        if self.liveness is not None and sender is not None:
            # Any answer is proof of life, even one too late to merge.
            self.liveness.note_answer(sender, self.sim.now)
        # Reply size depends on who sent it; both agent and server replies
        # are received at the size the sender produced.  The sender already
        # paid its send time; we pay the receive time here.
        pending = self._pending.get(request_id)
        if pending is None:  # late reply for an aborted request
            return
        if (
            pending.timed_out is not None
            and sender is not None
            and sender not in pending.awaiting
        ):
            # Detection mode: the round already gave up on this child
            # (or merged its earlier reply, and this is a retry-induced
            # duplicate).  Liveness was noted above; the merge moved on.
            return
        if sender is not None:
            pending.awaiting.discard(sender)
        recv_time = params.agent_sizes.srep / self.bandwidth

        def after_recv() -> None:
            if self.trace is not None:
                self.trace.emit(
                    self.sim.now, "msg_recv", self.name,
                    request_id=request_id,
                    size_mb=params.agent_sizes.srep, msg="sched_rep",
                )
            if estimate < pending.best_estimate:
                pending.best_estimate = estimate
                pending.best_server = server_name
                pending.ties = 1
            elif estimate == pending.best_estimate:
                # Reservoir sampling keeps the winner uniform among ties,
                # avoiding the herd-to-first-child bias a plain "<" has.
                pending.ties += 1
                if self.rng.random() < 1.0 / pending.ties:
                    pending.best_server = server_name
            pending.remaining -= 1
            if pending.remaining == 0:
                merge_work = params.wrep(len(self.children))
                self.resource.submit(
                    merge_work / self.power, "compute",
                    lambda: self._reply_up(request_id),
                )
                return

        self.resource.submit(recv_time, "recv", after_recv)

    def child_failed(self, child_name: str) -> int:
        """Synthesize the replies a crashed child will never deliver.

        For every in-flight merge still awaiting ``child_name``, account
        the reply as arrived-with-no-candidate (no receive time is
        billed).  Under oracle detection this runs at the instant of the
        fault; under timeout-modelled detection it runs only when the
        control plane *confirms* the failure and excises the subtree —
        closing out the rounds whose watchdogs had not yet expired.
        Rounds whose last
        outstanding reply this was proceed to the merge; rounds that
        lose *every* candidate reply "no server" and the client layer
        resubmits.  Returns the number of affected merges.
        """
        affected = 0
        for request_id in sorted(self._pending):
            pending = self._pending[request_id]
            if child_name not in pending.awaiting:
                continue
            pending.awaiting.discard(child_name)
            pending.remaining -= 1
            affected += 1
            if pending.remaining == 0:
                merge_work = self.params.wrep(len(self.children))
                self.resource.submit(
                    merge_work / self.power, "compute",
                    self._make_reply_up(request_id),
                )
        return affected

    def _make_reply_up(self, request_id: int):
        return lambda: self._reply_up(request_id)

    def _reply_up(self, request_id: int) -> None:
        pending = self._pending.pop(request_id)
        self.requests_done += 1
        params = self.params
        if self.trace is not None:
            self.trace.emit(
                self.sim.now, "compute", self.name,
                request_id=request_id,
                duration=params.wrep(len(self.children)) / self.power,
                what="merge",
                degree=len(self.children),
            )
        send_time = params.agent_sizes.srep / self.bandwidth

        def after_send() -> None:
            if self.trace is not None:
                self.trace.emit(
                    self.sim.now, "msg_sent", self.name,
                    request_id=request_id,
                    size_mb=params.agent_sizes.srep, msg="sched_rep",
                )
            # Reply to whoever the request came from — captured at
            # receive time, so a mid-flight re-homing cannot strand the
            # conversation at an element that no longer expects it.
            if pending.origin is not None:
                pending.origin.receive_reply(
                    request_id, pending.best_server, pending.best_estimate,
                    sender=self.name,
                )
            elif self.client_sink is not None:
                # Root: hand the decision back to the system/client layer.
                self.client_sink(request_id, pending.best_server)
            else:
                raise SimulationError(
                    f"root agent {self.name!r} not wired to a client sink"
                )

        self.resource.submit(send_time, "send", after_send)
