"""Closed-loop clients — the paper's unit of load (§5.1).

"A unit of load is introduced via a script that runs a single request at a
time in a continual loop."  :class:`ClosedLoopClient` is exactly that: it
submits a request, waits for the service response, and immediately submits
the next one, optionally with think time.  Load generators start one such
client per second to ramp load, as the authors did.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.errors import SimulationError
from repro.middleware.messages import Request
from repro.middleware.system import MiddlewareSystem

__all__ = ["ClosedLoopClient"]


class ClosedLoopClient:
    """A client running requests back-to-back against a platform.

    Parameters
    ----------
    system:
        The deployed middleware platform.
    name:
        Client identifier (appears in request records).
    think_time:
        Idle seconds between receiving a response and submitting the next
        request (0, as in the paper's load scripts).
    on_complete:
        Optional per-completion hook (called with the finished request).
    """

    __slots__ = (
        "system",
        "name",
        "think_time",
        "on_complete",
        "completed",
        "active",
        "_running",
        "_aborted",
    )

    def __init__(
        self,
        system: MiddlewareSystem,
        name: str,
        think_time: float = 0.0,
        on_complete: Callable[[Request], None] | None = None,
    ):
        if think_time < 0.0:
            raise SimulationError(f"think_time must be >= 0, got {think_time}")
        self.system = system
        self.name = name
        self.think_time = think_time
        self.on_complete = on_complete
        self.completed = 0
        self.active = False
        self._running = False
        self._aborted = False

    def start(self) -> None:
        """Begin the request loop (idempotent)."""
        if self._running:
            return
        self._running = True
        self.active = True
        self._submit()

    def stop(self) -> None:
        """Stop after the in-flight request completes."""
        self._running = False

    def abort(self) -> None:
        """Stop immediately and disown the in-flight request (teardown).

        Models a stop-the-world platform restart: the daemons serving
        the in-flight request are killed, so its completion never
        reaches the client — ``on_complete`` is detached and neither it
        nor the :attr:`completed` counter sees the request land.
        Contrast :meth:`stop`, which lets the request finish (a
        graceful drain).
        """
        self._running = False
        self._aborted = True
        self.on_complete = None
        self.active = False

    def _submit(self) -> None:
        self.system.submit(self.name, self._done)

    def _done(self, request: Request) -> None:
        if self._aborted:
            return
        self.completed += 1
        if self.on_complete is not None:
            self.on_complete(request)
        if not self._running:
            self.active = False
            return
        if self.think_time > 0.0:
            self.system.sim.schedule(self.think_time, self._submit)
        else:
            self._submit()
