"""Timeout-modelled failure detection.

The paper's middleware model has no failure-detection machinery: a
parent only learns a child is gone because an oracle (the fault
injector) tells it so at the instant of the fault.  This module supplies
the honest alternative — the only evidence an agent ever gets about a
child is whether its requests come back in time.

:class:`DetectionParams` configures the conversation-level machinery:

* every agent→child scheduling message arms a *watchdog* that fires
  after ``timeout`` seconds; a fired watchdog records one *timeout*
  against the child in the shared :class:`DetectionState` and resends
  the request up to ``retries`` times, each wait stretched by
  ``backoff``;
* when the ladder runs out, the parent gives up on that child for the
  round and the merge proceeds over the survivors;
* ``suspicion_threshold`` consecutive timeouts cross the child into
  *suspect* territory (``crossed_at`` is stamped with the crossing
  time); a single answered message resets the count — a slow child that
  eventually answers is a straggler, not a corpse;
* the control plane's monitor turns crossings into ``suspect`` →
  ``confirmed-dead`` transitions, holding each suspect for a ``grace``
  window so late answers re-integrate it (see
  :meth:`repro.control.monitor.SLOMonitor.observe`).

Everything here is pure bookkeeping on the deterministic simulation
clock: no wall time, no randomness, so faulted runs stay bit-identical
per seed.

Spec grammar
------------
``DetectionParams`` round-trips through a ``key=value`` spec string in
the same style as traces, policies and fault schedules::

    timeout=0.5,retries=1,backoff=2,threshold=3,grace=4

:func:`parse_detection` additionally accepts ``reserve=0.2`` — the
repair-aware spare-pool fraction — which is control-loop configuration,
not middleware configuration, and is therefore returned alongside the
params rather than stored on them.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ControlError

__all__ = [
    "DetectionError",
    "DetectionParams",
    "DetectionState",
    "NodeLiveness",
    "parse_detection",
]


class DetectionError(ControlError):
    """Invalid detection parameters or spec."""


@dataclass(frozen=True)
class DetectionParams:
    """Timeout/retry/suspicion configuration for inferred failure detection.

    Attributes
    ----------
    timeout:
        Seconds an agent waits for a child's reply before the watchdog
        fires (first attempt).
    retries:
        How many times a timed-out request is resent before the parent
        gives up on the child for that round.
    backoff:
        Multiplier applied to the wait on each successive attempt
        (attempt ``k`` waits ``timeout * backoff**k``).
    suspicion_threshold:
        Consecutive given-up conversations after which the child is
        considered *suspect* by the monitor.
    grace:
        Seconds a suspect is held before confirmation; a node that
        answers anything within the grace window drops back to healthy.
    """

    timeout: float = 0.5
    retries: int = 1
    backoff: float = 2.0
    suspicion_threshold: int = 3
    grace: float = 0.0

    def __post_init__(self) -> None:
        if not self.timeout > 0.0:
            raise DetectionError(
                f"timeout must be > 0, got {self.timeout!r}"
            )
        if self.retries < 0:
            raise DetectionError(
                f"retries must be >= 0, got {self.retries!r}"
            )
        if not self.backoff >= 1.0:
            raise DetectionError(
                f"backoff must be >= 1, got {self.backoff!r}"
            )
        if self.suspicion_threshold < 1:
            raise DetectionError(
                "suspicion_threshold must be >= 1, got "
                f"{self.suspicion_threshold!r}"
            )
        if self.grace < 0.0:
            raise DetectionError(
                f"grace must be >= 0, got {self.grace!r}"
            )

    @property
    def worst_case_round(self) -> float:
        """Seconds from first send to giving up (the full retry ladder)."""
        return sum(
            self.timeout * self.backoff**attempt
            for attempt in range(self.retries + 1)
        )

    @property
    def spec(self) -> str:
        """Canonical spec string; ``parse_detection`` round-trips it."""
        return (
            f"timeout={self.timeout!r},retries={self.retries}"
            f",backoff={self.backoff!r}"
            f",threshold={self.suspicion_threshold}"
            f",grace={self.grace!r}"
        )


class NodeLiveness:
    """Evidence accumulated about one node, purely from conversations."""

    __slots__ = (
        "timeouts", "consecutive", "answers",
        "last_timeout_at", "last_answer_at", "crossed_at",
    )

    def __init__(self) -> None:
        self.timeouts = 0          # expired watchdogs, lifetime
        self.consecutive = 0       # expired watchdogs since last answer
        self.answers = 0           # answered conversations, lifetime
        self.last_timeout_at: float | None = None
        self.last_answer_at: float | None = None
        # Simulation time at which `consecutive` reached the suspicion
        # threshold; None while below it (reset by any answer).
        self.crossed_at: float | None = None


class DetectionState:
    """Shared per-system liveness table, fed by every watching agent.

    One instance lives on the :class:`MiddlewareSystem`; every agent
    holds a reference and reports give-ups (:meth:`note_timeout`) and
    answers (:meth:`note_answer`) against child names.  The monitor
    reads ``crossed_at`` at window boundaries — it never sees who timed
    out *when*, only the standing evidence, which is exactly the
    information a real deployment's heartbeat aggregator would have.
    """

    __slots__ = ("threshold", "_nodes")

    def __init__(self, threshold: int):
        self.threshold = threshold
        self._nodes: dict[str, NodeLiveness] = {}

    def _entry(self, name: str) -> NodeLiveness:
        entry = self._nodes.get(name)
        if entry is None:
            entry = self._nodes[name] = NodeLiveness()
        return entry

    def note_timeout(self, name: str, at: float) -> None:
        entry = self._entry(name)
        entry.timeouts += 1
        entry.consecutive += 1
        entry.last_timeout_at = at
        if entry.consecutive >= self.threshold and entry.crossed_at is None:
            entry.crossed_at = at

    def note_answer(self, name: str, at: float) -> None:
        entry = self._entry(name)
        entry.answers += 1
        entry.consecutive = 0
        entry.last_answer_at = at
        entry.crossed_at = None

    def get(self, name: str) -> NodeLiveness | None:
        return self._nodes.get(name)

    def forget(self, name: str) -> None:
        """Drop a node's evidence (it was excised from the deployment)."""
        self._nodes.pop(name, None)

    def items(self) -> list[tuple[str, NodeLiveness]]:
        """Name-sorted snapshot — deterministic iteration for the monitor."""
        return sorted(self._nodes.items())

    @property
    def suspects(self) -> tuple[str, ...]:
        """Names currently past the threshold, sorted."""
        return tuple(
            name for name, entry in self.items()
            if entry.crossed_at is not None
        )


_SPEC_KEYS = {
    "timeout": ("timeout", float),
    "retries": ("retries", int),
    "backoff": ("backoff", float),
    "threshold": ("suspicion_threshold", int),
    "suspicion-threshold": ("suspicion_threshold", int),
    "suspicion_threshold": ("suspicion_threshold", int),
    "grace": ("grace", float),
}


def parse_detection(spec: str) -> tuple[DetectionParams, float | None]:
    """Parse ``timeout=…,retries=…,…[,reserve=…]`` into params + reserve.

    Returns ``(params, reserve)`` where ``reserve`` is the
    ``spare_reserve`` fraction if the spec carried one, else ``None``.
    ``DetectionParams.spec`` round-trips exactly (``reserve`` is loop
    state and intentionally not part of the canonical params spec).
    """
    if not isinstance(spec, str) or not spec.strip():
        raise DetectionError(f"empty detection spec: {spec!r}")
    kwargs: dict[str, object] = {}
    reserve: float | None = None
    for chunk in spec.split(","):
        chunk = chunk.strip()
        if not chunk:
            continue
        if "=" not in chunk:
            raise DetectionError(
                f"malformed detection spec chunk {chunk!r} "
                "(expected key=value)"
            )
        key, _, value = chunk.partition("=")
        key = key.strip().lower()
        value = value.strip()
        if key == "reserve":
            try:
                reserve = float(value)
            except ValueError:
                raise DetectionError(
                    f"reserve must be a float, got {value!r}"
                ) from None
            if not 0.0 <= reserve < 1.0:
                raise DetectionError(
                    f"reserve must be in [0, 1), got {reserve!r}"
                )
            continue
        mapped = _SPEC_KEYS.get(key)
        if mapped is None:
            raise DetectionError(
                f"unknown detection spec key {key!r} "
                f"(known: {sorted(set(_SPEC_KEYS))} + ['reserve'])"
            )
        field, cast = mapped
        if field in kwargs:
            raise DetectionError(f"duplicate detection spec key {key!r}")
        try:
            kwargs[field] = cast(value)
        except ValueError:
            raise DetectionError(
                f"detection spec key {key!r} needs a {cast.__name__}, "
                f"got {value!r}"
            ) from None
    return DetectionParams(**kwargs), reserve
