"""Request bookkeeping for the simulated middleware.

A request goes through the paper's two phases (Figure 1):

1. *scheduling*: client -> root agent -> (fan-out) -> servers -> (merge)
   -> root agent -> client, yielding the selected server;
2. *service*: client -> selected server -> client.

:class:`Request` records phase timestamps so harnesses can report latency
breakdowns in addition to throughput.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Request"]


@dataclass
class Request:
    """One client request and its lifecycle timestamps (simulation time)."""

    request_id: int
    client_name: str
    submitted_at: float
    scheduled_at: float | None = None
    service_started_at: float | None = None
    completed_at: float | None = None
    selected_server: str | None = None
    extra: dict = field(default_factory=dict)

    @property
    def scheduling_latency(self) -> float | None:
        """Seconds spent in the scheduling phase."""
        if self.scheduled_at is None:
            return None
        return self.scheduled_at - self.submitted_at

    @property
    def service_latency(self) -> float | None:
        """Seconds from service submission to completion."""
        if self.completed_at is None or self.service_started_at is None:
            return None
        return self.completed_at - self.service_started_at

    @property
    def total_latency(self) -> float | None:
        """Seconds from submission to completion."""
        if self.completed_at is None:
            return None
        return self.completed_at - self.submitted_at

    @property
    def is_complete(self) -> bool:
        return self.completed_at is not None
