"""Simulated server (SeD) element.

A server participates in both phases of every request:

* **scheduling**: receive the forwarded request, compute a performance
  prediction (``Wpre`` MFlop), and reply to the parent agent with an
  availability estimate — the server's current backlog, which is what
  DIET's prediction effectively reports;
* **service**: if selected, receive the client's service request, execute
  the application (``Wapp`` MFlop), and return the response.

All activity serializes on the node's M(r,s,w) resource, so prediction
work, service work and message transfers contend exactly as the paper's
model assumes.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.core.params import ModelParams
from repro.sim.engine import Simulator
from repro.sim.resources import SerialResource
from repro.sim.trace import TraceRecorder

__all__ = ["ServerElement"]


class ServerElement:
    """One deployed SeD.

    Parameters
    ----------
    sim, name, power:
        Engine, node name, node power (MFlop/s).
    params:
        Calibrated middleware parameters.
    app_work:
        Application work ``Wapp`` (MFlop) per service request.
    trace:
        Optional trace recorder (calibration campaigns).
    """

    __slots__ = (
        "sim",
        "name",
        "power",
        "params",
        "bandwidth",
        "app_work",
        "resource",
        "parent",
        "trace",
        "predictions_done",
        "services_done",
        "pending_service_work",
        "reachable",
        "fluid_rate",
    )

    def __init__(
        self,
        sim: Simulator,
        name: str,
        power: float,
        params: ModelParams,
        app_work: float,
        trace: TraceRecorder | None = None,
        bandwidth: float | None = None,
    ):
        self.sim = sim
        self.name = name
        self.power = power
        self.params = params
        # Per-node access-link bandwidth; see AgentElement.bandwidth.
        self.bandwidth = params.bandwidth if bandwidth is None else bandwidth
        self.app_work = app_work
        self.resource = SerialResource(sim, name)
        self.parent = None  # set by MiddlewareSystem wiring
        self.trace = trace
        self.predictions_done = 0
        self.services_done = 0
        # Seconds of committed service work (accepted but not finished) —
        # the quantity the availability prediction reports.
        self.pending_service_work = 0.0
        # False while a partition severs this server from the network;
        # deliveries to an unreachable server vanish (detection mode).
        self.reachable = True
        # Aggregate fluid load (req/s) assigned by the control loop's
        # hybrid-population accounting.  Pure bookkeeping: the fluid
        # mass never enters this server's resource queue, it only rides
        # along in served-rate reports
        # (MiddlewareSystem.assign_fluid_rates).
        self.fluid_rate = 0.0

    @property
    def in_flight(self) -> int:
        """Whether service work is still committed (drain-quiet signal)."""
        return 1 if self.pending_service_work > 0.0 else 0

    # ------------------------------------------------------------------ #
    # scheduling phase

    def receive_schedule(self, request_id: int, reply_to=None) -> None:
        """Parent finished sending: absorb the message, then predict.

        ``reply_to`` is the agent the prediction reply belongs to,
        captured by the sender at fan-out time; the default falls back
        to the current parent.  Capturing it keeps in-flight scheduling
        conversations intact while a live migration re-homes this server.
        """
        params = self.params
        recv_time = params.server_sizes.sreq / self.bandwidth

        def after_recv() -> None:
            if self.trace is not None:
                self.trace.emit(
                    self.sim.now, "msg_recv", self.name,
                    request_id=request_id,
                    size_mb=params.server_sizes.sreq, msg="sched_req",
                )
            self.resource.submit(
                params.wpre / self.power, "compute",
                self._reply_factory(request_id, reply_to),
            )

        self.resource.submit(recv_time, "recv", after_recv)

    def _reply_factory(self, request_id: int, reply_to=None) -> Callable[[], None]:
        def after_predict() -> None:
            self.predictions_done += 1
            # The estimate DIET's FAST-like predictor would return: how
            # long until this node could start new service work, i.e. the
            # service work it has already accepted.  Relative (not an
            # absolute timestamp) so servers probed at slightly different
            # times during the fan-out compare fairly.
            estimate = self.pending_service_work
            if self.trace is not None:
                self.trace.emit(
                    self.sim.now, "compute", self.name,
                    request_id=request_id,
                    duration=self.params.wpre / self.power, what="prediction",
                )
            send_time = self.params.server_sizes.srep / self.bandwidth

            def after_send() -> None:
                if self.trace is not None:
                    self.trace.emit(
                        self.sim.now, "msg_sent", self.name,
                        request_id=request_id,
                        size_mb=self.params.server_sizes.srep, msg="sched_rep",
                    )
                target = reply_to if reply_to is not None else self.parent
                target.receive_reply(
                    request_id, self.name, estimate, sender=self.name
                )

            self.resource.submit(send_time, "send", after_send)

        return after_predict

    # ------------------------------------------------------------------ #
    # service phase

    def receive_service(
        self, request_id: int, on_complete: Callable[[], None]
    ) -> None:
        """Client invokes the application on this server."""
        params = self.params
        recv_time = params.service_sizes.sreq / self.bandwidth
        chain_work = (
            params.service_sizes.round_trip / self.bandwidth
            + self.app_work / self.power
        )
        self.pending_service_work += chain_work

        def after_recv() -> None:
            if self.trace is not None:
                self.trace.emit(
                    self.sim.now, "msg_recv", self.name,
                    request_id=request_id,
                    size_mb=params.service_sizes.sreq, msg="service_req",
                )
            # Only the application execution itself is service-class work;
            # message handling stays responsive (the SeD's comm thread).
            self.resource.submit(
                self.app_work / self.power, "compute", run_done, priority=1
            )

        def run_done() -> None:
            self.services_done += 1
            if self.trace is not None:
                self.trace.emit(
                    self.sim.now, "compute", self.name,
                    request_id=request_id,
                    duration=self.app_work / self.power, what="service",
                )
            send_time = params.service_sizes.srep / self.bandwidth

            def sent() -> None:
                self.pending_service_work -= chain_work
                on_complete()

            # The response leaves via the communication layer immediately
            # after the computation — it must not queue behind other
            # clients' pending service work.
            self.resource.submit(send_time, "send", sent)

        self.resource.submit(recv_time, "recv", after_recv)
