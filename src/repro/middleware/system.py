"""Assembling a deployment into a running simulated platform.

:class:`MiddlewareSystem` takes a validated
:class:`~repro.core.hierarchy.Hierarchy`, instantiates one
:class:`~repro.middleware.agent.AgentElement` or
:class:`~repro.middleware.server.ServerElement` per node on a shared
event engine, wires parent/child links, and exposes the client-facing
API: :meth:`submit` starts the scheduling phase, the returned
:class:`~repro.middleware.messages.Request` is updated as the phases
progress, and the caller's completion callback fires when the service
response lands.

This is the execution substrate the experiment harnesses drive; the
GoDIET-like launcher in :mod:`repro.deploy.godiet` builds one of these
from a serialized plan.
"""

from __future__ import annotations

import random
from collections.abc import Callable, Mapping

from repro.core.hierarchy import Hierarchy, Role
from repro.core.params import ModelParams
from repro.errors import DeploymentError, SimulationError
from repro.middleware.agent import AgentElement
from repro.middleware.messages import Request
from repro.middleware.server import ServerElement
from repro.sim.engine import Simulator
from repro.sim.stats import IntervalCounter
from repro.sim.trace import TraceRecorder

__all__ = ["MiddlewareSystem"]


class MiddlewareSystem:
    """A deployed, running (simulated) middleware platform.

    Parameters
    ----------
    sim:
        The event engine to deploy onto.
    hierarchy:
        Validated deployment tree.
    params:
        Calibrated middleware parameters.
    app_work:
        ``Wapp`` per service request (MFlop), scalar or per-server mapping.
    trace:
        Optional trace recorder wired into every element.
    """

    def __init__(
        self,
        sim: Simulator,
        hierarchy: Hierarchy,
        params: ModelParams,
        app_work: float | Mapping[str, float],
        trace: TraceRecorder | None = None,
        seed: int = 0,
        bandwidths: Mapping[str, float] | None = None,
    ):
        hierarchy.validate(strict=False)
        self.sim = sim
        self.hierarchy = hierarchy
        self.params = params
        self.trace = trace
        self._rng = random.Random(seed)
        if bandwidths is not None:
            missing = [str(n) for n in hierarchy if str(n) not in bandwidths]
            if missing:
                raise DeploymentError(
                    f"bandwidths missing for nodes: {missing}"
                )
        self.agents: dict[str, AgentElement] = {}
        self.servers: dict[str, ServerElement] = {}
        self.completions = IntervalCounter()
        self._requests: dict[int, Request] = {}
        self._next_id = 0
        self._schedule_waiters: dict[int, Callable[[Request], None]] = {}

        # Instantiate elements, then wire parent/child links.
        for node in hierarchy:
            power = hierarchy.power(node)
            bandwidth = (
                float(bandwidths[str(node)]) if bandwidths is not None else None
            )
            if hierarchy.role(node) is Role.AGENT:
                self.agents[str(node)] = AgentElement(
                    sim, str(node), power, params, trace=trace,
                    rng=self._rng, bandwidth=bandwidth,
                )
            else:
                work = (
                    float(app_work[node])
                    if isinstance(app_work, Mapping)
                    else float(app_work)
                )
                self.servers[str(node)] = ServerElement(
                    sim, str(node), power, params, work, trace=trace,
                    bandwidth=bandwidth,
                )
        for node in hierarchy:
            element = self._element(str(node))
            parent = hierarchy.parent(node)
            if parent is not None:
                element.parent = self.agents[str(parent)]
            if hierarchy.role(node) is Role.AGENT:
                element.children = [
                    self._element(str(child)) for child in hierarchy.children(node)
                ]
        self.root = self.agents[str(hierarchy.root)]
        self.root.client_sink = self._on_scheduled

    def _element(self, name: str):
        if name in self.agents:
            return self.agents[name]
        return self.servers[name]

    # ------------------------------------------------------------------ #
    # client-facing API

    def submit(
        self,
        client_name: str,
        on_complete: Callable[[Request], None],
        on_scheduled: Callable[[Request], None] | None = None,
    ) -> Request:
        """Submit a full two-phase request on behalf of ``client_name``.

        The scheduling phase starts immediately; once the root returns the
        selected server, the service phase is issued automatically.
        ``on_complete`` fires with the finished :class:`Request`.
        """
        request = self._start_schedule(client_name)

        def scheduled(req: Request) -> None:
            if on_scheduled is not None:
                on_scheduled(req)
            if req.selected_server is None:
                raise SimulationError(
                    f"request {req.request_id} scheduled without a server"
                )
            self._start_service(req, on_complete)

        self._schedule_waiters[request.request_id] = scheduled
        return request

    def submit_schedule_only(
        self, client_name: str, on_scheduled: Callable[[Request], None]
    ) -> Request:
        """Run only the scheduling phase (used by calibration campaigns)."""
        request = self._start_schedule(client_name)
        self._schedule_waiters[request.request_id] = on_scheduled
        return request

    # ------------------------------------------------------------------ #

    def _start_schedule(self, client_name: str) -> Request:
        self._next_id += 1
        request = Request(
            request_id=self._next_id,
            client_name=client_name,
            submitted_at=self.sim.now,
        )
        self._requests[request.request_id] = request
        # Client -> root transfer: the client side is not a modelled
        # resource; the root pays its receive time in receive_request.
        self.root.receive_request(request.request_id)
        return request

    def _on_scheduled(self, request_id: int, server_name: str | None) -> None:
        request = self._requests[request_id]
        request.scheduled_at = self.sim.now
        request.selected_server = server_name
        waiter = self._schedule_waiters.pop(request_id, None)
        if waiter is not None:
            waiter(request)

    def _start_service(
        self, request: Request, on_complete: Callable[[Request], None]
    ) -> None:
        server = self.servers.get(request.selected_server or "")
        if server is None:
            raise SimulationError(
                f"scheduling selected unknown server "
                f"{request.selected_server!r}"
            )
        request.service_started_at = self.sim.now

        def complete() -> None:
            request.completed_at = self.sim.now
            self.completions.record(self.sim.now)
            on_complete(request)

        server.receive_service(request.request_id, complete)

    # ------------------------------------------------------------------ #
    # observability

    def utilization_report(self) -> dict[str, float]:
        """Utilization of every node resource at the current time."""
        report = {}
        for name, agent in self.agents.items():
            report[name] = agent.resource.utilization()
        for name, server in self.servers.items():
            report[name] = server.resource.utilization()
        return report

    def bottleneck(self) -> tuple[str, float]:
        """The busiest node and its utilization — the simulated analogue
        of the model's limiting element."""
        report = self.utilization_report()
        node = max(report, key=lambda k: report[k])
        return node, report[node]

    def service_counts(self) -> dict[str, int]:
        """Completed service executions per server (Eq. 8's N_i)."""
        return {
            name: server.services_done for name, server in self.servers.items()
        }

    def total_completed(self) -> int:
        return self.completions.count
