"""Assembling a deployment into a running simulated platform.

:class:`MiddlewareSystem` takes a validated
:class:`~repro.core.hierarchy.Hierarchy`, instantiates one
:class:`~repro.middleware.agent.AgentElement` or
:class:`~repro.middleware.server.ServerElement` per node on a shared
event engine, wires parent/child links, and exposes the client-facing
API: :meth:`submit` starts the scheduling phase, the returned
:class:`~repro.middleware.messages.Request` is updated as the phases
progress, and the caller's completion callback fires when the service
response lands.

This is the execution substrate the experiment harnesses drive; the
GoDIET-like launcher in :mod:`repro.deploy.godiet` builds one of these
from a serialized plan.

Beyond constructor-only wiring, a running system supports **incremental
reconfiguration** for the control plane's live migrations:
:meth:`unlink` takes a subtree out of the fan-out (its in-flight work
drains, the rest of the platform keeps serving), :meth:`apply_migration`
executes the structural steps of a
:class:`~repro.deploy.migration.MigrationPlan` region (element creation,
re-homing, removal, role changes) on the live engine, and
:meth:`complete_migration` swaps in the target hierarchy.  Requests that
race a reconfiguration are re-homed automatically: a scheduling round
that finds no route, or a service call whose selected server has been
migrated away, is transparently resubmitted through the (new) tree.

Any number of **disjoint** subtrees may be held unlinked at once — the
substrate of concurrent region migration: each :meth:`unlink` registers
the subtree's member set, overlapping registrations are rejected, and
:meth:`region_busy_predicate` hands the caller a per-region drain-quiet
predicate it can interleave against the engine
(:meth:`~repro.sim.engine.Simulator.run_until_condition`).
"""

from __future__ import annotations

import math
import random
from collections.abc import Callable, Iterable, Mapping

from repro.core.hierarchy import Hierarchy, Role
from repro.core.params import ModelParams
from repro.errors import DeploymentError, SimulationError
from repro.middleware.agent import AgentElement
from repro.middleware.detection import DetectionParams, DetectionState
from repro.middleware.messages import Request
from repro.middleware.server import ServerElement
from repro.obs.probe import NULL_OBS, Obs
from repro.sim.engine import Simulator
from repro.sim.stats import IntervalCounter
from repro.sim.trace import TraceRecorder

__all__ = ["MiddlewareSystem"]


class MiddlewareSystem:
    """A deployed, running (simulated) middleware platform.

    Parameters
    ----------
    sim:
        The event engine to deploy onto.
    hierarchy:
        Validated deployment tree.
    params:
        Calibrated middleware parameters.
    app_work:
        ``Wapp`` per service request (MFlop), scalar or per-server mapping.
    trace:
        Optional trace recorder wired into every element.
    detection:
        Optional :class:`~repro.middleware.detection.DetectionParams`.
        When set, failures are *inferred*: agent→child conversations run
        under watchdog timeouts with retry/backoff, crashes and
        partitions are silent (no oracle announcement), and the shared
        :attr:`liveness` table accumulates the timeout evidence the
        control plane's monitor reads.  When ``None`` (the default) the
        PR 6 oracle semantics apply unchanged, bit for bit.
    obs:
        Optional :class:`~repro.obs.Obs` observability handle.  When
        enabled, the system emits trace events (dead-letter storms,
        unlink drains, client-side watchdog timeouts) keyed by sim
        time; when ``None`` the shared null handle makes every
        instrumentation site a single attribute check.  Tracing never
        changes behaviour — all counters are maintained either way.
    """

    def __init__(
        self,
        sim: Simulator,
        hierarchy: Hierarchy,
        params: ModelParams,
        app_work: float | Mapping[str, float],
        trace: TraceRecorder | None = None,
        seed: int = 0,
        bandwidths: Mapping[str, float] | None = None,
        detection: DetectionParams | None = None,
        obs: Obs | None = None,
    ):
        hierarchy.validate(strict=False)
        self.sim = sim
        self.hierarchy = hierarchy
        self.params = params
        self.app_work = app_work
        self.trace = trace
        self.obs = obs if obs is not None else NULL_OBS
        if detection is not None and not isinstance(detection, DetectionParams):
            raise DeploymentError(
                f"detection must be DetectionParams or None, got "
                f"{type(detection).__name__}"
            )
        self.detection = detection
        #: Shared liveness-evidence table (detection mode only).
        self.liveness: DetectionState | None = (
            DetectionState(detection.suspicion_threshold)
            if detection is not None
            else None
        )
        self._rng = random.Random(seed)
        self._bandwidths = bandwidths
        if bandwidths is not None:
            missing = [str(n) for n in hierarchy if str(n) not in bandwidths]
            if missing:
                raise DeploymentError(
                    f"bandwidths missing for nodes: {missing}"
                )
        self.agents: dict[str, AgentElement] = {}
        self.servers: dict[str, ServerElement] = {}
        self.completions = IntervalCounter()
        self._requests: dict[int, Request] = {}
        self._next_id = 0
        self._schedule_waiters: dict[int, Callable[[Request], None]] = {}
        # Subtrees currently held out of the fan-out, root -> member
        # names; disjointness is enforced at unlink time.
        self._unlinked: dict[str, frozenset[str]] = {}
        # Failure layer state.  _in_service tracks accepted service
        # conversations so a crash can dead-letter and resubmit them;
        # failed/degraded/partitioned are the observed-health registries
        # the control plane's monitor reads.
        self._in_service: dict[
            int,
            tuple[
                Request,
                Callable[[Request], None],
                Callable[[Request], None] | None,
                str,
            ],
        ] = {}
        self.failed_nodes: set[str] = set()
        self.degraded: dict[str, float] = {}
        self._partitioned: dict[str, frozenset[str]] = {}
        #: Service conversations whose server crashed mid-call; each one
        #: was resubmitted elsewhere, so clients still complete.
        self.dead_letters = 0
        #: Conversations dropped without resubmission — structurally
        #: zero; the counter exists to state (and test) the invariant.
        self.lost_conversations = 0
        #: Conversations that went through an *internal* re-submit (no
        #: route found mid-migration, dead-lettered by a crash or an
        #: exhausted connection ladder, or a server migrated away
        #: between scheduling and service).  Observability counter —
        #: each one still completes exactly once for its client.
        self.resubmissions = 0

        # Instantiate elements, then wire parent/child links.
        for node in hierarchy:
            self._make_element(
                str(node), hierarchy.power(node), hierarchy.role(node)
            )
        for node in hierarchy:
            element = self._element(str(node))
            parent = hierarchy.parent(node)
            if parent is not None:
                element.parent = self.agents[str(parent)]
            if hierarchy.role(node) is Role.AGENT:
                element.children = [
                    self._element(str(child)) for child in hierarchy.children(node)
                ]
        self.root = self.agents[str(hierarchy.root)]
        self.root.client_sink = self._on_scheduled

    def _make_element(self, name: str, power: float, role: Role):
        """Create (and register) one element; wiring is the caller's job."""
        bandwidth = (
            float(self._bandwidths[name])
            if self._bandwidths is not None and name in self._bandwidths
            else None
        )
        if role is Role.AGENT:
            element = AgentElement(
                self.sim, name, power, self.params, trace=self.trace,
                rng=self._rng, bandwidth=bandwidth,
                detection=self.detection, liveness=self.liveness,
                obs=self.obs,
            )
            self.agents[name] = element
        else:
            work = (
                float(self.app_work[name])
                if isinstance(self.app_work, Mapping)
                else float(self.app_work)
            )
            element = ServerElement(
                self.sim, name, power, self.params, work, trace=self.trace,
                bandwidth=bandwidth,
            )
            self.servers[name] = element
        return element

    def _element(self, name: str):
        if name in self.agents:
            return self.agents[name]
        return self.servers[name]

    def element(self, name: str):
        """The live element deployed on node ``name`` (agent or server)."""
        element = self.agents.get(name) or self.servers.get(name)
        if element is None:
            raise DeploymentError(f"no element deployed on node {name!r}")
        return element

    # ------------------------------------------------------------------ #
    # incremental reconfiguration (live migration)

    @staticmethod
    def _unwire(element) -> None:
        """Remove the parent→element fan-out edge, if present.

        The element's own ``parent`` pointer is left alone: in-flight
        conversations route replies by capture-time origin, so the edge
        removal only stops *new* traffic.
        """
        parent = element.parent
        if parent is not None and element in parent.children:
            parent.children.remove(element)

    def unlink(self, name: str, members: Iterable[str] | None = None) -> None:
        """Take element ``name`` out of its parent's fan-out.

        New scheduling rounds stop reaching the subtree immediately;
        everything already in flight drains normally (replies route to
        their captured origins).  The root cannot be unlinked.

        ``members`` names the subtree being taken dark (defaults to the
        subtree under ``name`` in the current hierarchy).  Several
        subtrees may be dark at once — the basis of concurrent region
        migration — but they must be disjoint: overlapping
        registrations, including unlinking the same root twice, are
        configuration errors, not drains.
        """
        element = self.element(name)
        if element is self.root:
            raise DeploymentError("cannot unlink the root agent")
        if members is not None:
            scope = frozenset(str(member) for member in members)
        else:
            by_name = {str(node): node for node in self.hierarchy}
            scope = (
                frozenset(
                    str(node)
                    for node in self.hierarchy.subtree(by_name[name])
                )
                if name in by_name
                else frozenset((name,))
            )
        for other, other_scope in self._unlinked.items():
            overlap = scope & other_scope
            if overlap:
                raise DeploymentError(
                    f"cannot unlink {name!r}: nodes {sorted(overlap)} are "
                    f"already dark under unlinked subtree {other!r} "
                    "(concurrent regions must be disjoint)"
                )
        self._unwire(element)
        self._unlinked[name] = scope
        if self.obs.enabled:
            self.obs.tracer.event(
                self.sim.now, "migration", "unlink",
                root=name, members=len(scope),
            )

    @property
    def unlinked_subtrees(self) -> dict[str, frozenset[str]]:
        """Snapshot of the subtrees currently held out of the fan-out."""
        return dict(self._unlinked)

    def _link(self, element, parent_name: str) -> None:
        parent = self.agents.get(parent_name)
        if parent is None:
            raise DeploymentError(
                f"cannot link under {parent_name!r}: not a deployed agent"
            )
        self._unwire(element)
        element.parent = parent
        parent.children.append(element)
        # A re-homed element is back in the fan-out: if it anchored a
        # dark subtree, that registration is over.
        self._unlinked.pop(element.name, None)

    def ensure_linked(self, name: str, parent_name: str) -> None:
        """Re-home ``name`` under ``parent_name`` unless already there.

        The resume half of a drain: region roots that kept their parent
        (for instance a role change in place) were unlinked for the
        drain and need the fan-out edge restored; nodes the plan already
        moved are left untouched.
        """
        element = self.element(name)
        parent = self.agents.get(parent_name)
        if parent is None:
            raise DeploymentError(
                f"cannot resume {name!r} under {parent_name!r}: "
                "not a deployed agent"
            )
        if element not in parent.children:
            self._link(element, parent_name)
        self._unlinked.pop(name, None)

    def region_busy(self, names: Iterable[str]) -> bool:
        """Whether any listed element still holds queued or in-flight work.

        The drain-quiet predicate of a live migration: names without a
        deployed element (already removed, not yet attached) count as
        quiet.
        """
        for name in names:
            element = self.agents.get(name) or self.servers.get(name)
            if element is None:
                continue
            if element.resource.is_busy or element.resource.queue_length:
                return True
            if element.in_flight:
                return True
        return False

    def region_busy_predicate(self, names: Iterable[str]):
        """A zero-argument drain-quiet probe over a fixed name set.

        Captures ``names`` once, so concurrent migrations can hand one
        predicate per dark region to
        :meth:`~repro.sim.engine.Simulator.run_until_condition` without
        re-materializing membership on every event.
        """
        snapshot = tuple(str(name) for name in names)
        return lambda: self.region_busy(snapshot)

    def apply_migration(self, steps) -> None:
        """Execute the structural steps of one migration-plan region.

        Steps are :class:`~repro.deploy.migration.MigrationStep` in plan
        order; ``drain``/``resume`` brackets are ignored here (the
        caller paces them against the engine).  Replaced elements (role
        changes) and removed elements are dropped from the fan-out only:
        the Python objects stay alive until their in-flight work drains,
        exactly like a decommissioned daemon finishing its last call.
        """
        for step in steps:
            if not step.is_structural:
                continue
            name = str(step.node)
            if step.op == "attach":
                element = self._make_element(name, step.power, step.role)
                self._link(element, str(step.parent))
            elif step.op == "move":
                self._link(self.element(name), str(step.parent))
            elif step.op == "detach":
                self._unwire(self.element(name))
                self.agents.pop(name, None)
                self.servers.pop(name, None)
                self._unlinked.pop(name, None)
                # An evicted/removed node takes its health annotations
                # with it; a later re-attach starts clean.
                self.degraded.pop(name, None)
            elif step.op in ("promote", "demote"):
                old = self.element(name)
                parent = old.parent
                position = -1
                if parent is not None and old in parent.children:
                    position = parent.children.index(old)
                self._unwire(old)
                if step.op == "promote":
                    self.servers.pop(name, None)
                    replacement = self._make_element(
                        name, old.power, Role.AGENT
                    )
                else:
                    if getattr(old, "children", None):
                        raise DeploymentError(
                            f"cannot demote agent {name!r}: it still has "
                            f"{len(old.children)} children"
                        )
                    self.agents.pop(name, None)
                    replacement = self._make_element(
                        name, old.power, Role.SERVER
                    )
                replacement.parent = parent
                if parent is not None and position >= 0:
                    parent.children.insert(position, replacement)
            else:
                raise DeploymentError(
                    f"unknown migration step op {step.op!r}"
                )

    def complete_migration(self, target: Hierarchy) -> None:
        """Swap in the target hierarchy after its plan has been applied.

        Verifies that the element registry matches the target's node
        set, role by role, and that the root element is unchanged —
        the client layer keeps its reference across live migrations.
        Fan-out lists are normalized to the target's child order, so a
        migrated platform is wired identically to a fresh build of the
        same tree (the serial fan-out makes child order part of the
        deployment, not an accident of migration history).
        """
        target.validate(strict=False)
        expected_agents = {str(n) for n in target.agents}
        expected_servers = {str(n) for n in target.servers}
        if (
            set(self.agents) != expected_agents
            or set(self.servers) != expected_servers
        ):
            raise DeploymentError(
                "migration left the element registry inconsistent: "
                f"agents {sorted(set(self.agents) ^ expected_agents)}, "
                f"servers {sorted(set(self.servers) ^ expected_servers)} "
                "differ from the target hierarchy"
            )
        if self.agents[str(target.root)] is not self.root:
            raise DeploymentError(
                "live migration must preserve the root element"
            )
        for node in target.agents:
            agent = self.agents[str(node)]
            expected = [str(child) for child in target.children(node)]
            wired = {element.name for element in agent.children}
            # Under oracle semantics partitioned roots are legitimately
            # absent from the live fan-out and the normalization keeps
            # them dark.  Under detection, partitions never touch the
            # wiring (the edges stay up; messages just vanish), so the
            # normalization must not sever them either.
            dark = (
                {name for name in expected if name in self._partitioned}
                if self.detection is None
                else set()
            )
            if wired != set(expected) and wired != set(expected) - dark:
                raise DeploymentError(
                    f"agent {node!r} wiring diverges from the target: "
                    f"has {sorted(wired)}, expected {sorted(expected)}"
                )
            agent.children = [
                self._element(name)
                for name in expected
                if self.detection is not None
                or name not in self._partitioned
            ]
        self.hierarchy = target
        self._unlinked.clear()
        # Partitions are *network* conditions; a migration cannot heal
        # them.  Re-scope surviving registrations to the new tree (the
        # fan-out normalization above already re-severed their edges).
        if self._partitioned:
            by_name = {str(node): node for node in target}
            self._partitioned = {
                root: frozenset(
                    str(node) for node in target.subtree(by_name[root])
                )
                for root in self._partitioned
                if root in by_name
            }

    def placement_signature(self) -> tuple:
        """Name-sorted ``(name, parent, role)`` rows of the live elements.

        Built from the element registry and its wiring — not from
        :attr:`hierarchy` — so it describes what is actually deployed
        right now, mid-migration surgery included.  The control plane's
        registry tests compare this against the committed deployment
        tree to pin "registry truth == middleware truth" after every
        applied generation.
        """
        rows = []
        for name, agent in self.agents.items():
            parent = agent.parent
            rows.append(
                (name, parent.name if parent is not None else None, "agent")
            )
        for name, server in self.servers.items():
            parent = server.parent
            rows.append(
                (name, parent.name if parent is not None else None, "server")
            )
        return tuple(sorted(rows))

    # ------------------------------------------------------------------ #
    # failure surgery (fault injection)

    def _subtree_names(self, name: str) -> frozenset[str]:
        """Members of the subtree rooted at ``name``, per the hierarchy.

        The logical tree, not the live fan-out, defines membership:
        partitioned sub-subtrees are unwired from their parents but are
        still part of the deployment a crash takes down.
        """
        by_name = {str(node): node for node in self.hierarchy}
        if name in by_name:
            return frozenset(
                str(node) for node in self.hierarchy.subtree(by_name[name])
            )
        return frozenset((name,))

    def fail_server(self, name: str) -> tuple[tuple[str, ...], int]:
        """Crash a single server node.

        Returns ``(affected node names, dead-lettered conversations)``.
        """
        if name not in self.servers:
            raise DeploymentError(
                f"cannot fail server {name!r}: not a deployed server"
            )
        return self._fail_elements(frozenset((name,)))

    def fail_subtree(self, name: str) -> tuple[tuple[str, ...], int]:
        """Crash element ``name`` and, for agents, its whole subtree.

        The correlated-failure model: an agent dying takes its region
        with it (a rack, a site, a cluster partition that never heals).
        Returns ``(affected node names, dead-lettered conversations)``.
        """
        element = self.element(name)
        if element is self.root:
            raise DeploymentError("cannot fail the root agent")
        if name in self.servers:
            return self._fail_elements(frozenset((name,)))
        return self._fail_elements(self._subtree_names(name))

    def fail_silent(self, name: str) -> tuple[str, ...]:
        """Crash ``name`` (and its subtree) *without telling anyone*.

        The detection-mode crash: every member's resource is halted (work
        in progress vanishes, new deliveries are black-holed) and marked
        unreachable, but the registries, the hierarchy, and the fan-out
        are all left intact — the rest of the platform only learns of
        the death through timed-out conversations, and the structural
        surgery (:meth:`fail_subtree`) happens later, when the control
        plane *confirms* the failure.  Returns the affected names.
        """
        element = self.element(name)
        if element is self.root:
            raise DeploymentError("cannot fail the root agent")
        members = (
            frozenset((name,))
            if name in self.servers
            else self._subtree_names(name)
        )
        for member in sorted(members):
            el = self.agents.get(member) or self.servers.get(member)
            if el is None:
                continue
            el.resource.halt()
            el.reachable = False
        return tuple(sorted(members))

    def _fail_elements(self, names: frozenset[str]) -> tuple[tuple[str, ...], int]:
        """Kill ``names`` (a subtree-closed set) in one atomic operation.

        Five steps, each deterministic: unwire the topmost failed
        elements from the fan-out; halt every failed resource (work in
        progress vanishes — crashed daemons do not finish their calls);
        deregister; dead-letter in-flight service conversations on
        failed servers and resubmit them through the surviving tree;
        synthesize the scheduling replies surviving agents were still
        awaiting from failed children.  Finally the hierarchy is pruned
        to the survivors — observed state is the source of truth the
        control plane reconciles against.
        """
        if self.root.name in names:
            raise DeploymentError("cannot fail the root agent")
        for name in sorted(names):
            element = self.agents.get(name) or self.servers.get(name)
            if element is None:
                continue
            parent = element.parent
            if parent is None or parent.name not in names:
                self._unwire(element)
        for name in sorted(names):
            element = self.agents.get(name) or self.servers.get(name)
            if element is None:
                continue
            element.resource.halt()
            self.agents.pop(name, None)
            self.servers.pop(name, None)
            self._unlinked.pop(name, None)
            self._partitioned.pop(name, None)
            self.degraded.pop(name, None)
        dead = 0
        for request_id in sorted(self._in_service):
            request, on_complete, on_scheduled, server_name = (
                self._in_service[request_id]
            )
            if server_name in names:
                del self._in_service[request_id]
                dead += 1
                # Resubmit-elsewhere: the conversation restarts from a
                # fresh scheduling round with the caller's callbacks
                # intact, so on_complete still fires exactly once.
                self.resubmissions += 1
                self.submit(request.client_name, on_complete, on_scheduled)
        self.dead_letters += dead
        if dead and self.obs.enabled:
            self.obs.tracer.event(
                self.sim.now, "middleware", "dead_letters",
                count=dead, nodes=len(names),
            )
        for agent_name in sorted(self.agents):
            agent = self.agents[agent_name]
            for name in sorted(names):
                agent.child_failed(name)
        pruned = self.hierarchy.copy()
        by_name = {str(node): node for node in pruned}
        doomed = [by_name[name] for name in names if name in by_name]
        for node in sorted(doomed, key=pruned.depth, reverse=True):
            pruned.remove_leaf(node)
        pruned.validate(strict=False)
        self.hierarchy = pruned
        self.failed_nodes.update(names)
        return tuple(sorted(names)), dead

    def degrade_node(self, name: str, factor: float) -> None:
        """Multiply node ``name``'s resource rate by ``factor``.

        The slow-node (straggler) model: the node keeps answering
        predictions and accepting work at ``factor`` of its nominal
        speed, while its availability estimate still reports *nominal*
        backlog seconds — exactly the pathology that makes stragglers
        attract work in prediction-based schedulers.  ``factor=1.0``
        restores nominal speed.
        """
        element = self.element(name)
        element.resource.set_rate(factor)
        if factor == 1.0:
            self.degraded.pop(name, None)
        else:
            self.degraded[name] = factor

    def partition(self, name: str) -> tuple[str, ...]:
        """Cut the subtree at ``name`` off the fan-out (healable).

        A control-plane partition: new scheduling rounds stop reaching
        the subtree, in-flight work drains normally (the transport holds
        established flows), and :meth:`heal` can reconnect it exactly.
        Distinct from :meth:`unlink` only in bookkeeping — partitions
        are *observed faults* the monitor reports, not migration drains.
        """
        element = self.element(name)
        if element is self.root:
            raise DeploymentError("cannot partition the root agent")
        if name in self._partitioned:
            raise DeploymentError(f"subtree {name!r} is already partitioned")
        members = self._subtree_names(name)
        for other, other_scope in self._partitioned.items():
            overlap = members & other_scope
            if overlap:
                raise DeploymentError(
                    f"cannot partition {name!r}: nodes {sorted(overlap)} "
                    f"are already dark under partition {other!r}"
                )
        if self.detection is None:
            self._unwire(element)
        else:
            # Silent partition: the fan-out edge stays up, but every
            # delivery into the subtree vanishes — parents discover the
            # cut only through watchdog timeouts.
            for member in sorted(members):
                el = self.agents.get(member) or self.servers.get(member)
                if el is not None:
                    el.reachable = False
        self._partitioned[name] = members
        return tuple(sorted(members))

    def heal(self, name: str) -> tuple[str, ...] | None:
        """Reconnect a partitioned subtree; None if there is none to heal.

        The parent's fan-out is rebuilt in hierarchy child order, so a
        partition+heal cycle restores wiring identical to a fresh build
        of the same tree — partitions leave no structural scar.
        """
        members = self._partitioned.pop(name, None)
        if members is None:
            return None
        if self.detection is not None:
            # Silent heal: the wiring never changed; flip reachability
            # back on and let the next answered conversation clear the
            # accumulated suspicion.
            restored = False
            for member in sorted(members):
                el = self.agents.get(member) or self.servers.get(member)
                if el is not None:
                    el.reachable = True
                    restored = True
            return tuple(sorted(members)) if restored else None
        element = self.agents.get(name) or self.servers.get(name)
        by_name = {str(node): node for node in self.hierarchy}
        node = by_name.get(name)
        if element is None or node is None:
            return None
        parent = self.hierarchy.parent(node)
        if parent is None or str(parent) not in self.agents:
            return None
        parent_agent = self.agents[str(parent)]
        element.parent = parent_agent
        rebuilt = []
        previously_wired = {child.name for child in parent_agent.children}
        for child in self.hierarchy.children(parent):
            child_name = str(child)
            if child_name in self._partitioned:
                continue  # a sibling partition stays dark
            child_element = self.agents.get(child_name) or self.servers.get(
                child_name
            )
            if child_element is None:
                continue
            if child_name == name or child_name in previously_wired:
                rebuilt.append(child_element)
        # Defensive: keep any wired child the hierarchy does not list
        # (cannot happen outside a migration window, but never drop
        # live edges silently).
        known = {child.name for child in rebuilt}
        for child in parent_agent.children:
            if child.name not in known:
                rebuilt.append(child)
        parent_agent.children = rebuilt
        return tuple(sorted(members))

    @property
    def partitioned_subtrees(self) -> dict[str, frozenset[str]]:
        """Snapshot of partitioned subtrees, root -> member names."""
        return dict(self._partitioned)

    # ------------------------------------------------------------------ #
    # client-facing API

    def submit(
        self,
        client_name: str,
        on_complete: Callable[[Request], None],
        on_scheduled: Callable[[Request], None] | None = None,
    ) -> Request:
        """Submit a full two-phase request on behalf of ``client_name``.

        The scheduling phase starts immediately; once the root returns the
        selected server, the service phase is issued automatically.
        ``on_complete`` fires with the finished :class:`Request`.

        During a live migration, a scheduling round can race the
        reconfiguration (no route found, or the selected server migrated
        away before service); such requests are transparently
        resubmitted, so ``on_complete`` still fires exactly once, while
        ``on_scheduled`` fires once per scheduling round — possibly
        more than once for one logical request.
        """
        request = self._start_schedule(client_name)

        def scheduled(req: Request) -> None:
            if on_scheduled is not None:
                on_scheduled(req)
            if req.selected_server is None:
                # Every route was dark — possible only transiently, while
                # a live migration drains the last subtree an agent had.
                # Resubmit; the retry pays a fresh scheduling round trip.
                self.resubmissions += 1
                self.submit(client_name, on_complete, on_scheduled)
                return
            self._start_service(req, on_complete, on_scheduled)

        self._schedule_waiters[request.request_id] = scheduled
        return request

    def submit_schedule_only(
        self, client_name: str, on_scheduled: Callable[[Request], None]
    ) -> Request:
        """Run only the scheduling phase (used by calibration campaigns)."""
        request = self._start_schedule(client_name)
        self._schedule_waiters[request.request_id] = on_scheduled
        return request

    # ------------------------------------------------------------------ #

    def _start_schedule(self, client_name: str) -> Request:
        self._next_id += 1
        request = Request(
            request_id=self._next_id,
            client_name=client_name,
            submitted_at=self.sim.now,
        )
        self._requests[request.request_id] = request
        # Client -> root transfer: the client side is not a modelled
        # resource; the root pays its receive time in receive_request.
        self.root.receive_request(request.request_id)
        return request

    def _on_scheduled(self, request_id: int, server_name: str | None) -> None:
        request = self._requests[request_id]
        request.scheduled_at = self.sim.now
        request.selected_server = server_name
        waiter = self._schedule_waiters.pop(request_id, None)
        if waiter is not None:
            waiter(request)

    def _start_service(
        self,
        request: Request,
        on_complete: Callable[[Request], None],
        on_scheduled: Callable[[Request], None] | None = None,
    ) -> None:
        server = self.servers.get(request.selected_server or "")
        if server is None:
            # The selected server was migrated away (or crashed) between
            # scheduling and service — reschedule through the current
            # tree, with the caller's callbacks intact.
            self.resubmissions += 1
            self.submit(request.client_name, on_complete, on_scheduled)
            return
        if self.detection is not None and (
            server.resource.is_halted or not server.reachable
        ):
            # Detection mode: the client cannot know the server is dead
            # or cut off — the connection attempt hangs, times out, and
            # retries up the backoff ladder before giving up and paying
            # a fresh scheduling round.
            self._retry_service(request, on_complete, on_scheduled,
                                server.name, 0)
            return
        self._begin_service(request, on_complete, on_scheduled, server)

    def _retry_service(
        self,
        request: Request,
        on_complete: Callable[[Request], None],
        on_scheduled: Callable[[Request], None] | None,
        server_name: str,
        attempt: int,
    ) -> None:
        """One rung of the client-side service-connection timeout ladder.

        These conversations are never entered into ``_in_service`` (no
        server accepted them), so a later excision of the dead server
        cannot double-resubmit them.
        """
        detection = self.detection
        wait = detection.timeout * (detection.backoff**attempt)

        def expired() -> None:
            if self.liveness is not None:
                self.liveness.note_timeout(server_name, self.sim.now)
            if self.obs.enabled:
                self.obs.tracer.event(
                    self.sim.now, "watchdog", "timeout",
                    node=server_name, attempt=attempt, side="client",
                )
            server = self.servers.get(server_name)
            if (
                server is not None
                and server.reachable
                and not server.resource.is_halted
            ):
                # The peer came back (a healed partition) before the
                # ladder ran out: the retry connects and service runs.
                self._begin_service(request, on_complete, on_scheduled,
                                    server)
                return
            if attempt < detection.retries:
                self._retry_service(request, on_complete, on_scheduled,
                                    server_name, attempt + 1)
                return
            # Ladder exhausted: give the conversation to a surviving
            # server through a fresh scheduling round.
            self.dead_letters += 1
            self.resubmissions += 1
            if self.obs.enabled:
                self.obs.tracer.event(
                    self.sim.now, "watchdog", "gaveup",
                    node=server_name, side="client",
                )
            self.submit(request.client_name, on_complete, on_scheduled)

        self.sim.schedule(wait, expired)

    def _begin_service(
        self,
        request: Request,
        on_complete: Callable[[Request], None],
        on_scheduled: Callable[[Request], None] | None,
        server: ServerElement,
    ) -> None:
        request.service_started_at = self.sim.now
        self._in_service[request.request_id] = (
            request, on_complete, on_scheduled, server.name
        )

        def complete() -> None:
            if self._in_service.pop(request.request_id, None) is None:
                # Dead-lettered while in flight: the conversation was
                # already resubmitted elsewhere, this late completion
                # must not double-count.
                return
            request.completed_at = self.sim.now
            self.completions.record(self.sim.now)
            on_complete(request)

        server.receive_service(request.request_id, complete)

    # ------------------------------------------------------------------ #
    # observability

    def utilization_report(self) -> dict[str, float]:
        """Utilization of every node resource at the current time."""
        report = {}
        for name, agent in self.agents.items():
            report[name] = agent.resource.utilization()
        for name, server in self.servers.items():
            report[name] = server.resource.utilization()
        return report

    def bottleneck(self) -> tuple[str, float]:
        """The busiest node and its utilization — the simulated analogue
        of the model's limiting element."""
        report = self.utilization_report()
        node = max(report, key=lambda k: report[k])
        return node, report[node]

    def service_counts(self) -> dict[str, int]:
        """Completed service executions per server (Eq. 8's N_i)."""
        return {
            name: server.services_done for name, server in self.servers.items()
        }

    def assign_fluid_rates(
        self, total_rate: float
    ) -> tuple[tuple[str, float], ...]:
        """Distribute an aggregate fluid load over the deployed servers.

        The hybrid population's served rate (integrated analytically by
        :class:`~repro.sim.fluid.FluidPopulation`) is attributed to
        servers in proportion to their power — the allocation the
        paper's homogeneous-throughput model implies at saturation.
        Each server's :attr:`~repro.middleware.server.ServerElement.
        fluid_rate` is updated (bookkeeping only; nothing enters a
        resource queue) and the ``(name, rate)`` pairs are returned in
        sorted name order.  Deterministic: pure arithmetic over the
        current registry, summed with ``fsum`` so both kernel backends
        agree bit for bit.
        """
        names = sorted(self.servers)
        if total_rate <= 0.0 or not names:
            for name in names:
                self.servers[name].fluid_rate = 0.0
            return tuple((name, 0.0) for name in names)
        total_power = math.fsum(self.servers[name].power for name in names)
        allocation = []
        for name in names:
            server = self.servers[name]
            share = (
                total_rate * (server.power / total_power)
                if total_power > 0.0
                else total_rate / len(names)
            )
            server.fluid_rate = share
            allocation.append((name, share))
        return tuple(allocation)

    def total_completed(self) -> int:
        return self.completions.count
