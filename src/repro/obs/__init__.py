"""Deterministic tracing and metrics (``repro.obs``).

The observability substrate of the control plane:

* :mod:`repro.obs.trace` — a :class:`~repro.obs.trace.Tracer`
  recording typed spans/events keyed by **simulation time**, with
  exporters to byte-identical JSONL and to the Chrome
  ``chrome://tracing`` / Perfetto trace-event format;
* :mod:`repro.obs.metrics` — a counter/gauge/histogram registry whose
  frozen per-epoch :class:`~repro.obs.metrics.MetricsSnapshot` rides
  on every :class:`~repro.control.loop.EpochRecord`, plus
  :class:`~repro.obs.metrics.MetricsDiff` for window-over-window
  deltas;
* :mod:`repro.obs.probe` — the near-zero-cost instrumentation layer:
  the module-level :data:`~repro.obs.probe.NULL_OBS` handle (disabled
  sites pay one attribute check), and the
  :class:`~repro.obs.probe.Stopwatch` that centralizes every
  wall-clock read the overhead telemetry needs.

**Determinism contract**: same seed ⇒ bit-identical trace and
snapshots, serial or process-pool; wall-clock lives only in
clearly-marked profiling fields (``TraceSpan.wall``,
``Stopwatch.total``) that never enter a
:class:`~repro.control.loop.ControlTimeline` — and this package is
the only one allowed to read the wall clock at all
(``tools/check_wallclock.py`` lints the rest of the tree).

Enable tracing on a controller run by passing an :class:`Obs`::

    from repro.obs import Obs

    obs = Obs()
    timeline = session.control_run(pool, work, trace=trace, obs=obs)
    open("trace.json", "w").write(obs.tracer.to_chrome())
"""

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    HistogramStats,
    MetricsDiff,
    MetricsRegistry,
    MetricsSnapshot,
)
from repro.obs.probe import NULL_OBS, NULL_TRACER, NullTracer, Obs, Stopwatch
from repro.obs.trace import (
    Tracer,
    TraceEvent,
    TraceFlow,
    TraceSample,
    TraceSpan,
)

__all__ = [
    "Obs",
    "NULL_OBS",
    "NullTracer",
    "NULL_TRACER",
    "Stopwatch",
    "Tracer",
    "TraceEvent",
    "TraceSpan",
    "TraceSample",
    "TraceFlow",
    "Counter",
    "Gauge",
    "Histogram",
    "HistogramStats",
    "MetricsRegistry",
    "MetricsSnapshot",
    "MetricsDiff",
]
