"""Metrics: counters, gauges, histograms, frozen snapshots and diffs.

A :class:`MetricsRegistry` holds named instruments the control plane
updates as it runs — served/dead-lettered/resubmitted conversations,
queue depths, engine heap compactions, :class:`HierarchyEvaluator
<repro.core.kernels.HierarchyEvaluator>` cache hit rates, detection
latencies.  At every epoch boundary the registry is frozen into a
:class:`MetricsSnapshot` that is attached to the epoch's
:class:`~repro.control.loop.EpochRecord`, and two snapshots subtract
into a :class:`MetricsDiff` for window-over-window deltas.

**Determinism contract.**  Every value that reaches a snapshot is a
pure function of simulation state (the registry is fed from engine and
middleware counters, never from wall clocks), so snapshots — and the
timelines that carry them — compare equal across repeated runs,
serial vs process-pool sweeps, and tracing enabled vs disabled.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "HistogramStats",
    "MetricsRegistry",
    "MetricsSnapshot",
    "MetricsDiff",
]


class Counter:
    """A monotonically non-decreasing cumulative count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int | float = 1) -> None:
        """Add ``amount`` (default 1) to the running total."""
        self.value += amount

    def set_total(self, total: int | float) -> None:
        """Overwrite the running total (adopting an external counter)."""
        self.value = total


class Gauge:
    """A point-in-time value, overwritten at every observation."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        """Record the current value."""
        self.value = value


@dataclass(frozen=True)
class HistogramStats:
    """Frozen summary of one histogram: count/total/min/max (+ mean)."""

    count: int = 0
    total: float = 0.0
    min: float = 0.0
    max: float = 0.0

    @property
    def mean(self) -> float:
        """Arithmetic mean of the observations (0 when empty)."""
        return self.total / self.count if self.count else 0.0


class Histogram:
    """A stream summary: observation count, sum, min and max.

    Enough to answer "how many, how much, how spread" for the low-rate
    streams the control plane cares about (detection latencies,
    migration downtimes) without the bucket bookkeeping a full
    histogram would cost on every observation.
    """

    __slots__ = ("count", "total", "_min", "_max")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self._min = 0.0
        self._max = 0.0

    def observe(self, value: float) -> None:
        """Fold one observation into the summary."""
        if self.count == 0:
            self._min = value
            self._max = value
        else:
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value
        self.count += 1
        self.total += value

    def stats(self) -> HistogramStats:
        """The frozen summary of everything observed so far."""
        return HistogramStats(
            count=self.count, total=self.total, min=self._min, max=self._max
        )


@dataclass(frozen=True)
class MetricsSnapshot:
    """One frozen, hashable view of a registry at an epoch boundary.

    Instrument values are stored as sorted ``(name, value)`` tuples so
    snapshots compare (and pickle) deterministically — they ride on
    :class:`~repro.control.loop.EpochRecord`, whose bit-identity across
    equal-seed runs the test suite asserts.
    """

    counters: tuple = ()
    gauges: tuple = ()
    histograms: tuple = ()

    def value(self, name: str, default=None):
        """Look ``name`` up among counters first, then gauges."""
        for key, value in self.counters:
            if key == name:
                return value
        for key, value in self.gauges:
            if key == name:
                return value
        return default

    def histogram(self, name: str) -> HistogramStats | None:
        """The frozen stats of histogram ``name`` (None if absent)."""
        for key, stats in self.histograms:
            if key == name:
                return stats
        return None

    def as_dict(self) -> dict:
        """Plain nested dict (for JSON export of per-epoch metrics)."""
        return {
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "histograms": {
                name: {
                    "count": stats.count,
                    "total": stats.total,
                    "min": stats.min,
                    "max": stats.max,
                }
                for name, stats in self.histograms
            },
        }

    def diff(self, earlier: "MetricsSnapshot") -> "MetricsDiff":
        """Window-over-window deltas from ``earlier`` to this snapshot."""
        counter_deltas = tuple(
            (name, value - dict(earlier.counters).get(name, 0))
            for name, value in self.counters
        )
        gauge_pairs = tuple(
            (name, dict(earlier.gauges).get(name), value)
            for name, value in self.gauges
        )
        histogram_deltas = []
        earlier_hists = dict(earlier.histograms)
        for name, stats in self.histograms:
            before = earlier_hists.get(name, HistogramStats())
            histogram_deltas.append(
                (
                    name,
                    HistogramStats(
                        count=stats.count - before.count,
                        total=stats.total - before.total,
                        min=stats.min,
                        max=stats.max,
                    ),
                )
            )
        return MetricsDiff(
            counters=counter_deltas,
            gauges=gauge_pairs,
            histograms=tuple(histogram_deltas),
        )


@dataclass(frozen=True)
class MetricsDiff:
    """The delta between two snapshots (one observation window).

    Counters carry their increment over the window, gauges their
    ``(before, after)`` pair, histograms the window's observation
    count/sum (min/max are the cumulative ones of the later snapshot —
    a stream summary cannot un-observe).
    """

    counters: tuple = ()
    gauges: tuple = ()
    histograms: tuple = ()

    def value(self, name: str, default=None):
        """The window increment of counter ``name``."""
        for key, value in self.counters:
            if key == name:
                return value
        return default

    def describe(self) -> str:
        """One line per moved counter/gauge — the readable delta."""
        parts = [
            f"{name} +{delta:g}"
            for name, delta in self.counters
            if delta
        ]
        parts.extend(
            f"{name} {before:g}->{after:g}"
            for name, before, after in self.gauges
            if before is not None and before != after
        )
        return ", ".join(parts) if parts else "(no change)"


class MetricsRegistry:
    """Named instruments, created on first use, frozen on demand.

    ``counter``/``gauge``/``histogram`` get-or-create, so call sites
    never pre-declare; :meth:`snapshot` freezes everything into a
    :class:`MetricsSnapshot`; :meth:`reset` drops all instruments (a
    controller run's scope — :meth:`ControlLoop.run
    <repro.control.loop.ControlLoop.run>` resets, so a reused registry
    yields the same snapshots as a fresh one).
    """

    __slots__ = ("_counters", "_gauges", "_histograms")

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        """The counter called ``name``, created on first use."""
        instrument = self._counters.get(name)
        if instrument is None:
            instrument = self._counters[name] = Counter()
        return instrument

    def gauge(self, name: str) -> Gauge:
        """The gauge called ``name``, created on first use."""
        instrument = self._gauges.get(name)
        if instrument is None:
            instrument = self._gauges[name] = Gauge()
        return instrument

    def histogram(self, name: str) -> Histogram:
        """The histogram called ``name``, created on first use."""
        instrument = self._histograms.get(name)
        if instrument is None:
            instrument = self._histograms[name] = Histogram()
        return instrument

    def snapshot(self) -> MetricsSnapshot:
        """Freeze every instrument into a sorted, hashable snapshot."""
        return MetricsSnapshot(
            counters=tuple(
                (name, counter.value)
                for name, counter in sorted(self._counters.items())
            ),
            gauges=tuple(
                (name, gauge.value)
                for name, gauge in sorted(self._gauges.items())
            ),
            histograms=tuple(
                (name, histogram.stats())
                for name, histogram in sorted(self._histograms.items())
            ),
        )

    def reset(self) -> None:
        """Drop every instrument (start of a controller run)."""
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()
