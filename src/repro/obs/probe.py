"""Near-zero-cost instrumentation points: the null tracer and the
:class:`Obs` handle.

Instrumented code never branches on "is observability configured" —
it holds an :class:`Obs` (defaulting to the module-level
:data:`NULL_OBS`) and guards every recording site with a single
attribute check::

    if self._obs.enabled:
        self._obs.tracer.event(self.sim.now, "fault", "crash", node=name)

Disabled-mode overhead is therefore one attribute load and one branch
per site (budgeted by the ``obs_overhead`` perfsuite cell); the null
tracer's methods additionally no-op defensively, so even an unguarded
call is harmless.

This module (together with :mod:`repro.obs.trace`) is the **only**
place in the library allowed to read the wall clock — the
:class:`Stopwatch` below centralizes every ``time.perf_counter()``
pairing that used to be scattered through ``control/loop.py``, and
``tools/check_wallclock.py`` lints the rest of the tree against
wall-clock leaks (the standing determinism hazard: wall time must
never enter a :class:`~repro.control.loop.ControlTimeline`).
"""

from __future__ import annotations

import time

__all__ = ["NullTracer", "NULL_TRACER", "Obs", "NULL_OBS", "Stopwatch"]


class NullTracer:
    """A tracer that records nothing — the disabled-mode stand-in.

    Mirrors the :class:`~repro.obs.trace.Tracer` recording API with
    no-ops, so instrumentation sites that skip the ``enabled`` guard
    still cost only a method call.  ``enabled`` is ``False``, which is
    what guarded sites actually check.
    """

    __slots__ = ()

    #: Guarded sites branch on this; it is the whole point of the class.
    enabled = False

    def clear(self) -> None:
        """Nothing recorded, nothing to drop."""

    def event(self, ts, cat, name, **args) -> None:
        """Discard an instant event."""

    def begin(self, ts, cat, name, **args) -> int:
        """Discard a span opening; the returned id is inert."""
        return -1

    def end(self, ts, span_id, **args) -> None:
        """Discard a span closing."""

    def span(self, ts, ts_end, cat, name, **args) -> None:
        """Discard a complete span."""

    def sample(self, ts, name, value) -> None:
        """Discard a counter sample."""

    def flow(self, ts, cat, flow_id, phase) -> None:
        """Discard a flow-arrow end."""


#: The module-level null tracer every un-configured component shares.
NULL_TRACER = NullTracer()


class Stopwatch:
    """Accumulating wall-clock context manager — overhead telemetry.

    The one sanctioned way to measure controller bookkeeping cost:
    every ``with stopwatch:`` block adds its wall duration to
    :attr:`total`.  Centralizing the measurement here (instead of
    hand-paired ``time.perf_counter()`` deltas at each call site)
    removes the double-count hazard new control-loop stages used to
    carry, and keeps wall-clock reads inside :mod:`repro.obs` where
    the determinism lint allows them.  Nested blocks are safe (each
    level pairs its own start), though the outer block then includes
    the inner time once, as wall time actually elapsed.

    The accumulated total is **telemetry only** — callers expose it
    next to, never inside, deterministic results.
    """

    __slots__ = ("total", "_starts")

    def __init__(self) -> None:
        self.total = 0.0
        self._starts: list[float] = []

    def reset(self) -> None:
        """Zero the accumulated total (one controller run's scope)."""
        self.total = 0.0
        self._starts.clear()

    def __enter__(self) -> "Stopwatch":
        """Start timing one block."""
        self._starts.append(time.perf_counter())
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        """Stop timing the innermost open block and accumulate it."""
        self.total += time.perf_counter() - self._starts.pop()


class Obs:
    """One observability handle: a tracer plus a metrics registry.

    The single object threaded through
    :class:`~repro.control.loop.ControlLoop`,
    :class:`~repro.middleware.system.MiddlewareSystem` and the fault
    injector.  ``enabled`` mirrors the tracer's flag so instrumented
    sites pay one attribute check; :attr:`metrics` may be ``None``
    (the null handle), in which case components that need a registry
    create their own private one.
    """

    __slots__ = ("tracer", "metrics", "enabled")

    def __init__(self, tracer=None, metrics=None):
        if tracer is None:
            from repro.obs.trace import Tracer

            tracer = Tracer()
        if metrics is None and tracer.enabled:
            from repro.obs.metrics import MetricsRegistry

            metrics = MetricsRegistry()
        self.tracer = tracer
        self.metrics = metrics
        self.enabled = bool(tracer.enabled)

    @staticmethod
    def disabled() -> "Obs":
        """The shared null handle (identical to :data:`NULL_OBS`)."""
        return NULL_OBS


#: Shared disabled handle: null tracer, no registry, ``enabled=False``.
NULL_OBS = Obs(tracer=NULL_TRACER, metrics=None)
