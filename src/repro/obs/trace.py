"""Deterministic tracing: typed spans/events keyed by **simulation time**.

A :class:`Tracer` records what the control plane and middleware did —
epoch stages (``simulate``/``observe``/``decide``/``act``), migration
regions and waves, watchdog lifecycles, fault injections, planner
calls, failure detections — as a flat list of typed records, each
stamped with the *simulation* clock of the component that emitted it.

**Determinism contract.**  Everything that identifies a record (time,
category, name, args) is a pure function of the run's inputs, so two
runs with the same seed produce bit-identical traces — asserted by the
test suite across serial and process-pool ``control_sweep`` execution.
Wall-clock profiling is kept in one clearly-marked field
(:attr:`TraceSpan.wall`, measured by the tracer itself so call sites
never touch the wall clock) and is **excluded from every export by
default**; passing ``include_wall=True`` opts into a profiling export
that is *not* reproducible and must never be compared or fed back into
a :class:`~repro.control.loop.ControlTimeline`.

Exports:

* :meth:`Tracer.to_jsonl` — one compact, key-sorted JSON object per
  record, in recording order (the byte-identity format);
* :meth:`Tracer.to_chrome` — the Chrome ``chrome://tracing`` /
  Perfetto trace-event JSON format (complete ``"X"`` events for spans,
  instant ``"i"`` events, counter ``"C"`` samples; simulation seconds
  scaled to microseconds) — load the file via ``chrome://tracing`` or
  https://ui.perfetto.dev to see the run on a timeline.

This module (with :mod:`repro.obs.probe`) is the only place in the
library allowed to read the wall clock; ``tools/check_wallclock.py``
enforces that.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field

__all__ = ["TraceEvent", "TraceSpan", "TraceSample", "TraceFlow", "Tracer"]


@dataclass(frozen=True)
class TraceEvent:
    """One instant event: something that happened at one sim time."""

    #: Simulation time of the occurrence (seconds).
    ts: float
    #: Category — the subsystem vocabulary (``epoch``, ``migration``,
    #: ``fault``, ``detection``, ``watchdog``, ``planner``, ...).
    cat: str
    #: Event name within the category (``crash``, ``expired``, ...).
    name: str
    #: Deterministic payload (node names, counts, latencies).
    args: tuple = ()


@dataclass(frozen=True)
class TraceSpan:
    """One closed span: an interval of simulation time.

    ``wall`` is the clearly-marked **profiling** field: wall seconds
    the span took in the hosting process, measured by the tracer
    between :meth:`Tracer.begin` and :meth:`Tracer.end`.  It is
    ``None`` for spans recorded retroactively via :meth:`Tracer.span`
    and is stripped from exports unless ``include_wall=True``.
    """

    ts: float
    dur: float
    cat: str
    name: str
    args: tuple = ()
    wall: float | None = field(default=None, compare=False)


@dataclass(frozen=True)
class TraceSample:
    """One counter sample (renders as a Chrome ``"C"`` counter track)."""

    ts: float
    name: str
    value: float


@dataclass(frozen=True)
class TraceFlow:
    """One end of a flow arrow tying records together across tracks.

    ``flow_id`` correlates the two ends (e.g. a protocol command id);
    ``phase`` is ``"s"`` at the producing end and ``"f"`` at the
    consuming end — the Chrome trace-event flow vocabulary, which the
    exporter emits verbatim so the UI draws the arrow (dispatch → ack
    for the control plane's command protocol).
    """

    ts: float
    cat: str
    flow_id: str
    phase: str  # "s" (start) | "f" (finish)


class Tracer:
    """Deterministic recorder of spans, events and counter samples.

    All recording methods take the simulation time explicitly — the
    tracer has no clock of its own (the wall clock it *does* read goes
    only into the profiling :attr:`TraceSpan.wall` field).  Records
    keep their recording order, which is itself deterministic because
    every emitting site is driven by the simulation.
    """

    __slots__ = ("records", "_open")

    #: Real tracers record; the null tracer's ``False`` is what guarded
    #: instrumentation sites check.
    enabled = True

    def __init__(self) -> None:
        #: Flat record list in recording order (events, spans, samples).
        self.records: list = []
        # span_id -> (ts, cat, name, args, wall_started) for open spans;
        # the id is the index the closed span will occupy.
        self._open: dict[int, tuple] = {}

    # -- recording ----------------------------------------------------- #

    def clear(self) -> None:
        """Drop every record — a controller run's scope.

        :meth:`ControlLoop.run <repro.control.loop.ControlLoop.run>`
        clears its tracer on entry, so a trace always describes exactly
        one run (and a reused :class:`~repro.obs.probe.Obs` exports the
        same bytes a fresh one would).
        """
        self.records.clear()
        self._open.clear()

    def event(self, ts: float, cat: str, name: str, **args) -> None:
        """Record an instant event at sim time ``ts``."""
        self.records.append(
            TraceEvent(ts=ts, cat=cat, name=name, args=_freeze_args(args))
        )

    def begin(self, ts: float, cat: str, name: str, **args) -> int:
        """Open a span at sim time ``ts``; returns its id for :meth:`end`.

        A placeholder keeps the record's position, so traces stay in
        recording order even when spans nest or interleave.
        """
        span_id = len(self.records)
        self.records.append(None)
        self._open[span_id] = (
            ts, cat, name, _freeze_args(args), time.perf_counter()
        )
        return span_id

    def end(self, ts: float, span_id: int, **args) -> None:
        """Close span ``span_id`` at sim time ``ts``.

        Extra ``args`` are appended to the opening ones.  The wall
        duration between begin and end lands in the span's profiling
        field — never in the deterministic payload.
        """
        if span_id < 0:
            return
        ts_start, cat, name, open_args, wall_started = self._open.pop(
            span_id
        )
        self.records[span_id] = TraceSpan(
            ts=ts_start,
            dur=ts - ts_start,
            cat=cat,
            name=name,
            args=open_args + _freeze_args(args),
            wall=time.perf_counter() - wall_started,
        )

    def span(
        self, ts: float, ts_end: float, cat: str, name: str, **args
    ) -> None:
        """Record a complete span retroactively (no wall profiling)."""
        self.records.append(
            TraceSpan(
                ts=ts,
                dur=ts_end - ts,
                cat=cat,
                name=name,
                args=_freeze_args(args),
            )
        )

    def sample(self, ts: float, name: str, value: float) -> None:
        """Record one counter sample (a point on a counter track)."""
        self.records.append(TraceSample(ts=ts, name=name, value=value))

    def flow(self, ts: float, cat: str, flow_id: str, phase: str) -> None:
        """Record one end of a flow arrow (``phase`` ``"s"`` or ``"f"``).

        Emit ``"s"`` at the producing record's time and ``"f"`` with
        the same ``flow_id`` at the consuming record's time; Chrome /
        Perfetto draws the arrow between them.
        """
        if phase not in ("s", "f"):
            raise ValueError(
                f"flow phase must be 's' or 'f', got {phase!r}"
            )
        self.records.append(
            TraceFlow(ts=ts, cat=cat, flow_id=flow_id, phase=phase)
        )

    # -- queries ------------------------------------------------------- #

    def spans(self, cat: str | None = None, name: str | None = None):
        """Closed spans, optionally filtered by category and/or name."""
        return [
            record
            for record in self.records
            if isinstance(record, TraceSpan)
            and (cat is None or record.cat == cat)
            and (name is None or record.name == name)
        ]

    def events(self, cat: str | None = None, name: str | None = None):
        """Instant events, optionally filtered by category and/or name."""
        return [
            record
            for record in self.records
            if isinstance(record, TraceEvent)
            and (cat is None or record.cat == cat)
            and (name is None or record.name == name)
        ]

    def __len__(self) -> int:
        """Number of records (open-span placeholders included)."""
        return len(self.records)

    # -- exports ------------------------------------------------------- #

    def to_jsonl(self, include_wall: bool = False) -> str:
        """The byte-identity export: one JSON object per line.

        Keys are sorted and separators compact, so two equal traces
        serialize to identical bytes.  ``include_wall=True`` adds the
        profiling ``wall`` field to spans — an export that is *not*
        reproducible across runs (and says so via a header line).
        """
        lines = []
        if include_wall:
            lines.append(
                json.dumps(
                    {"type": "meta", "profiling": True},
                    sort_keys=True,
                    separators=(",", ":"),
                )
            )
        for record in self.records:
            obj = _record_object(record, include_wall)
            if obj is None:
                continue
            lines.append(
                json.dumps(obj, sort_keys=True, separators=(",", ":"))
            )
        return "\n".join(lines) + "\n" if lines else ""

    def to_chrome(self, include_wall: bool = False) -> str:
        """Chrome/Perfetto trace-event JSON for ``chrome://tracing``.

        Simulation seconds are scaled to trace microseconds.  Spans
        become complete ``"X"`` events, instants ``"i"`` events and
        counter samples ``"C"`` events; every record rides on ``pid``
        1 with one ``tid`` per category (assigned in sorted category
        order, so the export is deterministic).
        """
        cats = sorted(
            {
                record.cat
                for record in self.records
                if isinstance(record, (TraceEvent, TraceSpan, TraceFlow))
            }
        )
        tid_of = {cat: index + 1 for index, cat in enumerate(cats)}
        sample_tid = len(cats) + 1
        trace_events = []
        for record in self.records:
            if isinstance(record, TraceSpan):
                entry = {
                    "name": record.name,
                    "cat": record.cat,
                    "ph": "X",
                    "ts": record.ts * 1e6,
                    "dur": record.dur * 1e6,
                    "pid": 1,
                    "tid": tid_of[record.cat],
                    "args": dict(record.args),
                }
                if include_wall and record.wall is not None:
                    entry["args"]["wall_seconds"] = record.wall
                trace_events.append(entry)
            elif isinstance(record, TraceEvent):
                trace_events.append(
                    {
                        "name": record.name,
                        "cat": record.cat,
                        "ph": "i",
                        "s": "t",
                        "ts": record.ts * 1e6,
                        "pid": 1,
                        "tid": tid_of[record.cat],
                        "args": dict(record.args),
                    }
                )
            elif isinstance(record, TraceSample):
                trace_events.append(
                    {
                        "name": record.name,
                        "ph": "C",
                        "ts": record.ts * 1e6,
                        "pid": 1,
                        "tid": sample_tid,
                        "args": {"value": record.value},
                    }
                )
            elif isinstance(record, TraceFlow):
                entry = {
                    "name": record.flow_id,
                    "cat": record.cat,
                    "ph": record.phase,
                    "id": record.flow_id,
                    "ts": record.ts * 1e6,
                    "pid": 1,
                    "tid": tid_of[record.cat],
                }
                if record.phase == "f":
                    # Bind the arrowhead to the enclosing slice rather
                    # than the next one (Chrome's flow-event default).
                    entry["bp"] = "e"
                trace_events.append(entry)
        # Thread names make the per-category tracks readable in the UI.
        for cat in cats:
            trace_events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": 1,
                    "tid": tid_of[cat],
                    "args": {"name": cat},
                }
            )
        return json.dumps(
            {"traceEvents": trace_events, "displayTimeUnit": "ms"},
            sort_keys=True,
            separators=(",", ":"),
        )


def _freeze_args(args: dict) -> tuple:
    """Sorted ``(key, value)`` tuple — hashable, order-independent."""
    return tuple(sorted(args.items()))


def _record_object(record, include_wall: bool):
    """The JSONL dict for one record; ``None`` for open placeholders."""
    if isinstance(record, TraceSpan):
        obj = {
            "type": "span",
            "ts": record.ts,
            "dur": record.dur,
            "cat": record.cat,
            "name": record.name,
            "args": dict(record.args),
        }
        if include_wall and record.wall is not None:
            obj["wall"] = record.wall
        return obj
    if isinstance(record, TraceEvent):
        return {
            "type": "event",
            "ts": record.ts,
            "cat": record.cat,
            "name": record.name,
            "args": dict(record.args),
        }
    if isinstance(record, TraceSample):
        return {
            "type": "sample",
            "ts": record.ts,
            "name": record.name,
            "value": record.value,
        }
    if isinstance(record, TraceFlow):
        return {
            "type": "flow",
            "ts": record.ts,
            "cat": record.cat,
            "id": record.flow_id,
            "phase": record.phase,
        }
    return None  # an open span's placeholder — never exported
