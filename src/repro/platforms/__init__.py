"""Platform substrate: compute nodes, node pools, and the interconnect.

The paper's testbed was Grid'5000 (Lyon + Orsay).  This package provides
the synthetic equivalent: pools of nodes with per-node computing power in
MFlop/s, a homogeneous-bandwidth network, the background-load mechanism the
authors used to heterogenize a homogeneous cluster (§5.3), and a simulated
Linpack-style mini-benchmark for (re-)rating nodes.
"""

from repro.platforms.node import Node
from repro.platforms.pool import NodePool
from repro.platforms.network import HomogeneousNetwork
from repro.platforms.background import BackgroundWorkload, heterogenize
from repro.platforms.rating import rate_node, rate_pool

__all__ = [
    "Node",
    "NodePool",
    "HomogeneousNetwork",
    "BackgroundWorkload",
    "heterogenize",
    "rate_node",
    "rate_pool",
]
