"""Background-load heterogenization (§5.3 of the paper).

To obtain a heterogeneous platform from the homogeneous Orsay cluster, the
authors "changed the workload of the reserved nodes by launching different
size of matrix multiplication as the background program on some of the
nodes", then re-measured each node's capacity with a Linpack
mini-benchmark.

:class:`BackgroundWorkload` reproduces that methodology synthetically: a
seeded profile decides which nodes run background matrix products and how
big they are, each product steals a CPU share, and :func:`heterogenize`
returns the degraded pool.  The planner then sees exactly what it saw on
Grid'5000 — a list of re-rated node powers.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

import numpy as np

from repro.errors import ParameterError
from repro.platforms.node import Node
from repro.platforms.pool import NodePool

__all__ = ["BackgroundWorkload", "heterogenize"]


@dataclass(frozen=True)
class BackgroundWorkload:
    """A background matrix-multiplication job pinned to a node.

    The CPU share stolen by a continuously re-launched DGEMM of dimension
    ``n`` grows with ``n`` and saturates below 1 (the OS scheduler still
    grants the foreground middleware a share).  We model the stolen share
    as ``max_share * n^3 / (n^3 + half_size^3)``, a smooth Hill curve whose
    midpoint ``half_size`` and ceiling ``max_share`` are calibration knobs.
    """

    matrix_size: int
    half_size: int = 400
    max_share: float = 0.9

    def __post_init__(self) -> None:
        if self.matrix_size < 0:
            raise ParameterError(
                f"matrix_size must be >= 0, got {self.matrix_size}"
            )
        if self.half_size <= 0:
            raise ParameterError(f"half_size must be > 0, got {self.half_size}")
        if not (0.0 <= self.max_share < 1.0):
            raise ParameterError(
                f"max_share must be in [0, 1), got {self.max_share}"
            )

    @property
    def stolen_share(self) -> float:
        """Fraction of the node's CPU consumed by this background job."""
        if self.matrix_size == 0:
            return 0.0
        cubed = float(self.matrix_size) ** 3
        half = float(self.half_size) ** 3
        return self.max_share * cubed / (cubed + half)

    def apply(self, node: Node) -> Node:
        """The node as re-rated while this background job runs."""
        return node.loaded(self.stolen_share)


def heterogenize(
    pool: NodePool,
    loaded_fraction: float = 0.5,
    matrix_sizes: Sequence[int] = (100, 200, 400, 600, 800),
    seed: int | np.random.Generator = 0,
) -> NodePool:
    """Degrade a (typically homogeneous) pool with background matrix products.

    Parameters
    ----------
    pool:
        The pool to heterogenize.
    loaded_fraction:
        Fraction of nodes that receive a background job (the rest keep
        their base power).
    matrix_sizes:
        Candidate background DGEMM dimensions; each loaded node draws one
        uniformly.
    seed:
        Seed or generator controlling which nodes are loaded and with what.

    Returns
    -------
    NodePool
        A new pool with the same node names and degraded effective powers.
    """
    if not (0.0 <= loaded_fraction <= 1.0):
        raise ParameterError(
            f"loaded_fraction must be in [0, 1], got {loaded_fraction}"
        )
    if not matrix_sizes:
        raise ParameterError("matrix_sizes must not be empty")
    rng = (
        seed
        if isinstance(seed, np.random.Generator)
        else np.random.default_rng(seed)
    )
    n_loaded = int(round(loaded_fraction * len(pool)))
    loaded_indices = set(
        rng.choice(len(pool), size=n_loaded, replace=False).tolist()
    )
    nodes = []
    for index, node in enumerate(pool):
        if index in loaded_indices:
            size = int(rng.choice(list(matrix_sizes)))
            nodes.append(BackgroundWorkload(matrix_size=size).apply(node))
        else:
            nodes.append(node)
    return NodePool(nodes)
