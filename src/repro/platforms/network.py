"""Interconnect model.

The paper's communication model assumes **homogeneous connectivity**: every
pair of deployed elements is joined by a link of identical bandwidth ``B``
(a reasonable approximation of one switched cluster, as the authors note,
and explicitly listed as the scope of this "primary work").

:class:`HomogeneousNetwork` is that model.  It also carries a per-message
latency term (defaulting to zero, the paper's assumption) so the simulator
can inject small constant overheads when exploring model robustness without
touching the analytic equations.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ParameterError

__all__ = ["HomogeneousNetwork"]


@dataclass(frozen=True)
class HomogeneousNetwork:
    """Uniform-bandwidth interconnect.

    Attributes
    ----------
    bandwidth:
        Link bandwidth ``B`` in Mb/s, identical for all links.
    latency:
        Fixed per-message latency in seconds (0 in the paper's model).
    """

    bandwidth: float = 1000.0
    latency: float = 0.0

    def __post_init__(self) -> None:
        if self.bandwidth <= 0.0:
            raise ParameterError(f"bandwidth must be > 0, got {self.bandwidth}")
        if self.latency < 0.0:
            raise ParameterError(f"latency must be >= 0, got {self.latency}")

    def transfer_time(self, size_mb: float) -> float:
        """Seconds to move ``size_mb`` megabits across one link."""
        if size_mb < 0.0:
            raise ParameterError(f"size must be >= 0, got {size_mb}")
        return self.latency + size_mb / self.bandwidth
