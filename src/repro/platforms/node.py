"""Compute node model.

A node is the unit of resource assignment: the planner maps exactly one
middleware element (agent or server) onto each selected node.  The only
performance attribute the paper's model uses is the node's computing power
``w`` in MFlop/s, as measured by a Linpack-style mini-benchmark; we
additionally track the *base* (unloaded) power and the background load
fraction so the §5.3 heterogenization experiment can be reproduced
faithfully.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.errors import ParameterError

__all__ = ["Node"]


@dataclass(frozen=True, order=True)
class Node:
    """One compute node.

    Attributes
    ----------
    name:
        Unique identifier within a pool (e.g. ``"orsay-017"``).
    power:
        Effective computing power in MFlop/s — what the mini-benchmark
        measures and what the planner consumes.
    base_power:
        Unloaded computing power.  Defaults to ``power``.
    background_load:
        Fraction of the node stolen by background work, in ``[0, 1)``;
        ``power == base_power * (1 - background_load)`` up to measurement
        noise.
    """

    # Order by (power, name) so sorting a node list is deterministic even
    # with ties in power.
    power: float
    name: str = field(default="")
    base_power: float = field(default=0.0, compare=False)
    background_load: float = field(default=0.0, compare=False)

    def __post_init__(self) -> None:
        if self.power <= 0.0:
            raise ParameterError(f"node power must be > 0, got {self.power}")
        if not (0.0 <= self.background_load < 1.0):
            raise ParameterError(
                f"background_load must be in [0, 1), got {self.background_load}"
            )
        if self.base_power == 0.0:
            object.__setattr__(self, "base_power", self.power)
        if self.base_power <= 0.0:
            raise ParameterError(
                f"node base_power must be > 0, got {self.base_power}"
            )

    def with_power(self, power: float) -> "Node":
        """Copy of this node with a different effective power."""
        return replace(self, power=power)

    def loaded(self, load_fraction: float) -> "Node":
        """Copy of this node running background work stealing ``load_fraction``.

        Mirrors the paper's §5.3 methodology: a background matrix product
        consumes a share of the CPU, and the *effective* power the
        mini-benchmark subsequently measures shrinks proportionally.
        """
        if not (0.0 <= load_fraction < 1.0):
            raise ParameterError(
                f"load_fraction must be in [0, 1), got {load_fraction}"
            )
        return replace(
            self,
            power=self.base_power * (1.0 - load_fraction),
            background_load=load_fraction,
        )
