"""Node pools — the planner's resource inventory.

A :class:`NodePool` is an immutable, name-indexed collection of
:class:`~repro.platforms.node.Node` with convenience constructors for the
platform families used throughout the paper's evaluation:

* :meth:`NodePool.homogeneous` — identical nodes (the §5.2 Lyon cluster and
  the Table 4 comparison against the homogeneous-optimal planner of [10]);
* :meth:`NodePool.heterogeneous` — explicit per-node powers;
* :meth:`NodePool.uniform_random` / :meth:`NodePool.clustered` — synthetic
  heterogeneous pools for sweeps and property tests.

The §5.3 background-load heterogenization lives in
:mod:`repro.platforms.background` and produces a new pool from an existing
one.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence

import numpy as np

from repro.errors import ParameterError
from repro.platforms.node import Node

__all__ = ["NodePool"]


class NodePool:
    """Immutable collection of uniquely-named compute nodes."""

    def __init__(self, nodes: Iterable[Node]):
        nodes = list(nodes)
        names = [n.name for n in nodes]
        if len(set(names)) != len(names):
            dupes = sorted({x for x in names if names.count(x) > 1})
            raise ParameterError(f"duplicate node names in pool: {dupes}")
        self._nodes: tuple[Node, ...] = tuple(nodes)
        self._by_name = {n.name: n for n in nodes}

    # ------------------------------------------------------------------ #
    # constructors

    @classmethod
    def homogeneous(
        cls, count: int, power: float, prefix: str = "node"
    ) -> "NodePool":
        """``count`` identical nodes of ``power`` MFlop/s."""
        if count < 1:
            raise ParameterError(f"pool needs >= 1 node, got {count}")
        width = len(str(count - 1))
        return cls(
            Node(power=power, name=f"{prefix}-{i:0{width}d}") for i in range(count)
        )

    @classmethod
    def heterogeneous(
        cls, powers: Sequence[float], prefix: str = "node"
    ) -> "NodePool":
        """One node per entry of ``powers``."""
        if not powers:
            raise ParameterError("powers must not be empty")
        width = len(str(len(powers) - 1))
        return cls(
            Node(power=float(p), name=f"{prefix}-{i:0{width}d}")
            for i, p in enumerate(powers)
        )

    @classmethod
    def uniform_random(
        cls,
        count: int,
        low: float,
        high: float,
        seed: int | np.random.Generator = 0,
        prefix: str = "node",
    ) -> "NodePool":
        """Powers drawn uniformly from ``[low, high]`` (seeded, reproducible)."""
        if count < 1:
            raise ParameterError(f"pool needs >= 1 node, got {count}")
        if not (0.0 < low <= high):
            raise ParameterError(f"need 0 < low <= high, got ({low}, {high})")
        rng = (
            seed
            if isinstance(seed, np.random.Generator)
            else np.random.default_rng(seed)
        )
        powers = rng.uniform(low, high, size=count)
        return cls.heterogeneous(list(powers), prefix=prefix)

    @classmethod
    def clustered(
        cls,
        group_sizes: Sequence[int],
        group_powers: Sequence[float],
        prefix: str = "node",
    ) -> "NodePool":
        """A pool made of homogeneous groups (a federation of sub-clusters)."""
        if len(group_sizes) != len(group_powers):
            raise ParameterError(
                f"{len(group_sizes)} sizes but {len(group_powers)} powers"
            )
        powers: list[float] = []
        for size, power in zip(group_sizes, group_powers):
            if size < 1:
                raise ParameterError(f"group size must be >= 1, got {size}")
            powers.extend([power] * size)
        return cls.heterogeneous(powers, prefix=prefix)

    # ------------------------------------------------------------------ #
    # collection protocol

    def __len__(self) -> int:
        return len(self._nodes)

    def __iter__(self) -> Iterator[Node]:
        return iter(self._nodes)

    def __getitem__(self, key: int | str) -> Node:
        if isinstance(key, str):
            return self._by_name[key]
        return self._nodes[key]

    def __contains__(self, name: object) -> bool:
        return name in self._by_name

    @property
    def names(self) -> list[str]:
        return [n.name for n in self._nodes]

    @property
    def powers(self) -> list[float]:
        return [n.power for n in self._nodes]

    # ------------------------------------------------------------------ #
    # derived pools & stats

    def sorted_by_power(self, descending: bool = True) -> "NodePool":
        """New pool ordered by effective power (ties broken by name)."""
        return NodePool(
            sorted(
                self._nodes,
                key=lambda n: (n.power, n.name),
                reverse=descending,
            )
        )

    def take(self, count: int) -> "NodePool":
        """The first ``count`` nodes of this pool."""
        if not (1 <= count <= len(self._nodes)):
            raise ParameterError(
                f"take({count}) out of range for pool of {len(self._nodes)}"
            )
        return NodePool(self._nodes[:count])

    def without(self, names: Iterable[str]) -> "NodePool":
        """This pool minus the given node names."""
        excluded = set(names)
        unknown = excluded - set(self._by_name)
        if unknown:
            raise ParameterError(f"unknown node names: {sorted(unknown)}")
        return NodePool(n for n in self._nodes if n.name not in excluded)

    def replace_node(self, node: Node) -> "NodePool":
        """This pool with the same-named node swapped for ``node``."""
        if node.name not in self._by_name:
            raise ParameterError(f"unknown node name: {node.name!r}")
        return NodePool(
            node if n.name == node.name else n for n in self._nodes
        )

    @property
    def total_power(self) -> float:
        return float(sum(n.power for n in self._nodes))

    @property
    def is_homogeneous(self) -> bool:
        powers = self.powers
        return max(powers) - min(powers) < 1e-12 * max(powers)

    def heterogeneity(self) -> float:
        """Coefficient of variation of node powers (0 for homogeneous)."""
        powers = np.asarray(self.powers)
        mean = float(powers.mean())
        return float(powers.std() / mean) if mean > 0 else 0.0

    def describe(self) -> str:
        powers = np.asarray(self.powers)
        return (
            f"NodePool(n={len(self)}, power min={powers.min():.1f} "
            f"median={np.median(powers):.1f} max={powers.max():.1f} MFlop/s, "
            f"cv={self.heterogeneity():.3f})"
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return self.describe()
