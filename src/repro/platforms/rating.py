"""Node capacity rating — the simulated Linpack mini-benchmark.

The paper measures each machine's capacity "in MFlops using a
mini-benchmark extracted from Linpack" and feeds those ratings to the
model.  Here the *true* power of a synthetic node is known, so the
mini-benchmark reduces to reading it back — optionally with a small
multiplicative measurement noise so experiments can exercise the planner's
robustness to rating error, and with the repeated-trial / best-of-k
protocol real Linpack runs use.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ParameterError
from repro.platforms.node import Node
from repro.platforms.pool import NodePool

__all__ = ["rate_node", "rate_pool"]


def rate_node(
    node: Node,
    noise: float = 0.0,
    trials: int = 3,
    seed: int | np.random.Generator = 0,
) -> float:
    """Measured power of ``node`` in MFlop/s.

    Parameters
    ----------
    noise:
        Standard deviation of the multiplicative measurement error per
        trial (0 reproduces the true power exactly).
    trials:
        Number of benchmark repetitions; the *maximum* observed rate is
        reported, mirroring the usual best-of-k Linpack protocol (transient
        interference only ever slows a run down, so the max is the least
        biased estimator of capacity).
    """
    if noise < 0.0:
        raise ParameterError(f"noise must be >= 0, got {noise}")
    if trials < 1:
        raise ParameterError(f"trials must be >= 1, got {trials}")
    if noise == 0.0:
        return node.power
    rng = (
        seed
        if isinstance(seed, np.random.Generator)
        else np.random.default_rng(seed)
    )
    # Interference can only slow a trial down: draw non-positive deviations.
    slowdowns = np.abs(rng.normal(0.0, noise, size=trials))
    observed = node.power * (1.0 - np.minimum(slowdowns, 0.95))
    return float(observed.max())


def rate_pool(
    pool: NodePool,
    noise: float = 0.0,
    trials: int = 3,
    seed: int | np.random.Generator = 0,
) -> NodePool:
    """Re-rate every node of a pool with the mini-benchmark.

    Returns a new pool whose node powers are the *measured* values — the
    exact input the planner consumed on Grid'5000.
    """
    rng = (
        seed
        if isinstance(seed, np.random.Generator)
        else np.random.default_rng(seed)
    )
    return NodePool(
        node.with_power(rate_node(node, noise=noise, trials=trials, seed=rng))
        for node in pool
    )
