"""Discrete-event simulation substrate.

This package replaces the paper's Grid'5000 testbed.  It provides a
deterministic, seeded event-heap simulator (:mod:`repro.sim.engine`), the
M(r,s,w) single-port serial resource model of [Chouhan, PhD 2006] used by
the paper (:mod:`repro.sim.resources`), and measurement utilities
(:mod:`repro.sim.stats`, :mod:`repro.sim.trace`).
"""

from repro.sim.engine import Event, Simulator
from repro.sim.fluid import FluidPopulation, FluidWindow
from repro.sim.resources import SerialResource
from repro.sim.stats import IntervalCounter, WindowedRate
from repro.sim.trace import TraceRecorder

__all__ = [
    "Event",
    "Simulator",
    "FluidPopulation",
    "FluidWindow",
    "SerialResource",
    "IntervalCounter",
    "WindowedRate",
    "TraceRecorder",
]
