"""Event-heap discrete-event simulation engine.

Deliberately minimal and fast: events are ``(time, sequence, callback)``
entries on a binary heap; the sequence number makes simultaneous events
fire in scheduling order, which keeps every run bit-reproducible.  The
engine knows nothing about resources or middleware — those layers schedule
callbacks on it.

Cancellation is lazy — :meth:`Event.cancel` just clears the callback — but
not unbounded: the simulator counts dead entries and compacts the heap once
they exceed half of it, so churn-heavy runs (retries, preemption storms,
timeout ladders) hold memory proportional to the *live* event count.
Compaction preserves the (time, sequence) total order, so firing order and
results are bit-identical with or without it.

Design notes (per the HPC guides): the hot loop avoids attribute lookups
and allocation where it matters, supports millions of events per run, and
exposes ``run_until`` / ``run`` with event and time budgets so harnesses
can bound simulations deterministically.  ``run_until_condition`` adds a
state-predicate stop on top of the deadline — the primitive that lets a
live migration drain a subtree for exactly as long as it stays busy,
with entities added and removed mid-run and determinism intact.
"""

from __future__ import annotations

import heapq
from collections.abc import Callable
from dataclasses import dataclass, field

from repro.errors import SimulationError

__all__ = ["Event", "Simulator"]


@dataclass(order=True)
class Event:
    """A scheduled callback.  Comparable by (time, sequence)."""

    time: float
    sequence: int
    callback: Callable[[], None] | None = field(compare=False)
    #: Owning simulator, so cancellation can be counted for heap
    #: compaction.  ``None`` for events constructed outside a simulator.
    owner: "Simulator | None" = field(compare=False, default=None, repr=False)

    @property
    def cancelled(self) -> bool:
        return self.callback is None

    def cancel(self) -> None:
        """Cancel the event in place (lazy deletion from the heap)."""
        if self.callback is None:
            return
        self.callback = None
        if self.owner is not None:
            self.owner._note_cancelled()


class Simulator:
    """Deterministic discrete-event simulator.

    Examples
    --------
    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(2.0, lambda: fired.append(sim.now))
    >>> _ = sim.schedule(1.0, lambda: fired.append(sim.now))
    >>> sim.run()
    >>> fired
    [1.0, 2.0]
    """

    #: Compaction triggers only above this heap size — tiny heaps are
    #: cheaper to drain lazily than to rebuild.
    COMPACT_MIN_SIZE = 512

    def __init__(self) -> None:
        self.now: float = 0.0
        self._heap: list[Event] = []
        self._sequence: int = 0
        self._events_processed: int = 0
        self._cancelled_in_heap: int = 0
        self._compactions: int = 0

    # ------------------------------------------------------------------ #

    def schedule(self, delay: float, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` to fire ``delay`` seconds from now."""
        if delay < 0.0:
            raise SimulationError(f"cannot schedule in the past: delay={delay}")
        self._sequence += 1
        event = Event(self.now + delay, self._sequence, callback, self)
        heapq.heappush(self._heap, event)
        return event

    def schedule_at(self, time: float, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` at absolute simulation ``time``."""
        return self.schedule(time - self.now, callback)

    # ------------------------------------------------------------------ #

    @property
    def pending(self) -> int:
        """Number of queued (possibly cancelled) events."""
        return len(self._heap)

    @property
    def events_processed(self) -> int:
        """Number of callbacks fired so far."""
        return self._events_processed

    @property
    def heap_compactions(self) -> int:
        """Number of times the event heap has been compacted."""
        return self._compactions

    def peek_time(self) -> float | None:
        """Time of the next live event, or None if the heap is drained."""
        heap = self._heap
        while heap and heap[0].callback is None:
            heapq.heappop(heap)
            self._cancelled_in_heap -= 1
        return heap[0].time if heap else None

    # ------------------------------------------------------------------ #

    def _note_cancelled(self) -> None:
        """Bookkeeping hook for :meth:`Event.cancel`; may compact the heap.

        Compaction drops dead entries and re-heapifies.  Heap order is a
        total order here — sequence numbers are unique — so the surviving
        events pop in exactly the order they would have anyway: lazily and
        eagerly deleted runs are bit-identical.
        """
        self._cancelled_in_heap += 1
        heap = self._heap
        if (
            len(heap) >= self.COMPACT_MIN_SIZE
            and 2 * self._cancelled_in_heap > len(heap)
        ):
            self._heap = [event for event in heap if event.callback is not None]
            heapq.heapify(self._heap)
            self._cancelled_in_heap = 0
            self._compactions += 1

    # ------------------------------------------------------------------ #

    def step(self) -> bool:
        """Fire the next live event.  Returns False when none remain."""
        heap = self._heap
        while heap:
            event = heapq.heappop(heap)
            if event.callback is None:
                self._cancelled_in_heap -= 1
                continue
            if event.time < self.now:
                raise SimulationError(
                    f"time went backwards: {event.time} < {self.now}"
                )
            self.now = event.time
            callback = event.callback
            event.callback = None
            self._events_processed += 1
            callback()
            return True
        return False

    def run(self, max_events: int | None = None) -> None:
        """Run until the heap drains (or ``max_events`` callbacks fired)."""
        if max_events is None:
            while self.step():
                pass
            return
        for _ in range(max_events):
            if not self.step():
                return
        raise SimulationError(
            f"event budget of {max_events} exhausted at t={self.now:.6f}"
        )

    def run_until(self, time: float, max_events: int | None = None) -> None:
        """Run events with ``event.time <= time``; clock ends at ``time``.

        Events scheduled beyond the horizon stay queued, so simulations can
        be advanced window by window.
        """
        if time < self.now:
            raise SimulationError(
                f"cannot run to the past: {time} < now={self.now}"
            )
        fired = 0
        while True:
            next_time = self.peek_time()
            if next_time is None or next_time > time:
                break
            self.step()
            fired += 1
            if max_events is not None and fired > max_events:
                raise SimulationError(
                    f"event budget of {max_events} exhausted at t={self.now:.6f}"
                )
        self.now = time

    def run_until_condition(
        self,
        deadline: float,
        condition: Callable[[], bool],
        max_events: int | None = None,
    ) -> bool:
        """Run events until ``condition()`` holds or ``deadline`` passes.

        The mid-run entity hook: live-migration drains use this to wait
        until a detached subtree has gone quiet without committing to a
        fixed-length outage window.  ``condition`` is evaluated against
        simulation state only (never wall clock), and events fire in
        exactly the order :meth:`run_until` would fire them, so adding
        the condition cannot perturb determinism — it can only stop the
        clock earlier.

        Returns ``True`` if the condition was met (the clock rests at
        the event that satisfied it, or at ``now`` if it held already);
        ``False`` if the deadline was reached first (the clock then
        rests exactly at ``deadline``, like :meth:`run_until`).
        """
        if deadline < self.now:
            raise SimulationError(
                f"cannot run to the past: {deadline} < now={self.now}"
            )
        if condition():
            return True
        fired = 0
        while True:
            next_time = self.peek_time()
            if next_time is None or next_time > deadline:
                break
            self.step()
            fired += 1
            if max_events is not None and fired > max_events:
                raise SimulationError(
                    f"event budget of {max_events} exhausted at "
                    f"t={self.now:.6f}"
                )
            if condition():
                return True
        self.now = deadline
        return False
