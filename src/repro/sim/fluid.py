"""Aggregate (fluid) client populations advanced between event boundaries.

The discrete-event engine tops out around 0.4–2M events/s, so a
million-client closed-loop population cannot be simulated per message —
each client generates several engine events per request.  This module is
the other half of the hybrid workload model: the *bulk* of a large
population is carried as a deterministic fluid mass whose served
throughput is integrated analytically over each control window, while a
small sampled cohort stays fully discrete inside the engine (so latency,
reply routing, faults/detection and migration semantics remain
observable).  The split itself lives in
:class:`repro.control.traces.HybridTrace`; this module only integrates.

**Model.**  The closed-network bound the paper's planner is built on
(§5.1: one request in flight per client) says a population of ``N``
clients, each achieving ``unit_rate`` requests/s unsaturated, is served
at ``min(N * unit_rate, capacity)``.  :meth:`FluidPopulation.advance`
integrates exactly that expression over a window, sampling the fluid
level at ``substeps`` left-endpoint points — a piecewise-constant
quadrature that is exact for the step-shaped traces the fixture library
ships and a first-order approximation for smooth ones.  ``unit_rate``
is calibrated online by the control loop from the discrete cohort's
measured per-client rate, so the fluid mass and the sampled clients can
never drift onto different demand models.

**Determinism and backends.**  Everything here is pure arithmetic over
``(window, level function, unit_rate, capacity)`` — no RNG, no wall
clock, no engine events — so hybrid timelines keep the determinism
contract of :mod:`repro.workloads.loadgen` bit-for-bit.  The per-substep
rate vector is evaluated through NumPy when the
:mod:`repro.core.kernels` backend switch is on, with a pure-Python
fallback that executes the same IEEE-754 operation sequence; both paths
reduce with :func:`math.fsum` over the elementwise products (NumPy's
pairwise ``sum`` would round differently), so the backends are
bit-identical — the same contract, and the same test lever
(``kernels._USE_NUMPY``), as every other kernel.

Integer completions are attributed by **floor-carry**: the population
keeps one cumulative served mass and each window reports
``floor(cum_after) - floor(cum_before)`` completions, so per-window
integers always sum to the floor of the total mass — no window ever
double-counts or drops a request no matter how the run is windowed.
"""

from __future__ import annotations

import math
from collections.abc import Callable
from dataclasses import dataclass

from repro.errors import SimulationError

__all__ = ["FluidWindow", "FluidPopulation"]


@dataclass(frozen=True)
class FluidWindow:
    """What the fluid mass did during one control window.

    Attributes
    ----------
    start, end:
        Window bounds in simulation time.
    offered_mean:
        Mean fluid client mass over the window (substep average).
    served:
        Whole completions attributed to this window (floor-carry over
        the population's cumulative mass — see module docstring).
    served_mass:
        Exact (fractional) served mass of this window.
    served_rate:
        ``served_mass / (end - start)`` — requests/s.
    demand_rate:
        Uncapped demand (``mean level * unit_rate``); ``served_rate``
        saturates at the capacity it was integrated against, so
        ``demand_rate > served_rate`` means the fluid mass was
        capacity-limited somewhere in the window.
    """

    start: float
    end: float
    offered_mean: float
    served: int
    served_mass: float
    served_rate: float
    demand_rate: float

    @property
    def utilization(self) -> float:
        """Served fraction of demand (1.0 when nothing was demanded)."""
        if self.demand_rate <= 0.0:
            return 1.0
        return min(1.0, self.served_rate / self.demand_rate)


class FluidPopulation:
    """Deterministic integrator for an aggregate client mass.

    One instance per controller run; it owns the cumulative served mass
    the floor-carry attribution needs.  ``substeps`` controls the
    quadrature resolution inside each window (left-endpoint sampling).
    """

    def __init__(self, substeps: int = 8):
        if substeps < 1:
            raise SimulationError(
                f"substeps must be >= 1, got {substeps}"
            )
        self.substeps = substeps
        self._cumulative = 0.0
        self._attributed = 0

    @property
    def total_served(self) -> int:
        """Whole completions attributed so far (sum of window ``served``)."""
        return self._attributed

    @property
    def total_mass(self) -> float:
        """Exact cumulative served mass across every window so far."""
        return self._cumulative

    def advance(
        self,
        start: float,
        end: float,
        level_fn: Callable[[float], float],
        unit_rate: float,
        capacity: float,
    ) -> FluidWindow:
        """Integrate the fluid served mass over ``[start, end)``.

        ``level_fn(t)`` is the fluid client mass at ``t`` (typically
        :meth:`repro.control.traces.HybridTrace.fluid_level`);
        ``unit_rate`` the calibrated per-client rate; ``capacity`` the
        throughput ceiling the mass may draw (the model capacity left
        over after the discrete cohort).  Negative inputs clamp to 0 —
        an uncalibrated first window serves nothing rather than failing.
        """
        if end <= start:
            raise SimulationError(
                f"bad fluid window: ({start}, {end})"
            )
        unit_rate = max(0.0, unit_rate)
        capacity = max(0.0, capacity)
        dt = (end - start) / self.substeps
        levels = [
            max(0.0, float(level_fn(start + i * dt)))
            for i in range(self.substeps)
        ]
        # Elementwise served-rate vector: identical IEEE-754 op sequence
        # on both backends, reduced with fsum (see module docstring).
        if _numpy_active():
            import numpy as np

            arr = np.asarray(levels, dtype=np.float64)
            rates = np.minimum(arr * unit_rate, capacity).tolist()
        else:
            rates = [min(level * unit_rate, capacity) for level in levels]
        served_mass = math.fsum(rate * dt for rate in rates)
        demand_mass = math.fsum(level * unit_rate * dt for level in levels)
        before = self._cumulative
        self._cumulative = before + served_mass
        served = int(math.floor(self._cumulative)) - int(math.floor(before))
        self._attributed += served
        duration = end - start
        return FluidWindow(
            start=start,
            end=end,
            offered_mean=math.fsum(levels) / self.substeps,
            served=served,
            served_mass=served_mass,
            served_rate=served_mass / duration,
            demand_rate=demand_mass / duration,
        )


def _numpy_active() -> bool:
    """The shared kernel-backend switch (tests flip ``_USE_NUMPY``)."""
    from repro.core import kernels

    return kernels._numpy_active()
