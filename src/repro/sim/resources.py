"""The M(r,s,w) single-port serial resource model.

The paper adopts the computation/communication capability model
``M(r, s, w)`` of [Chouhan, PhD 2006]: a node has *no internal
parallelism* — at any instant it either receives a message, sends a
message, or computes, through a single port, serially.

:class:`SerialResource` realizes that model on the event engine with two
priority classes:

* priority 0 — scheduling-phase work (request forwarding, predictions,
  reply merging);
* priority 1 — service-phase work (application execution and its
  transfers).

Priority-0 work *preempts* priority-1 work: a DIET SeD answers scheduling
predictions from its communication thread within microseconds even while
an application call is running, and the OS scheduler briefly time-slices
the worker to allow it.  Preemption is work-conserving — the interrupted
item resumes with its remaining duration — so the node's total capacity
accounting, which is all the paper's throughput model relies on, is
unchanged.  Only latency behaviour (and therefore the load-balancing
feedback loop) becomes realistic.

Per-kind busy-time accounting feeds utilization reports, which is how
experiment harnesses identify the bottleneck node — the simulated
analogue of the paper's mathematical bottleneck analysis.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Callable

from repro.errors import SimulationError
from repro.sim.engine import Event, Simulator

__all__ = ["SerialResource"]

_KINDS = ("send", "recv", "compute")


class SerialResource:
    """A priority-preemptive serial execution resource.

    Parameters
    ----------
    sim:
        The event engine.
    name:
        Identifier used in traces and error messages.
    """

    __slots__ = (
        "sim",
        "name",
        "_queue",
        "_low_queue",
        "_busy",
        "_current",
        "_completion",
        "busy_time",
        "tasks_done",
        "preemptions",
        "_busy_since",
        "_kind_time",
        "_rate",
        "_halted",
    )

    def __init__(self, sim: Simulator, name: str):
        self.sim = sim
        self.name = name
        # Items: (remaining_duration, kind, on_done) — durations are
        # *nominal* (rate-1) seconds; the rate applies when work starts.
        self._queue: deque[tuple[float, str, Callable[[], None] | None]] = deque()
        self._low_queue: deque[
            tuple[float, str, Callable[[], None] | None]
        ] = deque()
        self._busy = False
        self._current: tuple[float, str, Callable[[], None] | None, int] | None = None
        self._completion: Event | None = None
        self.busy_time = 0.0
        self.tasks_done = 0
        self.preemptions = 0
        self._busy_since = 0.0
        self._kind_time = {kind: 0.0 for kind in _KINDS}
        # Speed multiplier (fault injection's straggler model): wall
        # duration = nominal / rate.  1.0 is the nominal, bit-exact path.
        self._rate = 1.0
        # A halted resource (crashed node) silently drops all work.
        self._halted = False

    # ------------------------------------------------------------------ #

    def submit(
        self,
        duration: float,
        kind: str,
        on_done: Callable[[], None] | None = None,
        priority: int = 0,
    ) -> None:
        """Queue a work item of ``duration`` seconds.

        ``kind`` must be one of ``send``, ``recv``, ``compute`` (the three
        exclusive activities of the M(r,s,w) model).  ``on_done`` fires
        when the item completes.  Priority-0 items preempt a priority-1
        item in progress (work-conserving).
        """
        if self._halted:
            # A crashed node is a black hole: work vanishes, callbacks
            # never fire.  Failure surfacing is the middleware's job
            # (dead-letter + resubmit), not the resource's.
            return
        if duration < 0.0:
            raise SimulationError(
                f"{self.name}: negative task duration {duration}"
            )
        if kind not in _KINDS:
            raise SimulationError(
                f"{self.name}: unknown task kind {kind!r}; expected {_KINDS}"
            )
        if priority == 0:
            self._queue.append((duration, kind, on_done))
            if self._busy and self._current is not None and self._current[3] == 1:
                self._preempt()
            elif not self._busy:
                self._start_next()
        elif priority == 1:
            self._low_queue.append((duration, kind, on_done))
            if not self._busy:
                self._start_next()
        else:
            raise SimulationError(
                f"{self.name}: priority must be 0 or 1, got {priority}"
            )

    # ------------------------------------------------------------------ #

    @property
    def is_busy(self) -> bool:
        return self._busy

    @property
    def rate(self) -> float:
        """Current speed multiplier (1.0 = nominal)."""
        return self._rate

    @property
    def is_halted(self) -> bool:
        return self._halted

    def set_rate(self, rate: float) -> None:
        """Change the speed multiplier mid-run (straggler injection).

        The in-progress item (if any) is re-timed work-conservingly: its
        elapsed wall time is banked into the busy accounting, the
        remaining nominal work is rescheduled at the new rate.  Queued
        items hold nominal durations, so they pick up the new rate when
        they start.  ``set_rate(1.0)`` on an idle, never-degraded
        resource is a bit-exact no-op.
        """
        if rate <= 0.0:
            raise SimulationError(
                f"{self.name}: rate must be > 0, got {rate} "
                "(use halt() to stop the resource)"
            )
        if self._halted:
            raise SimulationError(f"{self.name}: cannot re-rate a halted resource")
        if rate == self._rate:
            return
        if self._busy:
            assert self._current is not None and self._completion is not None
            wall, kind, on_done, priority = self._current
            elapsed = self.sim.now - self._busy_since
            remaining_wall = max(0.0, wall - elapsed)
            self.busy_time += elapsed
            self._kind_time[kind] += elapsed
            self._completion.cancel()
            new_wall = remaining_wall * self._rate / rate
            self._busy_since = self.sim.now
            self._current = (new_wall, kind, on_done, priority)
            self._completion = self.sim.schedule(new_wall, self._complete)
        self._rate = rate

    def halt(self) -> int:
        """Stop the resource permanently (crash injection).

        The in-progress item's elapsed time is banked (the node really
        did burn those cycles), its completion is cancelled, and every
        queued item is dropped; subsequent :meth:`submit` calls are
        silently ignored.  Returns the number of work items discarded.
        """
        if self._halted:
            return 0
        dropped = len(self._queue) + len(self._low_queue)
        if self._busy:
            assert self._current is not None and self._completion is not None
            _, kind, _, _ = self._current
            elapsed = self.sim.now - self._busy_since
            self.busy_time += elapsed
            self._kind_time[kind] += elapsed
            self._completion.cancel()
            dropped += 1
        self._queue.clear()
        self._low_queue.clear()
        self._busy = False
        self._current = None
        self._completion = None
        self._halted = True
        return dropped

    @property
    def queue_length(self) -> int:
        """Work items waiting (excluding the one in progress)."""
        return len(self._queue) + len(self._low_queue)

    @property
    def backlog(self) -> float:
        """Total queued work in seconds (excluding the one in progress)."""
        return sum(item[0] for item in self._queue) + sum(
            item[0] for item in self._low_queue
        )

    def busy_seconds(self, horizon: float | None = None) -> float:
        """Cumulative busy seconds, including the in-progress item's elapsed
        part (up to ``horizon`` or now).

        ``horizon`` clamps only the in-progress item — completed work is
        always counted in full, so this is an as-of-now accounting, not a
        rewind: past horizons are meaningful only back to the start of
        the current item.  Windowed observers (the control plane's
        monitor) should snapshot at both window edges and diff, which is
        exactly what per-window utilization needs and the cumulative
        :meth:`utilization` cannot provide.
        """
        end = self.sim.now if horizon is None else horizon
        busy = self.busy_time
        if self._busy:
            busy += max(0.0, min(end, self.sim.now) - self._busy_since)
        return busy

    def utilization(self, horizon: float | None = None) -> float:
        """Fraction of time busy since t=0 (up to ``horizon`` or now)."""
        end = self.sim.now if horizon is None else horizon
        if end <= 0.0:
            return 0.0
        return min(1.0, self.busy_seconds(end) / end)

    def kind_time(self, kind: str) -> float:
        """Cumulative busy seconds spent on one task kind."""
        if kind not in _KINDS:
            raise SimulationError(f"unknown task kind {kind!r}")
        return self._kind_time[kind]

    # ------------------------------------------------------------------ #

    def _start_next(self) -> None:
        if self._queue:
            duration, kind, on_done = self._queue.popleft()
            priority = 0
        elif self._low_queue:
            duration, kind, on_done = self._low_queue.popleft()
            priority = 1
        else:
            return
        self._busy = True
        self._busy_since = self.sim.now
        # Queued durations are nominal; _current holds *wall* duration.
        # At rate 1.0 the division is bit-exact identity.
        wall = duration / self._rate
        self._current = (wall, kind, on_done, priority)
        self._completion = self.sim.schedule(wall, self._complete)

    def _preempt(self) -> None:
        """Pause the in-progress priority-1 item; requeue its remainder."""
        assert self._current is not None and self._completion is not None
        duration, kind, on_done, _ = self._current
        elapsed = self.sim.now - self._busy_since
        remaining = duration - elapsed
        self._completion.cancel()
        self.busy_time += elapsed
        self._kind_time[kind] += elapsed
        self.preemptions += 1
        # Front of the low queue: the item resumes before later service
        # work.  Requeued as nominal work (wall remainder * rate), so a
        # later rate change re-times it correctly; exact identity at 1.0.
        self._low_queue.appendleft(
            (max(0.0, remaining) * self._rate, kind, on_done)
        )
        self._busy = False
        self._current = None
        self._completion = None
        self._start_next()

    def _complete(self) -> None:
        assert self._current is not None
        duration, kind, on_done, _ = self._current
        self.busy_time += duration
        self._kind_time[kind] += duration
        self.tasks_done += 1
        self._busy = False
        self._current = None
        self._completion = None
        if self._queue or self._low_queue:
            self._start_next()
        if on_done is not None:
            on_done()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "busy" if self._busy else "idle"
        return (
            f"SerialResource({self.name!r}, {state}, "
            f"queued={self.queue_length}, done={self.tasks_done})"
        )
