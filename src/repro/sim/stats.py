"""Measurement utilities for steady-state throughput experiments.

Measuring "maximum sustained throughput" is the delicate part of the
paper's methodology (§5.1): too little load under-drives the platform, too
much degrades it, and ramp-up transients must be excluded.  These helpers
mirror that protocol:

* :class:`IntervalCounter` — counts completions and reports the rate over
  an arbitrary time window (used to drop warm-up);
* :class:`WindowedRate` — per-second (or per-bucket) completion series,
  the raw material of the "requests/second vs. number of clients" curves
  in Figures 2, 4, 6 and 7.
"""

from __future__ import annotations

from bisect import bisect_right

import numpy as np

from repro.errors import SimulationError

__all__ = ["IntervalCounter", "WindowedRate"]


class IntervalCounter:
    """Record completion timestamps; query rates over windows."""

    def __init__(self) -> None:
        self._times: list[float] = []

    def record(self, time: float) -> None:
        if self._times and time < self._times[-1]:
            raise SimulationError(
                f"completion time went backwards: {time} < {self._times[-1]}"
            )
        self._times.append(time)

    @property
    def count(self) -> int:
        return len(self._times)

    @property
    def times(self) -> list[float]:
        return list(self._times)

    def count_in(self, start: float, end: float) -> int:
        """Completions with ``start < t <= end``."""
        if end < start:
            raise SimulationError(f"bad window: ({start}, {end})")
        return bisect_right(self._times, end) - bisect_right(self._times, start)

    def rate(self, start: float, end: float) -> float:
        """Mean completion rate (per second) over ``(start, end]``."""
        if end <= start:
            raise SimulationError(f"bad window: ({start}, {end})")
        return self.count_in(start, end) / (end - start)


class WindowedRate:
    """Bucket completions into fixed-width windows for time series."""

    def __init__(self, width: float = 1.0):
        if width <= 0.0:
            raise SimulationError(f"window width must be > 0, got {width}")
        self.width = width
        self._counter = IntervalCounter()

    def record(self, time: float) -> None:
        self._counter.record(time)

    def series(self, start: float, end: float) -> tuple[np.ndarray, np.ndarray]:
        """(bucket centers, rates) for buckets fully inside ``[start, end]``."""
        if end <= start:
            raise SimulationError(f"bad window: ({start}, {end})")
        edges = np.arange(start, end + 1e-12, self.width)
        if len(edges) < 2:
            return np.array([]), np.array([])
        counts = np.array(
            [
                self._counter.count_in(lo, hi)
                for lo, hi in zip(edges[:-1], edges[1:])
            ],
            dtype=float,
        )
        centers = 0.5 * (edges[:-1] + edges[1:])
        return centers, counts / self.width

    def steady_rate(
        self, start: float, end: float, trim_fraction: float = 0.0
    ) -> float:
        """Mean rate over the window, optionally trimming edge buckets.

        ``trim_fraction`` drops that fraction of buckets from each side
        before averaging — a simple guard against boundary effects.
        """
        _, rates = self.series(start, end)
        if rates.size == 0:
            return 0.0
        if trim_fraction > 0.0:
            trim = int(len(rates) * trim_fraction)
            if trim > 0 and len(rates) > 2 * trim:
                rates = rates[trim:-trim]
        return float(rates.mean())
