"""Event tracing for the simulated middleware.

The paper's calibration campaign (§5.1) captured *wire traffic* with
tcpdump/Ethereal and per-message processing times with DIET's statistics
module.  :class:`TraceRecorder` is the simulated counterpart: middleware
components emit structured records (message sent/received, computation
started/finished) and the calibration code post-processes them exactly as
the authors post-processed packet captures.

Tracing is off by default — the recorder is only attached when an
experiment requests it, so the hot simulation path pays nothing.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterator

__all__ = ["TraceRecord", "TraceRecorder"]


@dataclass(frozen=True)
class TraceRecord:
    """One traced middleware event.

    Attributes
    ----------
    time:
        Simulation time of the event.
    kind:
        ``"msg_sent"``, ``"msg_recv"``, ``"compute"``, or a free-form
        experiment-specific tag.
    node:
        Name of the node the event occurred on.
    detail:
        Event payload: message type and size for wire events, work amount
        for computations.
    request_id:
        The request the event belongs to, if any.
    """

    time: float
    kind: str
    node: str
    detail: dict
    request_id: int | None = None


class TraceRecorder:
    """Append-only store of :class:`TraceRecord` with simple queries."""

    def __init__(self) -> None:
        self._records: list[TraceRecord] = []

    def emit(
        self,
        time: float,
        kind: str,
        node: str,
        request_id: int | None = None,
        **detail: object,
    ) -> None:
        self._records.append(
            TraceRecord(
                time=time,
                kind=kind,
                node=node,
                detail=detail,
                request_id=request_id,
            )
        )

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self._records)

    def by_kind(self, kind: str) -> list[TraceRecord]:
        return [r for r in self._records if r.kind == kind]

    def by_node(self, node: str) -> list[TraceRecord]:
        return [r for r in self._records if r.node == node]

    def for_request(self, request_id: int) -> list[TraceRecord]:
        return [r for r in self._records if r.request_id == request_id]

    def clear(self) -> None:
        self._records.clear()
