"""Unit conventions and conversion helpers.

The paper (and therefore this library) uses a small, fixed unit system:

========== ================= =====================================
Quantity   Unit              Notes
========== ================= =====================================
data size  Mb (megabit)      message sizes ``Sreq``, ``Srep``
bandwidth  Mb/s              homogeneous link bandwidth ``B``
work       MFlop             ``Wreq``, ``Wrep``, ``Wpre``, ``Wapp``
power      MFlop/s           node computing power ``w``
time       second            all model outputs
rate       requests/second   throughputs ``rho``
========== ================= =====================================

All public model functions take and return values in these units.  The
helpers below convert common external representations (bytes, GFlops,
matrix dimensions) into the model's units so user code never hand-rolls
the factors.
"""

from __future__ import annotations

__all__ = [
    "MEGABIT",
    "bytes_to_mb",
    "mb_to_bytes",
    "mflops_from_gflops",
    "gflops_from_mflops",
    "transfer_time",
    "compute_time",
    "dgemm_mflop",
]

#: Number of bits in a megabit.
MEGABIT = 1_000_000.0

_BITS_PER_BYTE = 8.0


def bytes_to_mb(n_bytes: float) -> float:
    """Convert a size in bytes to megabits (the model's size unit)."""
    return n_bytes * _BITS_PER_BYTE / MEGABIT


def mb_to_bytes(mb: float) -> float:
    """Convert a size in megabits back to bytes."""
    return mb * MEGABIT / _BITS_PER_BYTE


def mflops_from_gflops(gflops: float) -> float:
    """Convert GFlop/s to MFlop/s."""
    return gflops * 1000.0


def gflops_from_mflops(mflops: float) -> float:
    """Convert MFlop/s to GFlop/s."""
    return mflops / 1000.0


def transfer_time(size_mb: float, bandwidth_mbps: float) -> float:
    """Time in seconds to push ``size_mb`` megabits through a link.

    Raises
    ------
    ValueError
        If the bandwidth is not strictly positive.
    """
    if bandwidth_mbps <= 0.0:
        raise ValueError(f"bandwidth must be > 0, got {bandwidth_mbps}")
    return size_mb / bandwidth_mbps


def compute_time(work_mflop: float, power_mflops: float) -> float:
    """Time in seconds to execute ``work_mflop`` on a ``power_mflops`` node.

    Raises
    ------
    ValueError
        If the node power is not strictly positive.
    """
    if power_mflops <= 0.0:
        raise ValueError(f"power must be > 0, got {power_mflops}")
    return work_mflop / power_mflops


def dgemm_mflop(n: int, m: int | None = None, k: int | None = None) -> float:
    """MFlop cost of a dense matrix multiply ``C = A(nxk) * B(kxm)``.

    Uses the standard ``2*n*m*k`` flop count (multiply + add per inner-loop
    iteration).  Called with a single argument it models the paper's square
    ``DGEMM nxn`` workloads.
    """
    if m is None:
        m = n
    if k is None:
        k = n
    if n <= 0 or m <= 0 or k <= 0:
        raise ValueError(f"matrix dimensions must be positive, got {(n, m, k)}")
    return 2.0 * n * m * k / 1e6
