"""Workloads and load injection.

* :mod:`repro.workloads.dgemm` — the DGEMM application model the paper
  evaluates with (BLAS level-3 matrix multiply);
* :mod:`repro.workloads.demand` — client-demand specifications;
* :mod:`repro.workloads.loadgen` — the §5.1 load-injection protocol
  (one closed-loop client per second until throughput stops improving).
"""

from repro.workloads.dgemm import DGEMMWorkload
from repro.workloads.demand import ClientDemand
from repro.workloads.loadgen import ClientRamp, RampResult

__all__ = ["DGEMMWorkload", "ClientDemand", "ClientRamp", "RampResult"]
