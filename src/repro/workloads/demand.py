"""Client demand specifications.

The heuristic accepts a *client demand* ("client volume" in Algorithm 1):
the request rate the platform must sustain.  Users usually know their
demand in one of two currencies — a rate, or a number of concurrent
closed-loop clients.  :class:`ClientDemand` converts between them with
Little's law, given the per-request latency floor the model provides.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.params import ModelParams
from repro.errors import ParameterError

__all__ = ["ClientDemand"]


@dataclass(frozen=True)
class ClientDemand:
    """A target load for planning.

    Exactly one of ``rate`` (requests/s) or ``clients`` (concurrent
    closed-loop clients) must be given; conversions need the workload's
    service floor.
    """

    rate: float | None = None
    clients: int | None = None

    def __post_init__(self) -> None:
        if (self.rate is None) == (self.clients is None):
            raise ParameterError(
                "specify exactly one of rate= or clients="
            )
        if self.rate is not None and self.rate <= 0.0:
            raise ParameterError(f"rate must be > 0, got {self.rate}")
        if self.clients is not None and self.clients < 1:
            raise ParameterError(f"clients must be >= 1, got {self.clients}")

    def as_rate(
        self,
        params: ModelParams,
        app_work: float,
        reference_power: float,
    ) -> float:
        """The demand in requests/s.

        When expressed in clients, Little's law with the *unloaded*
        per-request latency (one scheduling round plus one service
        execution on a ``reference_power`` node) gives the rate those
        clients could at most generate — the right planning target for
        closed-loop load.
        """
        if self.rate is not None:
            return self.rate
        assert self.clients is not None
        latency = self.min_latency(params, app_work, reference_power)
        return self.clients / latency

    @staticmethod
    def min_latency(
        params: ModelParams, app_work: float, reference_power: float
    ) -> float:
        """Unloaded per-request latency on a minimal 1-agent/1-server
        deployment: the Little's-law denominator for closed-loop clients."""
        if reference_power <= 0.0:
            raise ParameterError(
                f"reference_power must be > 0, got {reference_power}"
            )
        bandwidth = params.bandwidth
        sched = (
            params.agent_sizes.sreq / bandwidth  # client -> root
            + (params.wreq + params.wrep(1)) / reference_power
            + params.server_sizes.round_trip / bandwidth
            + params.wpre / reference_power
            + params.agent_sizes.srep / bandwidth  # root -> client
        )
        service = (
            params.service_sizes.round_trip / bandwidth
            + app_work / reference_power
        )
        return sched + service
