"""The DGEMM application model.

The paper evaluates every deployment with DGEMM, "a simple matrix
multiplication provided as part of the level 3 BLAS package", at sizes
10x10, 100x100, 200x200, 310x310 and 1000x1000.  The model only needs the
application work ``Wapp`` in MFlop; :class:`DGEMMWorkload` provides it
(``2*n*m*k`` flops) plus the operand/result footprints for experiments
that choose to bill data movement to the service-phase messages (the
paper does not — clients and data were co-located — so that mode is off
by default).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.params import LevelSizes, ModelParams
from repro.errors import ParameterError
from repro.units import bytes_to_mb, dgemm_mflop

__all__ = ["DGEMMWorkload"]

_BYTES_PER_ELEMENT = 8  # double precision


@dataclass(frozen=True)
class DGEMMWorkload:
    """A ``C(n x m) = A(n x k) * B(k x m)`` matrix-multiply service.

    Parameters
    ----------
    n, m, k:
        Matrix dimensions; ``m`` and ``k`` default to ``n`` (the paper's
        square workloads).
    """

    n: int
    m: int = 0
    k: int = 0

    def __post_init__(self) -> None:
        if self.m == 0:
            object.__setattr__(self, "m", self.n)
        if self.k == 0:
            object.__setattr__(self, "k", self.n)
        if self.n <= 0 or self.m <= 0 or self.k <= 0:
            raise ParameterError(
                f"matrix dimensions must be positive, got "
                f"({self.n}, {self.m}, {self.k})"
            )

    @property
    def name(self) -> str:
        if self.n == self.m == self.k:
            return f"dgemm-{self.n}x{self.n}"
        return f"dgemm-{self.n}x{self.m}x{self.k}"

    @property
    def app_work(self) -> float:
        """``Wapp`` in MFlop: 2*n*m*k flops."""
        return dgemm_mflop(self.n, self.m, self.k)

    @property
    def input_mb(self) -> float:
        """Operand footprint (A and B) in Mb."""
        elements = self.n * self.k + self.k * self.m
        return bytes_to_mb(elements * _BYTES_PER_ELEMENT)

    @property
    def output_mb(self) -> float:
        """Result footprint (C) in Mb."""
        return bytes_to_mb(self.n * self.m * _BYTES_PER_ELEMENT)

    def service_sizes(self) -> LevelSizes:
        """Service-phase message sizes when billing operand movement.

        The paper's model keeps service messages at the calibrated
        server-level sizes (data staged out of band); use this to study
        the data-shipping regime instead.
        """
        return LevelSizes(sreq=self.input_mb, srep=self.output_mb)

    def params_with_data_shipping(self, params: ModelParams) -> ModelParams:
        """A parameter set whose service messages carry the matrices."""
        return params.replace(service_sizes=self.service_sizes())
