"""The §5.1 load-injection protocol.

    "A unit of load is introduced via a script that runs a single request
    at a time in a continual loop.  We then introduce load gradually by
    launching one client script every second.  We introduce new clients
    until the throughput of the platform stops improving; we then let the
    platform run with no addition of clients for 10 minutes."

:class:`ClientRamp` drives exactly that protocol against a simulated
platform: closed-loop clients start at a fixed interval; a controller
watches the completion rate and freezes the ramp once the rate has
plateaued; the platform then holds at peak load while the sustained
throughput is measured.  All time constants are configurable because
simulated minutes are cheaper than real ones but not free.

**Determinism contract.**  Every stochastic path in the load machinery
flows from an explicit integer seed — there is no hidden global RNG
anywhere between a workload description and a measurement:

* the platform's tie-breaking randomness is seeded through
  :class:`~repro.middleware.system.MiddlewareSystem` (``seed=``);
* the ramp's only randomness, the optional client start-time jitter
  below, is drawn from ``random.Random(seed)`` and is off (bit-identical
  to the paper's exact 1-client-per-interval protocol) unless
  ``start_jitter > 0``;
* the control plane's trace generators follow the same rule
  (:meth:`repro.control.traces.Trace.jittered` *requires* a seed);
* live migrations extend the contract to mid-run reconfiguration: a
  :class:`~repro.control.loop.ControlLoop` redeploy drains subtrees
  against simulation-state predicates (never wall clock) and applies
  its :class:`~repro.deploy.migration.MigrationPlan` steps in a fixed
  order, so the timeline stays a pure function of
  (pool, trace, policy, params, seed, migration mode);
* the hybrid fluid population path
  (:class:`~repro.sim.fluid.FluidPopulation` driven by a
  :class:`~repro.control.traces.HybridTrace`) is pure arithmetic on
  simulation state — no RNG, no wall clock, and a NumPy fast path that
  performs the identical elementwise IEEE operations as the pure-Python
  fallback — so a million-client fluid mass adds *nothing* stochastic
  on top of the cohort's seeded conversations.

Same seeds ⇒ the same event sequence ⇒ bit-identical results, which is
what lets the test suite compare whole experiment outputs by equality.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

import numpy as np

from repro.errors import SimulationError
from repro.middleware.client import ClosedLoopClient
from repro.middleware.system import MiddlewareSystem

__all__ = ["ClientRamp", "RampResult"]


@dataclass(frozen=True)
class RampResult:
    """Outcome of one ramp experiment.

    Attributes
    ----------
    clients:
        Active client count per measurement bucket.
    rates:
        Completion rate (requests/s) per measurement bucket.
    max_sustained:
        Mean rate over the hold phase — the paper's "maximum sustained
        throughput".
    clients_at_peak:
        Number of clients running during the hold phase.
    total_completed:
        Requests completed over the whole experiment.
    """

    clients: np.ndarray = field(repr=False)
    rates: np.ndarray = field(repr=False)
    max_sustained: float
    clients_at_peak: int
    total_completed: int

    def curve(self) -> tuple[np.ndarray, np.ndarray]:
        """(clients, requests/s) — the figures' load-curve axes."""
        return self.clients, self.rates


class ClientRamp:
    """Gradual load ramp with plateau detection and a hold phase.

    Parameters
    ----------
    client_interval:
        Seconds between client starts (1.0 in the paper).
    max_clients:
        Hard cap on the number of clients.
    window:
        Measurement bucket width in seconds.
    plateau_buckets:
        The ramp freezes when the mean rate of this many recent buckets
        fails to improve on the best seen by ``plateau_tolerance``.
    plateau_tolerance:
        Relative improvement threshold.
    hold_duration:
        Seconds to keep running at frozen load (600 in the paper).
    think_time:
        Client think time between requests (0 in the paper).
    start_jitter:
        Relative jitter on the interval between client starts: each
        interval is scaled by ``1 + U(-start_jitter, +start_jitter)``.
        0 (the default) reproduces the paper's exact
        one-client-per-interval protocol; > 0 models operators launching
        load scripts by hand.
    seed:
        Seed for the start-jitter draws (the ramp's only randomness).
        Explicit per the module's determinism contract; unused when
        ``start_jitter`` is 0.
    """

    def __init__(
        self,
        client_interval: float = 1.0,
        max_clients: int = 200,
        window: float = 1.0,
        plateau_buckets: int = 5,
        plateau_tolerance: float = 0.02,
        hold_duration: float = 30.0,
        think_time: float = 0.0,
        start_jitter: float = 0.0,
        seed: int = 0,
    ):
        if client_interval <= 0.0:
            raise SimulationError(
                f"client_interval must be > 0, got {client_interval}"
            )
        if max_clients < 1:
            raise SimulationError(f"max_clients must be >= 1, got {max_clients}")
        if window <= 0.0:
            raise SimulationError(f"window must be > 0, got {window}")
        if plateau_buckets < 2:
            raise SimulationError(
                f"plateau_buckets must be >= 2, got {plateau_buckets}"
            )
        if hold_duration <= 0.0:
            raise SimulationError(
                f"hold_duration must be > 0, got {hold_duration}"
            )
        if not (0.0 <= start_jitter < 1.0):
            raise SimulationError(
                f"start_jitter must be in [0, 1), got {start_jitter}"
            )
        self.client_interval = client_interval
        self.max_clients = max_clients
        self.window = window
        self.plateau_buckets = plateau_buckets
        self.plateau_tolerance = plateau_tolerance
        self.hold_duration = hold_duration
        self.think_time = think_time
        self.start_jitter = start_jitter
        self.seed = seed

    # ------------------------------------------------------------------ #

    def run(self, system: MiddlewareSystem) -> RampResult:
        """Execute the protocol on ``system`` (drives its simulator)."""
        sim = system.sim
        start_time = sim.now
        clients: list[ClosedLoopClient] = []
        bucket_clients: list[int] = []
        bucket_rates: list[float] = []
        best_rate = 0.0
        stale = 0
        frozen = False

        def bucket_edge_rate() -> float:
            end = sim.now
            return system.completions.rate(end - self.window, end)

        jitter_rng = (
            random.Random(self.seed) if self.start_jitter > 0.0 else None
        )

        # The ramp controller runs once per client interval: record the
        # last bucket, check the plateau, maybe start a client.
        while not frozen and len(clients) < self.max_clients:
            client = ClosedLoopClient(
                system, f"client-{len(clients):04d}", think_time=self.think_time
            )
            clients.append(client)
            client.start()
            interval = self.client_interval
            if jitter_rng is not None:
                interval *= 1.0 + jitter_rng.uniform(
                    -self.start_jitter, self.start_jitter
                )
            sim.run_until(sim.now + interval)
            rate = bucket_edge_rate()
            bucket_clients.append(len(clients))
            bucket_rates.append(rate)
            if rate > best_rate * (1.0 + self.plateau_tolerance):
                best_rate = rate
                stale = 0
            else:
                stale += 1
                if stale >= self.plateau_buckets:
                    frozen = True

        # Hold phase: fixed load, measure sustained throughput.
        hold_start = sim.now
        hold_end = hold_start + self.hold_duration
        while sim.now < hold_end:
            sim.run_until(min(hold_end, sim.now + self.window))
            bucket_clients.append(len(clients))
            bucket_rates.append(bucket_edge_rate())
        max_sustained = system.completions.rate(hold_start, hold_end)

        del start_time  # bucket series already spans the whole run
        return RampResult(
            clients=np.asarray(bucket_clients, dtype=int),
            rates=np.asarray(bucket_rates, dtype=float),
            max_sustained=float(max_sustained),
            clients_at_peak=len(clients),
            total_completed=system.total_completed(),
        )
