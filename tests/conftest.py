"""Shared fixtures for the test suite."""

from __future__ import annotations

import os

import pytest

from repro.core.params import ModelParams
from repro.platforms.pool import NodePool

try:
    from hypothesis import settings
except ImportError:  # pragma: no cover - hypothesis is a test dependency
    settings = None

if settings is not None:
    # CI pins the property tests to a fixed, derandomized profile so a
    # red run always reproduces with the same examples (select it with
    # HYPOTHESIS_PROFILE=ci); local runs keep hypothesis' default
    # randomized search.
    settings.register_profile(
        "ci", derandomize=True, deadline=None, max_examples=40
    )
    profile = os.environ.get("HYPOTHESIS_PROFILE")
    if profile:
        settings.load_profile(profile)


@pytest.fixture
def params() -> ModelParams:
    """The paper's Table 3 parameter set (gigabit interconnect)."""
    return ModelParams()


@pytest.fixture
def small_pool() -> NodePool:
    """Six homogeneous 265 MFlop/s nodes."""
    return NodePool.homogeneous(6, 265.0)


@pytest.fixture
def het_pool() -> NodePool:
    """A small deterministic heterogeneous pool."""
    return NodePool.heterogeneous([300.0, 260.0, 220.0, 180.0, 140.0, 100.0, 60.0])


@pytest.fixture
def big_pool() -> NodePool:
    """A 40-node seeded random pool for planner stress tests."""
    return NodePool.uniform_random(40, low=60.0, high=400.0, seed=123)
