"""Analysis harness: experiments, saturation, comparisons, reports."""

import numpy as np
import pytest

from repro.analysis.compare import (
    compare_deployments,
    percent_of_optimal,
    predicted_vs_measured,
)
from repro.analysis.experiments import (
    max_sustained_throughput,
    measure_load_curve,
    run_fixed_load,
)
from repro.analysis.report import ascii_chart, ascii_table, format_rate
from repro.analysis.saturation import find_plateau, is_saturated
from repro.core.hierarchy import Hierarchy
from repro.core.params import ModelParams
from repro.core.throughput import hierarchy_throughput
from repro.errors import ParameterError, SimulationError
from repro.workloads.loadgen import ClientRamp


@pytest.fixture
def p() -> ModelParams:
    return ModelParams()


def star(n_servers: int) -> Hierarchy:
    h = Hierarchy()
    h.set_root("agent", 265.0)
    for i in range(n_servers):
        h.add_server(f"s{i}", 265.0, "agent")
    return h


class TestRunFixedLoad:
    def test_saturated_load_matches_model(self, p):
        h = star(2)
        result = run_fixed_load(h, p, 16.0, clients=40, duration=15.0)
        predicted = hierarchy_throughput(h, p, 16.0).throughput
        assert result.throughput == pytest.approx(predicted, rel=0.05)

    def test_light_load_below_model(self, p):
        h = star(2)
        result = run_fixed_load(h, p, 16.0, clients=1, duration=10.0)
        predicted = hierarchy_throughput(h, p, 16.0).throughput
        assert result.throughput < predicted * 0.8

    def test_reports_latency_and_bottleneck(self, p):
        result = run_fixed_load(star(1), p, 16.0, clients=10, duration=10.0)
        assert result.mean_latency > 0
        assert result.mean_scheduling_latency >= 0
        assert result.bottleneck_node == "s0"
        assert 0 < result.bottleneck_utilization <= 1.0

    def test_validation(self, p):
        with pytest.raises(SimulationError):
            run_fixed_load(star(1), p, 16.0, clients=0)
        with pytest.raises(SimulationError):
            run_fixed_load(star(1), p, 16.0, clients=1, duration=0.0)
        with pytest.raises(SimulationError):
            run_fixed_load(star(1), p, 16.0, clients=1, warmup_fraction=1.0)


class TestLoadCurve:
    def test_curve_rises_then_saturates(self, p):
        h = star(2)
        curve = measure_load_curve(
            h, p, 16.0, client_counts=[1, 2, 5, 10, 20, 40], duration=10.0
        )
        assert curve.rates[0] < curve.rates[-1]
        # Last two levels within a few percent of each other: saturated.
        assert curve.rates[-1] == pytest.approx(curve.rates[-2], rel=0.1)

    def test_peak_metadata(self, p):
        curve = measure_load_curve(
            star(1), p, 16.0, client_counts=[1, 5, 20], duration=8.0,
            label="one server",
        )
        assert curve.label == "one server"
        assert curve.peak_clients in (1, 5, 20)
        assert curve.peak_rate == max(curve.rates)

    def test_points_export(self, p):
        curve = measure_load_curve(
            star(1), p, 16.0, client_counts=[1, 5], duration=5.0
        )
        points = curve.points()
        assert len(points) == 2
        assert points[0][0] == 1

    def test_empty_counts_rejected(self, p):
        with pytest.raises(SimulationError):
            measure_load_curve(star(1), p, 16.0, client_counts=[])


class TestMaxSustained:
    def test_ramp_finds_model_throughput(self, p):
        h = star(2)
        ramp = ClientRamp(
            client_interval=0.2, max_clients=60, window=0.2, hold_duration=5.0
        )
        result = max_sustained_throughput(h, p, 16.0, ramp=ramp)
        predicted = hierarchy_throughput(h, p, 16.0).throughput
        assert result.max_sustained == pytest.approx(predicted, rel=0.05)


class TestSaturation:
    def test_find_plateau_on_synthetic_curve(self):
        clients = list(range(1, 11))
        rates = [10, 20, 30, 38, 42, 44, 45, 45, 45, 45]
        sat_clients, plateau = find_plateau(clients, rates)
        assert plateau == pytest.approx(45.0)
        assert sat_clients <= 7

    def test_rising_curve_rejected(self):
        with pytest.raises(SimulationError):
            find_plateau([1, 2, 3, 4], [10, 20, 30, 40])

    def test_empty_curve_rejected(self):
        with pytest.raises(SimulationError):
            find_plateau([], [])

    def test_is_saturated(self):
        assert is_saturated([10, 20, 30, 30, 30, 30])
        assert not is_saturated([10, 20, 30, 40, 50, 60])
        assert not is_saturated([10])  # too short to tell


class TestCompare:
    def test_predicted_vs_measured_row(self, p):
        row = predicted_vs_measured(
            star(2), p, 16.0, clients=40, duration=10.0, label="2 SeDs"
        )
        assert row.label == "2 SeDs"
        assert row.accuracy == pytest.approx(1.0, rel=0.08)
        assert row.servers == 2

    def test_compare_orders_by_measured(self, p):
        rows = compare_deployments(
            {"one": star(1), "three": star(3)},
            p, 16.0, clients=40, duration=10.0,
        )
        assert rows[0].label == "three"
        assert rows[0].measured > rows[1].measured

    def test_compare_empty_rejected(self, p):
        with pytest.raises(ParameterError):
            compare_deployments({}, p, 16.0, clients=1)

    def test_percent_of_optimal(self):
        assert percent_of_optimal(89.0, 100.0) == pytest.approx(89.0)
        with pytest.raises(ParameterError):
            percent_of_optimal(1.0, 0.0)


class TestReport:
    def test_ascii_table_alignment(self):
        text = ascii_table(
            ["name", "value"], [["alpha", 1], ["b", 22]], title="T"
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        widths = {len(line) for line in lines[1:]}
        assert len(widths) == 1  # all rows same width

    def test_ascii_chart_contains_markers_and_legend(self):
        text = ascii_chart(
            {"a": ([1, 2, 3], [1.0, 2.0, 3.0]), "b": ([1, 2, 3], [3.0, 2.0, 1.0])},
            title="curves",
        )
        assert "curves" in text
        assert "* = a" in text
        assert "o = b" in text

    def test_ascii_chart_empty(self):
        assert ascii_chart({"a": ([], [])}) == "(no data)"

    def test_format_rate_ranges(self):
        assert format_rate(1234.5) == "1234"  # no decimals at scale
        assert format_rate(45.67) == "45.7"
        assert format_rate(2.345) == "2.35"
