"""PlanRequest / PlanningSession — the typed planning API."""

import pytest

from repro.api import (
    PlanRequest,
    PlanningSession,
    RankedPlan,
    scenario_grid,
)
from repro.core.params import DEFAULT_PARAMS
from repro.core.registry import HeuristicOptions
from repro.errors import PlanningError
from repro.extensions.multiapp import Application, MultiAppOptions
from repro.platforms.pool import NodePool
from repro.units import dgemm_mflop


@pytest.fixture
def pool() -> NodePool:
    return NodePool.uniform_random(20, low=100, high=400, seed=8)


class TestPlanRequest:
    def test_eager_validation(self, pool):
        with pytest.raises(PlanningError, match="app_work"):
            PlanRequest(pool=pool, app_work=0.0)
        with pytest.raises(PlanningError, match="demand"):
            PlanRequest(pool=pool, app_work=1.0, demand=-1.0)
        with pytest.raises(PlanningError, match="NodePool"):
            PlanRequest(pool=[1, 2, 3], app_work=1.0)
        with pytest.raises(PlanningError, match="method"):
            PlanRequest(pool=pool, app_work=1.0, method="")

    def test_replace(self, pool):
        request = PlanRequest(pool=pool, app_work=1.0)
        star = request.replace(method="star")
        assert star.method == "star"
        assert star.pool is pool
        assert request.method == "heuristic"

    def test_cache_key_distinguishes_requests(self, pool):
        base = PlanRequest(pool=pool, app_work=1.0)
        assert base.cache_key() == PlanRequest(pool=pool, app_work=1.0).cache_key()
        assert base.cache_key() != base.replace(app_work=2.0).cache_key()
        assert base.cache_key() != base.replace(method="star").cache_key()
        assert (
            base.cache_key()
            != base.replace(options=HeuristicOptions(patience=2)).cache_key()
        )

    def test_cache_key_ignores_label(self, pool):
        base = PlanRequest(pool=pool, app_work=1.0)
        assert base.cache_key() == base.replace(label="x").cache_key()

    def test_cache_key_is_hashable_for_all_options(self, pool):
        apps = (Application("a", 10.0, 5.0), Application("b", 20.0, 2.0))
        request = PlanRequest(
            pool=pool, app_work=1.0, method="multiapp",
            options=MultiAppOptions(applications=apps),
        )
        hash(request.cache_key())


class TestPlanningSession:
    def test_plan_from_kwargs(self, pool):
        deployment = PlanningSession().plan(
            pool=pool, app_work=dgemm_mflop(200)
        )
        assert deployment.method == "heuristic"
        assert deployment.throughput > 0

    def test_session_params_apply_to_requests_without_params(self, pool):
        params = DEFAULT_PARAMS.replace(wreq=0.3)
        deployment = PlanningSession(params=params).plan(
            pool=pool, app_work=dgemm_mflop(200)
        )
        assert deployment.params.wreq == pytest.approx(0.3)

    def test_request_params_win_over_session_params(self, pool):
        session = PlanningSession(params=DEFAULT_PARAMS.replace(wreq=0.3))
        deployment = session.plan(
            pool=pool, app_work=dgemm_mflop(200), params=DEFAULT_PARAMS
        )
        assert deployment.params.wreq == pytest.approx(0.17)

    def test_cache_hits_on_repeat(self, pool):
        session = PlanningSession()
        first = session.plan(pool=pool, app_work=dgemm_mflop(200))
        second = session.plan(pool=pool, app_work=dgemm_mflop(200))
        assert first is second
        info = session.cache_info()
        assert info["hits"] == 1
        assert info["misses"] == 1

    def test_cache_can_be_disabled_and_cleared(self, pool):
        session = PlanningSession(cache=False)
        first = session.plan(pool=pool, app_work=dgemm_mflop(200))
        second = session.plan(pool=pool, app_work=dgemm_mflop(200))
        assert first is not second
        cached = PlanningSession()
        cached.plan(pool=pool, app_work=dgemm_mflop(200))
        cached.clear_cache()
        assert cached.cache_info() == {"hits": 0, "misses": 0, "size": 0}

    def test_every_registered_method_reachable_through_session(self):
        from repro.core.registry import REGISTRY

        session = PlanningSession()
        small = NodePool.uniform_random(8, low=100, high=400, seed=3)
        assert len(REGISTRY.available()) == 9
        for method in REGISTRY.available():
            demand = 10.0 if method == "multiapp" else None
            deployment = session.plan(
                pool=small, app_work=dgemm_mflop(150),
                method=method, demand=demand,
            )
            deployment.hierarchy.validate(strict=True)
            assert deployment.method == method

    def test_unknown_method_lists_available(self, pool):
        with pytest.raises(PlanningError, match="heuristic"):
            PlanningSession().plan(
                pool=pool, app_work=1.0, method="oracle"
            )


class TestScenarioGrid:
    def test_grid_is_full_cross_product(self, pool):
        small = NodePool.homogeneous(12, 265.0)
        grid = scenario_grid(
            pools=[pool, small],
            app_works=[dgemm_mflop(100), dgemm_mflop(310)],
            methods=("heuristic", "star", "balanced"),
        )
        assert len(grid) == 12
        assert len({r.label for r in grid}) == 12

    def test_empty_axis_rejected(self, pool):
        with pytest.raises(PlanningError):
            scenario_grid(pools=[], app_works=[1.0])

    def test_plan_many_parallel_matches_serial(self, pool):
        small = NodePool.homogeneous(12, 265.0)
        grid = scenario_grid(
            pools=[pool, small],
            app_works=[dgemm_mflop(100), dgemm_mflop(310)],
            methods=("heuristic", "star", "balanced"),
        )
        assert len(grid) >= 12
        serial = PlanningSession().plan_many(grid, parallel=False)
        parallel = PlanningSession().plan_many(grid, parallel=True)
        assert [d.describe() for d in serial] == [
            d.describe() for d in parallel
        ]
        assert [d.hierarchy.describe() for d in serial] == [
            d.hierarchy.describe() for d in parallel
        ]
        assert [d.throughput for d in serial] == [
            d.throughput for d in parallel
        ]

    def test_plan_many_empty(self):
        assert PlanningSession().plan_many([]) == []

    def test_plan_many_process_pool_matches_serial(self, pool):
        # Force the process-pool path even on single-CPU machines; the
        # grid must clear _PARALLEL_MIN_UNIQUE or the small-batch fast
        # path would keep it serial.
        grid = scenario_grid(
            pools=[pool],
            app_works=[
                dgemm_mflop(100), dgemm_mflop(200),
                dgemm_mflop(310), dgemm_mflop(400),
            ],
            methods=("heuristic", "star"),
        )
        serial = PlanningSession().plan_many(grid)
        spawned = PlanningSession().plan_many(
            grid, parallel=True, max_workers=2
        )
        assert [d.describe() for d in serial] == [
            d.describe() for d in spawned
        ]
        assert [d.hierarchy.describe() for d in serial] == [
            d.hierarchy.describe() for d in spawned
        ]

    def test_plan_many_single_worker_takes_serial_path(self, pool, monkeypatch):
        import repro.api as api_module

        def boom(*args, **kwargs):  # pragma: no cover - must not run
            raise AssertionError("executor must not start for max_workers=1")

        monkeypatch.setattr(api_module, "ProcessPoolExecutor", boom)
        monkeypatch.setattr(api_module, "ThreadPoolExecutor", boom)
        grid = scenario_grid(
            pools=[pool], app_works=[dgemm_mflop(100)], methods=("star",)
        )
        result = PlanningSession().plan_many(
            grid, parallel=True, max_workers=1
        )
        assert len(result) == len(grid)

    def test_plan_many_single_request_takes_serial_path(self, pool, monkeypatch):
        import repro.api as api_module

        def boom(*args, **kwargs):  # pragma: no cover - must not run
            raise AssertionError("executor must not start for one request")

        monkeypatch.setattr(api_module, "ProcessPoolExecutor", boom)
        request = PlanRequest(pool=pool, app_work=dgemm_mflop(100))
        result = PlanningSession().plan_many(
            [request], parallel=True, max_workers=4
        )
        assert len(result) == 1

    def test_plan_many_small_batch_takes_serial_path(self, pool, monkeypatch):
        # Below _PARALLEL_MIN_UNIQUE unique requests, parallel=True must
        # not pay process-pool spin-up (ROADMAP: nil gain on small
        # batches) — and the results must still match a serial run.
        import repro.api as api_module

        def boom(*args, **kwargs):  # pragma: no cover - must not run
            raise AssertionError("executor must not start for small batches")

        grid = scenario_grid(
            pools=[pool],
            app_works=[dgemm_mflop(100), dgemm_mflop(310)],
            methods=("heuristic", "star"),
        )
        assert len(grid) < api_module._PARALLEL_MIN_UNIQUE
        serial = PlanningSession().plan_many(grid)
        monkeypatch.setattr(api_module, "ProcessPoolExecutor", boom)
        monkeypatch.setattr(api_module, "ThreadPoolExecutor", boom)
        small = PlanningSession().plan_many(
            grid, parallel=True, max_workers=4
        )
        assert [d.describe() for d in small] == [
            d.describe() for d in serial
        ]
        uncached = PlanningSession(cache=False).plan_many(
            grid, parallel=True, max_workers=4
        )
        assert [d.describe() for d in uncached] == [
            d.describe() for d in serial
        ]

    def test_plan_many_small_batch_counts_unique_requests(
        self, pool, monkeypatch
    ):
        # The threshold applies to the *deduped* miss count: a long batch
        # of repeats stays serial, and cache hits never re-trigger a pool.
        import repro.api as api_module

        calls: list[int] = []
        real_fan_out = PlanningSession._fan_out

        def recording(requests, workers, chunk):
            calls.append(len(requests))
            return real_fan_out(requests, workers, chunk)

        monkeypatch.setattr(
            PlanningSession, "_fan_out", staticmethod(recording)
        )
        request = PlanRequest(
            pool=pool, app_work=dgemm_mflop(100), method="star"
        )
        session = PlanningSession()
        batch = [
            request.replace(label=f"r{i}")
            for i in range(api_module._PARALLEL_MIN_UNIQUE)
        ]
        # All labels alias one cache key, so one unique miss: no fan-out.
        session.plan_many(batch, parallel=True, max_workers=2)
        assert calls == []
        # Genuinely distinct requests at the threshold do fan out.
        varied = scenario_grid(
            pools=[pool],
            app_works=[
                dgemm_mflop(100), dgemm_mflop(200),
                dgemm_mflop(310), dgemm_mflop(400),
            ],
            methods=("heuristic", "star"),
        )
        assert len(varied) >= api_module._PARALLEL_MIN_UNIQUE
        PlanningSession().plan_many(varied, parallel=True, max_workers=2)
        assert calls == [len(varied)]

    def test_plan_many_uncached_session_matches_serial_semantics(self, pool):
        request = PlanRequest(
            pool=pool, app_work=dgemm_mflop(100), method="star"
        )
        batch = [request, request.replace(label="twin")]
        session = PlanningSession(cache=False)
        first, second = session.plan_many(
            batch, parallel=True, max_workers=2
        )
        # Like the serial no-cache path: independent objects, no stats.
        assert first is not second
        assert first.describe() == second.describe()
        assert session.cache_info() == {"hits": 0, "misses": 0, "size": 0}

    def test_plan_many_falls_back_to_threads_without_worker_planners(
        self, pool, monkeypatch
    ):
        # A planner registered at runtime is invisible to spawned workers;
        # the session must retry on threads instead of failing the batch.
        monkeypatch.setattr(
            PlanningSession, "_fan_out", staticmethod(lambda *a: None)
        )
        grid = scenario_grid(
            pools=[pool], app_works=[dgemm_mflop(100)],
            methods=("star", "heuristic"),
        )
        serial = PlanningSession().plan_many(grid)
        fallback = PlanningSession().plan_many(
            grid, parallel=True, max_workers=2
        )
        assert [d.describe() for d in serial] == [
            d.describe() for d in fallback
        ]

    def test_plan_many_deduplicates_and_caches_across_calls(self, pool):
        session = PlanningSession()
        request = PlanRequest(
            pool=pool, app_work=dgemm_mflop(100), method="star"
        )
        batch = [request, request.replace(label="twin"), request]
        first = session.plan_many(batch, parallel=True, max_workers=2)
        assert session.cache_info()["misses"] == 1
        assert session.cache_info()["hits"] == 2
        second = session.plan_many(batch, parallel=True, max_workers=2)
        assert session.cache_info()["misses"] == 1
        assert [d.describe() for d in first] == [
            d.describe() for d in second
        ]

    def test_options_by_method(self, pool):
        grid = scenario_grid(
            pools=[pool],
            app_works=[dgemm_mflop(100)],
            methods=("balanced",),
            options_by_method={"balanced": {"middle_agents": 2}},
        )
        deployment = PlanningSession().plan_many(grid)[0]
        # 1 root + 2 middle agents
        assert deployment.hierarchy.shape_signature()[1] == 3


class TestRank:
    def test_rank_sorted_best_first(self, pool):
        ranked = PlanningSession().rank(pool, dgemm_mflop(310))
        assert len(ranked) >= 3
        predictions = [entry.predicted for entry in ranked]
        assert predictions == sorted(predictions, reverse=True)
        assert all(isinstance(entry, RankedPlan) for entry in ranked)
        assert all(entry.measured is None for entry in ranked)

    def test_rank_defaults_exclude_extensions_and_exhaustive(self, pool):
        ranked = PlanningSession().rank(pool, dgemm_mflop(310))
        methods = {entry.method for entry in ranked}
        assert "exhaustive" not in methods
        assert not methods & {"hetcomm", "multiapp", "redeploy"}

    def test_rank_skips_infeasible_methods(self):
        tiny = NodePool.homogeneous(3, 265.0)  # too small for balanced
        ranked = PlanningSession().rank(
            tiny, dgemm_mflop(200), methods=("heuristic", "balanced")
        )
        assert [entry.method for entry in ranked] == ["heuristic"]

    def test_rank_unknown_method_raises_not_skips(self, pool):
        with pytest.raises(PlanningError, match="balansed"):
            PlanningSession().rank(
                pool, dgemm_mflop(200), methods=("heuristic", "balansed")
            )

    def test_rank_all_infeasible_raises(self):
        tiny = NodePool.homogeneous(3, 265.0)
        with pytest.raises(PlanningError, match="no ranked methods"):
            PlanningSession().rank(
                tiny, dgemm_mflop(200), methods=("balanced",)
            )

    def test_rank_measured(self, pool):
        ranked = PlanningSession().rank(
            NodePool.homogeneous(8, 265.0),
            dgemm_mflop(200),
            methods=("heuristic", "star"),
            measure=True,
            clients=10,
            duration=3.0,
        )
        assert all(entry.measured is not None for entry in ranked)
        measured = [entry.measured for entry in ranked]
        assert measured == sorted(measured, reverse=True)


class TestExtensionPlannersThroughSession:
    def test_hetcomm_with_clustered_links(self, pool):
        deployment = PlanningSession().plan(
            pool=NodePool.uniform_random(12, low=100, high=400, seed=2),
            app_work=dgemm_mflop(200),
            method="hetcomm",
            options={"group_sizes": "6,6", "group_bandwidths": "1000,100"},
        )
        assert deployment.extras["het_throughput"] > 0
        assert len(deployment.extras["bandwidths"]) == 12

    def test_multiapp_portfolio(self, pool):
        apps = (
            Application("fast", dgemm_mflop(100), 10.0),
            Application("slow", dgemm_mflop(300), 2.0),
        )
        deployment = PlanningSession().plan(
            pool=pool,
            app_work=dgemm_mflop(100),
            method="multiapp",
            options=MultiAppOptions(applications=apps),
        )
        assert set(deployment.extras["assignments"]) == {"fast", "slow"}
        assert 0 < deployment.extras["scale"] <= 1.0

    def test_multiapp_without_demand_is_actionable(self, pool):
        with pytest.raises(PlanningError, match="MultiAppOptions"):
            PlanningSession().plan(
                pool=pool, app_work=dgemm_mflop(100), method="multiapp"
            )

    def test_redeploy_improves_on_its_base(self, pool):
        deployment = PlanningSession().plan(
            pool=pool,
            app_work=dgemm_mflop(310),
            method="redeploy",
            options={"initial_fraction": "0.4"},
        )
        assert (
            deployment.extras["final_throughput"]
            >= deployment.extras["initial_throughput"] - 1e-9
        )
        assert deployment.extras["base_method"] == "heuristic"


class TestAnalysisIntegration:
    def test_experiments_accept_deployment_directly(self):
        from repro.analysis.experiments import run_fixed_load

        deployment = PlanningSession().plan(
            pool=NodePool.homogeneous(6, 265.0), app_work=dgemm_mflop(200)
        )
        result = run_fixed_load(
            deployment, deployment.params, deployment.app_work,
            clients=5, duration=3.0,
        )
        assert result.throughput > 0

    def test_rank_methods_wrapper(self):
        from repro.analysis.compare import rank_methods

        rows = rank_methods(
            NodePool.homogeneous(8, 265.0),
            dgemm_mflop(200),
            methods=("heuristic", "star"),
            clients=10,
            duration=3.0,
        )
        assert [row.label for row in rows]
        assert all(row.measured > 0 for row in rows)
