"""Baseline deployments (star, balanced, chain, d-ary)."""

import pytest

from repro.core.baselines import (
    balanced_deployment,
    chain_deployment,
    dary_deployment,
    star_deployment,
)
from repro.core.hierarchy import Role
from repro.errors import PlanningError
from repro.platforms.pool import NodePool


@pytest.fixture
def pool() -> NodePool:
    return NodePool.homogeneous(10, 100.0)


class TestStar:
    def test_shape(self, pool):
        h = star_deployment(pool)
        assert h.shape_signature() == (10, 1, 9, 1)
        h.validate(strict=True)

    def test_first_node_is_agent(self, pool):
        h = star_deployment(pool)
        assert h.root == pool[0].name

    def test_needs_two_nodes(self):
        with pytest.raises(PlanningError):
            star_deployment(NodePool.homogeneous(1, 100.0))


class TestBalanced:
    def test_shape(self, pool):
        h = balanced_deployment(pool, middle_agents=3)
        assert len(h.agents) == 4  # root + 3
        assert len(h.servers) == 6
        assert h.height == 2
        h.validate(strict=True)

    def test_round_robin_spread(self):
        pool = NodePool.homogeneous(200, 100.0)
        h = balanced_deployment(pool, middle_agents=14)
        degrees = sorted(h.degree(a) for a in h.agents if a != h.root)
        # 185 servers over 14 agents: counts differ by at most one.
        assert degrees[-1] - degrees[0] <= 1
        assert sum(degrees) == 185

    def test_paper_200_node_shape(self):
        # "one top agent connected to 14 agents and each agent connected
        # to 14 servers with the exception of one agent with only 3" —
        # that exact shape needs the paper's uneven dealing, but the node
        # accounting must match: 1 + 14 + 185 = 200.
        pool = NodePool.homogeneous(200, 100.0)
        h = balanced_deployment(pool, middle_agents=14)
        assert h.shape_signature() == (200, 15, 185, 2)

    def test_too_small_pool_rejected(self, pool):
        with pytest.raises(PlanningError):
            balanced_deployment(pool, middle_agents=4)  # needs 13 nodes

    def test_zero_middle_agents_rejected(self, pool):
        with pytest.raises(PlanningError):
            balanced_deployment(pool, middle_agents=0)


class TestChain:
    def test_single_agent_chain_is_star(self, pool):
        h = chain_deployment(pool, agents=1)
        assert h.shape_signature() == (10, 1, 9, 1)

    def test_three_agent_chain(self, pool):
        h = chain_deployment(pool, agents=3)
        h.validate(strict=True)
        assert len(h.agents) == 3
        assert h.height == 3
        # Inner agents have exactly 2 children (next agent + one server).
        inner = [a for a in h.agents if h.children(a) and a != h.root]
        for agent in inner:
            roles = [h.role(c) for c in h.children(agent)]
            assert len(roles) == 2 or agent == h.agents[-1]

    def test_too_small_rejected(self):
        with pytest.raises(PlanningError):
            chain_deployment(NodePool.homogeneous(4, 100.0), agents=3)


class TestDary:
    def test_degree_one_is_minimal_pair(self, pool):
        h = dary_deployment(pool, 1)
        assert h.shape_signature() == (2, 1, 1, 1)

    def test_full_degree_is_star(self, pool):
        h = dary_deployment(pool, len(pool) - 1)
        assert h.shape_signature() == (10, 1, 9, 1)

    def test_binary_tree_shape(self, pool):
        h = dary_deployment(pool, 2)
        h.validate(strict=True)
        assert len(h) == 10
        # Complete binary tree over 10 nodes: positions 0..4 are internal
        # before repair.
        assert h.height >= 2

    @pytest.mark.parametrize("degree", [2, 3, 4, 5, 9])
    def test_always_strictly_valid(self, pool, degree):
        h = dary_deployment(pool, degree)
        h.validate(strict=True)
        assert len(h) == len(pool)

    @pytest.mark.parametrize("n", [2, 3, 4, 5, 6, 7, 8, 9, 17, 31])
    def test_every_size_and_degree_valid(self, n):
        pool = NodePool.homogeneous(n, 100.0)
        for degree in range(2, n):
            h = dary_deployment(pool, degree)
            h.validate(strict=True)
            assert len(h) == n

    def test_internal_nodes_are_agents_leaves_servers(self, pool):
        h = dary_deployment(pool, 3)
        for node in h:
            if h.children(node):
                assert h.role(node) is Role.AGENT
            else:
                assert h.role(node) is Role.SERVER

    def test_rejects_degree_zero(self, pool):
        with pytest.raises(PlanningError):
            dary_deployment(pool, 0)
