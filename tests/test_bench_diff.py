"""`benchmarks/bench_diff.py`: warn-only trend check, --strict budget gate.

The contract: the default invocation never fails the build, whatever it
finds (trend regressions, budget breaches, unreadable inputs); with
``--strict`` exactly one finding class — a control-plane cell over the
adaptation-overhead budget — earns a nonzero exit, and everything else
(including inputs that cannot be compared at all) still exits 0.
"""

import importlib.util
import json
from pathlib import Path

import pytest

_BENCH_DIFF = (
    Path(__file__).resolve().parent.parent / "benchmarks" / "bench_diff.py"
)
_spec = importlib.util.spec_from_file_location("bench_diff", _BENCH_DIFF)
bench_diff = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(bench_diff)


def payload(results, quick=False):
    return {
        "schema": "repro-bench/1",
        "suite": "planning",
        "quick": quick,
        "results": results,
    }


def cell(name, value, overhead=None, params=None):
    entry = {
        "name": name,
        "params": params or {"pool": 16},
        "metric": "seconds",
        "value": value,
        "extra": {},
    }
    if overhead is not None:
        entry["extra"]["overhead_fraction"] = overhead
    return entry


@pytest.fixture
def write(tmp_path):
    def _write(name, data):
        path = tmp_path / name
        path.write_text(json.dumps(data))
        return str(path)

    return _write


class TestWarnOnlyDefault:
    def test_clean_comparison_exits_zero(self, write, capsys):
        base = write("base.json", payload([cell("control_loop", 1.0, 0.01)]))
        cur = write("cur.json", payload([cell("control_loop", 1.05, 0.01)]))
        assert bench_diff.main([base, cur]) == 0
        assert "1 common cell(s)" in capsys.readouterr().out

    def test_budget_breach_warns_but_exits_zero(self, write, capsys):
        base = write("base.json", payload([cell("control_loop", 1.0, 0.01)]))
        cur = write("cur.json", payload([cell("control_loop", 1.0, 0.40)]))
        assert bench_diff.main([base, cur]) == 0
        out = capsys.readouterr().out
        assert "adaptation overhead" in out
        assert "not failing the build" in out

    def test_trend_regression_warns_but_exits_zero(self, write, capsys):
        base = write("base.json", payload([cell("heuristic_plan", 1.0)]))
        cur = write("cur.json", payload([cell("heuristic_plan", 2.0)]))
        assert bench_diff.main([base, cur]) == 0
        assert "!!" in capsys.readouterr().out


class TestStrictMode:
    def test_budget_breach_fails_the_build(self, write, capsys):
        base = write("base.json", payload([cell("control_loop", 1.0, 0.01)]))
        cur = write("cur.json", payload([cell("control_loop", 1.0, 0.40)]))
        assert bench_diff.main(["--strict", base, cur]) == 1
        assert "failing the build (--strict)" in capsys.readouterr().out

    def test_concurrent_migration_cells_are_budgeted_too(self, write):
        base = write("base.json", payload([]))
        cur = write(
            "cur.json", payload([cell("concurrent_migration", 1.0, 0.40)])
        )
        assert bench_diff.main(["--strict", base, cur]) == 1

    def test_within_budget_exits_zero(self, write):
        base = write("base.json", payload([cell("control_loop", 1.0, 0.01)]))
        cur = write("cur.json", payload([cell("control_loop", 3.0, 0.02)]))
        # A big trend regression alone must NOT fail even under --strict.
        assert bench_diff.main(["--strict", base, cur]) == 0

    def test_custom_budget_applies(self, write):
        base = write("base.json", payload([cell("control_loop", 1.0, 0.01)]))
        cur = write("cur.json", payload([cell("control_loop", 1.0, 0.04)]))
        assert bench_diff.main(["--strict", base, cur]) == 0
        assert (
            bench_diff.main(
                ["--strict", "--overhead-budget", "0.03", base, cur]
            )
            == 1
        )

    def test_unreadable_inputs_still_exit_zero(self, write, tmp_path):
        missing = str(tmp_path / "nope.json")
        cur = write("cur.json", payload([cell("control_loop", 1.0, 0.40)]))
        assert bench_diff.main(["--strict", missing, cur]) == 0

    def test_non_control_cells_never_gate(self, write):
        base = write("base.json", payload([cell("engine_churn", 1.0, 0.90)]))
        cur = write("cur.json", payload([cell("engine_churn", 1.0, 0.90)]))
        assert bench_diff.main(["--strict", base, cur]) == 0
