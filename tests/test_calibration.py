"""Calibration campaigns: the simulated Table 3 methodology."""

import pytest

from repro.calibration.capture import run_capture_campaign
from repro.calibration.fit import fit_wrep
from repro.calibration.linpack import measure_mflops
from repro.calibration.table3 import calibrate, render_table3
from repro.core.params import ModelParams
from repro.errors import CalibrationError
from repro.platforms.node import Node


@pytest.fixture
def truth() -> ModelParams:
    return ModelParams()


class TestCapture:
    def test_message_sizes_recovered(self, truth):
        capture = run_capture_campaign(truth, repetitions=20)
        sizes = capture.message_sizes
        assert sizes[("agent", "sched_req")] == pytest.approx(
            truth.agent_sizes.sreq
        )
        assert sizes[("agent", "sched_rep")] == pytest.approx(
            truth.agent_sizes.srep
        )
        assert sizes[("server", "sched_req")] == pytest.approx(
            truth.server_sizes.sreq
        )
        assert sizes[("server", "sched_rep")] == pytest.approx(
            truth.server_sizes.srep
        )

    def test_processing_times_recovered(self, truth):
        power = 265.0
        capture = run_capture_campaign(truth, node_power=power, repetitions=20)
        times = capture.processing_times
        assert times[("agent", "request_processing")] * power == pytest.approx(
            truth.wreq
        )
        assert times[("server", "prediction")] * power == pytest.approx(
            truth.wpre
        )

    def test_all_requests_complete(self, truth):
        capture = run_capture_campaign(truth, repetitions=7)
        assert capture.requests == 7

    def test_rejects_zero_repetitions(self, truth):
        with pytest.raises(CalibrationError):
            run_capture_campaign(truth, repetitions=0)


class TestWrepFit:
    def test_recovers_linear_coefficients(self, truth):
        fit = fit_wrep(truth, degrees=(1, 2, 4, 8), repetitions=5)
        assert fit.wfix == pytest.approx(truth.wfix, rel=1e-6)
        assert fit.wsel == pytest.approx(truth.wsel, rel=1e-6)

    def test_perfect_correlation_without_noise(self, truth):
        # The paper reports r = 0.97 on real hardware; the simulator has
        # no cache effects, so the fit is exact.
        fit = fit_wrep(truth, degrees=(1, 2, 4, 8), repetitions=5)
        assert fit.r_value == pytest.approx(1.0)

    def test_predict_matches_ground_truth(self, truth):
        fit = fit_wrep(truth, degrees=(1, 4, 8), repetitions=5)
        assert fit.predict(16) == pytest.approx(truth.wrep(16), rel=1e-6)

    def test_needs_two_degrees(self, truth):
        with pytest.raises(CalibrationError):
            fit_wrep(truth, degrees=(3,))


class TestLinpack:
    def test_exact_without_noise(self):
        assert measure_mflops(Node(power=300.0, name="n")) == 300.0


class TestFullCampaign:
    def test_recovers_table3(self, truth):
        result = calibrate(
            truth,
            capture_repetitions=20,
            fit_degrees=(1, 2, 4, 8),
            fit_repetitions=5,
        )
        p = result.params
        assert p.wreq == pytest.approx(truth.wreq, rel=1e-6)
        assert p.wfix == pytest.approx(truth.wfix, rel=1e-6)
        assert p.wsel == pytest.approx(truth.wsel, rel=1e-6)
        assert p.wpre == pytest.approx(truth.wpre, rel=1e-6)
        assert p.agent_sizes.sreq == pytest.approx(truth.agent_sizes.sreq)
        assert p.agent_sizes.srep == pytest.approx(truth.agent_sizes.srep)
        assert p.server_sizes.sreq == pytest.approx(truth.server_sizes.sreq)
        assert p.server_sizes.srep == pytest.approx(truth.server_sizes.srep)
        assert result.fit_quality == pytest.approx(1.0)

    def test_calibrated_params_predict_same_throughput(self, truth):
        from repro.core.hierarchy import Hierarchy
        from repro.core.throughput import hierarchy_throughput

        result = calibrate(
            truth,
            capture_repetitions=10,
            fit_degrees=(1, 4, 8),
            fit_repetitions=5,
        )
        h = Hierarchy()
        h.set_root("a", 265.0)
        h.add_server("s0", 265.0, "a")
        h.add_server("s1", 265.0, "a")
        true_rho = hierarchy_throughput(h, truth, 16.0).throughput
        calib_rho = hierarchy_throughput(h, result.params, 16.0).throughput
        assert calib_rho == pytest.approx(true_rho, rel=1e-6)

    def test_render_table3(self, truth):
        result = calibrate(
            truth,
            capture_repetitions=10,
            fit_degrees=(1, 4),
            fit_repetitions=3,
        )
        text = render_table3(result, reference=truth)
        assert "Table 3" in text
        assert "Agent (calibrated)" in text
        assert "ground truth" in text

    def test_noisy_rating_still_reasonable(self, truth):
        result = calibrate(
            truth,
            capture_repetitions=10,
            fit_degrees=(1, 4),
            fit_repetitions=3,
            rating_noise=0.05,
            seed=1,
        )
        # Rated power <= true power.  The capture deployment itself runs
        # at the rated power (the planner's view of the node), so the
        # time-to-MFlop conversion cancels exactly and the work estimates
        # remain exact — rating noise shifts *where* work runs, not the
        # calibrated work amounts.
        assert result.rated_power <= 265.0
        assert result.params.wreq == pytest.approx(truth.wreq, rel=1e-6)
